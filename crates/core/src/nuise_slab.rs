//! Lane-batched NUISE: K robots' same-mode steps in one pass over
//! structure-of-arrays slabs.
//!
//! A fleet of robots sharing one system model and mode bank runs the
//! *same* NUISE control flow per tick; only the numbers differ. This
//! module mirrors [`crate::nuise::nuise_step_into`] operation for
//! operation on [`MatrixSlab`]/[`VectorSlab`] storage, so the dense
//! kernels vectorize across robots instead of running K times over
//! matrices too small to vectorize within.
//!
//! # Bitwise contract
//!
//! For every lane that completes without numeric failure, the scattered
//! [`NuiseOutput`] is **bitwise identical** to what the scalar
//! [`nuise_step_into`] would have produced for that robot: the slab
//! kernels replicate the scalar loop structure and accumulation order
//! per lane (see `roboads_linalg::slab`), the per-lane model
//! evaluations are the same pure functions, and every data-dependent
//! scalar decision (LU singularity, Jacobi convergence, spectrum
//! cutoffs, χ² errors) is taken per lane exactly where the scalar path
//! takes it. Lanes that *do* fail are reported via the returned flags
//! and hold garbage; the fleet path re-runs those robots through the
//! scalar estimator, which reproduces the exact scalar error.
//!
//! [`nuise_step_into`]: crate::nuise::nuise_step_into
//! [`MatrixSlab`]: roboads_linalg::MatrixSlab
//! [`VectorSlab`]: roboads_linalg::VectorSlab
// Same convention as `roboads_linalg::slab`: lane loops stay in index
// form so every kernel reads uniformly against its scalar twin.
#![allow(clippy::needless_range_loop)]

use roboads_linalg::{EigenSlabWorkspace, LuSlabWorkspace, Matrix, MatrixSlab, Vector, VectorSlab};
use roboads_models::{wrap_angle, RobotSystem, SensorSlice};

use crate::mode::Mode;
use crate::nuise::{validate_readings, NuiseOutput};
use crate::Result;

/// Per-testing-slice parsimony scratch, the slab analogue of the
/// engine's `SliceScratch`.
#[derive(Debug, Clone)]
struct SlabSliceScratch<const K: usize> {
    eig: EigenSlabWorkspace<K>,
    pinv: MatrixSlab<K>,
    d: VectorSlab<K>,
    cov: MatrixSlab<K>,
    offset: usize,
    len: usize,
}

/// Preallocated scratch for stepping K robots through one mode's NUISE
/// update in a single lane-batched pass.
///
/// Mirrors every buffer of [`crate::nuise::NuiseWorkspace`] as a slab,
/// plus output slabs (the scalar path writes straight into a
/// [`NuiseOutput`]; the slab path scatters per lane afterwards) and the
/// engine's parsimony scratch, so the whole
/// NUISE-plus-implied-anomaly-count pipeline runs lane-batched. After
/// construction, [`load_lane`] + [`run`] + [`scatter_lane`] perform no
/// heap allocation.
///
/// [`load_lane`]: NuiseSlabWorkspace::load_lane
/// [`run`]: NuiseSlabWorkspace::run
/// [`scatter_lane`]: NuiseSlabWorkspace::scatter_lane
#[derive(Debug, Clone)]
pub(crate) struct NuiseSlabWorkspace<const K: usize> {
    // Cached per-mode constants (identical to NuiseWorkspace's).
    ref_slices: Vec<SensorSlice>,
    test_slices: Vec<SensorSlice>,
    angular2: Vec<usize>,
    angular1: Vec<usize>,
    r2: Matrix,
    r1: Matrix,
    noise_scale: f64,
    m2_dim: usize,
    // Per-lane inputs.
    p_prev: MatrixSlab<K>,
    z2: VectorSlab<K>,
    z1: VectorSlab<K>,
    // Vector scratch.
    h2: VectorSlab<K>,
    h1: VectorSlab<K>,
    nu_tilde: VectorSlab<K>,
    tmp_n: VectorSlab<K>,
    x_bar: VectorSlab<K>,
    x_pred: VectorSlab<K>,
    // Model evaluation slabs.
    a_mat: MatrixSlab<K>, // n × n
    g_mat: MatrixSlab<K>, // n × q
    c2: MatrixSlab<K>,    // m₂ × n
    c1: MatrixSlab<K>,    // m₁ × n
    // n × n scratch.
    p_tilde: MatrixSlab<K>,
    j_comp: MatrixSlab<K>,
    a_bar: MatrixSlab<K>,
    q_bar: MatrixSlab<K>,
    p_pred: MatrixSlab<K>,
    j_upd: MatrixSlab<K>,
    cross: MatrixSlab<K>,
    tmp_nn_a: MatrixSlab<K>,
    tmp_nn_b: MatrixSlab<K>,
    // m₂ × m₂ scratch.
    r2_star: MatrixSlab<K>,
    r2_star_inv: MatrixSlab<K>,
    p_nu: MatrixSlab<K>,
    p_nu_pinv: MatrixSlab<K>,
    tmp_m2m2_a: MatrixSlab<K>,
    tmp_m2m2_b: MatrixSlab<K>,
    // Mixed-shape scratch.
    f_mat: MatrixSlab<K>,      // m₂ × q
    f_mat_t: MatrixSlab<K>,    // q × m₂
    tmp_m2q: MatrixSlab<K>,    // m₂ × q
    tmp_qm2: MatrixSlab<K>,    // q × m₂
    m2_gain: MatrixSlab<K>,    // q × m₂
    normal: MatrixSlab<K>,     // q × q
    normal_inv: MatrixSlab<K>, // q × q
    gm2: MatrixSlab<K>,        // n × m₂
    s_mat: MatrixSlab<K>,      // n × m₂
    l_gain: MatrixSlab<K>,     // n × m₂
    tmp_nm2_a: MatrixSlab<K>,  // n × m₂
    tmp_nm2_b: MatrixSlab<K>,  // n × m₂
    // Congruence scratches.
    sc_n_m2: MatrixSlab<K>, // n × m₂
    sc_n_n: MatrixSlab<K>,  // n × n
    sc_m2_n: MatrixSlab<K>, // m₂ × n
    sc_n_m1: MatrixSlab<K>, // n × m₁
    // Lane-batched factorizations.
    lu_m2: LuSlabWorkspace<K>,
    lu_q: LuSlabWorkspace<K>,
    eigen: EigenSlabWorkspace<K>,
    // Per-lane scalar model-evaluation scratch (models evaluate one
    // robot at a time; the results are loaded into the slabs).
    eval_x: Vector,
    eval_nn: Matrix,
    eval_nq: Matrix,
    eval_c2: Matrix,
    eval_h2: Vector,
    eval_c1: Matrix,
    eval_h1: Vector,
    // Output slabs, scattered per lane after `run`.
    out_state_estimate: VectorSlab<K>,
    out_state_covariance: MatrixSlab<K>,
    out_actuator_anomaly: VectorSlab<K>,
    out_actuator_covariance: MatrixSlab<K>,
    out_sensor_anomaly: VectorSlab<K>,
    out_sensor_covariance: MatrixSlab<K>,
    out_innovation: VectorSlab<K>,
    likelihood: [f64; K],
    consistency: [f64; K],
    // Lane-batched parsimony (implied anomaly count) scratch.
    pars_actuator_eig: EigenSlabWorkspace<K>,
    pars_actuator_pinv: MatrixSlab<K>,
    pars_slices: Vec<SlabSliceScratch<K>>,
    counts: [usize; K],
}

impl<const K: usize> NuiseSlabWorkspace<K> {
    /// Builds the slab scratch for running `mode` against `system`
    /// across K lanes. Sizing mirrors
    /// [`crate::nuise::NuiseWorkspace::new`].
    pub(crate) fn new(system: &RobotSystem, mode: &Mode) -> Self {
        let n = system.state_dim();
        let q_dim = system.input_dim();
        let m2_dim = system.subset_dim(mode.reference());
        let m1_dim = system.subset_dim(mode.testing());
        let r2 = system.noise_subset(mode.reference());
        let r1 = if mode.testing().is_empty() {
            Matrix::zeros(0, 0)
        } else {
            system.noise_subset(mode.testing())
        };
        let noise_scale = (r2.trace() / r2.rows().max(1) as f64).max(f64::MIN_POSITIVE);
        let test_slices = system.subset_slices(mode.testing());
        let pars_slices = test_slices
            .iter()
            .map(|s| SlabSliceScratch {
                eig: EigenSlabWorkspace::new(s.len),
                pinv: MatrixSlab::zeros(s.len, s.len),
                d: VectorSlab::zeros(s.len),
                cov: MatrixSlab::zeros(s.len, s.len),
                offset: s.offset,
                len: s.len,
            })
            .collect();
        NuiseSlabWorkspace {
            ref_slices: system.subset_slices(mode.reference()),
            test_slices,
            angular2: system.angular_components_subset(mode.reference()),
            angular1: system.angular_components_subset(mode.testing()),
            r2,
            r1,
            noise_scale,
            m2_dim,
            p_prev: MatrixSlab::zeros(n, n),
            z2: VectorSlab::zeros(m2_dim),
            z1: VectorSlab::zeros(m1_dim),
            h2: VectorSlab::zeros(m2_dim),
            h1: VectorSlab::zeros(m1_dim),
            nu_tilde: VectorSlab::zeros(m2_dim),
            tmp_n: VectorSlab::zeros(n),
            x_bar: VectorSlab::zeros(n),
            x_pred: VectorSlab::zeros(n),
            a_mat: MatrixSlab::zeros(n, n),
            g_mat: MatrixSlab::zeros(n, q_dim),
            c2: MatrixSlab::zeros(m2_dim, n),
            c1: MatrixSlab::zeros(m1_dim, n),
            p_tilde: MatrixSlab::zeros(n, n),
            j_comp: MatrixSlab::zeros(n, n),
            a_bar: MatrixSlab::zeros(n, n),
            q_bar: MatrixSlab::zeros(n, n),
            p_pred: MatrixSlab::zeros(n, n),
            j_upd: MatrixSlab::zeros(n, n),
            cross: MatrixSlab::zeros(n, n),
            tmp_nn_a: MatrixSlab::zeros(n, n),
            tmp_nn_b: MatrixSlab::zeros(n, n),
            r2_star: MatrixSlab::zeros(m2_dim, m2_dim),
            r2_star_inv: MatrixSlab::zeros(m2_dim, m2_dim),
            p_nu: MatrixSlab::zeros(m2_dim, m2_dim),
            p_nu_pinv: MatrixSlab::zeros(m2_dim, m2_dim),
            tmp_m2m2_a: MatrixSlab::zeros(m2_dim, m2_dim),
            tmp_m2m2_b: MatrixSlab::zeros(m2_dim, m2_dim),
            f_mat: MatrixSlab::zeros(m2_dim, q_dim),
            f_mat_t: MatrixSlab::zeros(q_dim, m2_dim),
            tmp_m2q: MatrixSlab::zeros(m2_dim, q_dim),
            tmp_qm2: MatrixSlab::zeros(q_dim, m2_dim),
            m2_gain: MatrixSlab::zeros(q_dim, m2_dim),
            normal: MatrixSlab::zeros(q_dim, q_dim),
            normal_inv: MatrixSlab::zeros(q_dim, q_dim),
            gm2: MatrixSlab::zeros(n, m2_dim),
            s_mat: MatrixSlab::zeros(n, m2_dim),
            l_gain: MatrixSlab::zeros(n, m2_dim),
            tmp_nm2_a: MatrixSlab::zeros(n, m2_dim),
            tmp_nm2_b: MatrixSlab::zeros(n, m2_dim),
            sc_n_m2: MatrixSlab::zeros(n, m2_dim),
            sc_n_n: MatrixSlab::zeros(n, n),
            sc_m2_n: MatrixSlab::zeros(m2_dim, n),
            sc_n_m1: MatrixSlab::zeros(n, m1_dim),
            lu_m2: LuSlabWorkspace::new(m2_dim),
            lu_q: LuSlabWorkspace::new(q_dim),
            eigen: EigenSlabWorkspace::new(m2_dim),
            eval_x: Vector::zeros(n),
            eval_nn: Matrix::zeros(n, n),
            eval_nq: Matrix::zeros(n, q_dim),
            eval_c2: Matrix::zeros(m2_dim, n),
            eval_h2: Vector::zeros(m2_dim),
            eval_c1: Matrix::zeros(m1_dim, n),
            eval_h1: Vector::zeros(m1_dim),
            out_state_estimate: VectorSlab::zeros(n),
            out_state_covariance: MatrixSlab::zeros(n, n),
            out_actuator_anomaly: VectorSlab::zeros(q_dim),
            out_actuator_covariance: MatrixSlab::zeros(q_dim, q_dim),
            out_sensor_anomaly: VectorSlab::zeros(m1_dim),
            out_sensor_covariance: MatrixSlab::zeros(m1_dim, m1_dim),
            out_innovation: VectorSlab::zeros(m2_dim),
            likelihood: [0.0; K],
            consistency: [0.0; K],
            pars_actuator_eig: EigenSlabWorkspace::new(q_dim),
            pars_actuator_pinv: MatrixSlab::zeros(q_dim, q_dim),
            pars_slices,
            counts: [0; K],
        }
    }

    /// Loads one robot's inputs into lane `lane`: validates and gathers
    /// the readings, evaluates the per-robot model quantities of NUISE
    /// step 1 (`A`, `G`, `x̄`, `C₂` — pure functions, evaluated exactly
    /// as the scalar path evaluates them) and stores the previous
    /// covariance.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::BadReadings`] exactly when the scalar
    /// [`crate::nuise::nuise_step_into`] would reject the readings; the
    /// lane must then be excluded from [`run`](NuiseSlabWorkspace::run).
    pub(crate) fn load_lane(
        &mut self,
        lane: usize,
        system: &RobotSystem,
        x_prev: &Vector,
        p_prev: &Matrix,
        u_prev: &Vector,
        readings: &[Vector],
    ) -> Result<()> {
        validate_readings(system, readings)?;
        for slice in &self.ref_slices {
            let src = readings[slice.sensor].as_slice();
            for (c, &v) in src.iter().enumerate() {
                self.z2.at_mut(slice.offset + c)[lane] = v;
            }
        }
        for slice in &self.test_slices {
            let src = readings[slice.sensor].as_slice();
            for (c, &v) in src.iter().enumerate() {
                self.z1.at_mut(slice.offset + c)[lane] = v;
            }
        }
        self.p_prev.load_lane(lane, p_prev);
        system
            .dynamics()
            .state_jacobian_into(x_prev, u_prev, &mut self.eval_nn);
        self.a_mat.load_lane(lane, &self.eval_nn);
        system
            .dynamics()
            .input_jacobian_into(x_prev, u_prev, &mut self.eval_nq);
        self.g_mat.load_lane(lane, &self.eval_nq);
        system
            .dynamics()
            .step_into(x_prev, u_prev, &mut self.eval_x);
        self.x_bar.load_lane(lane, &self.eval_x);
        system.jacobian_subset_into(&self.ref_slices, &self.eval_x, &mut self.eval_c2);
        self.c2.load_lane(lane, &self.eval_c2);
        system.measure_subset_into(&self.ref_slices, &self.eval_x, &mut self.eval_h2);
        self.h2.load_lane(lane, &self.eval_h2);
        Ok(())
    }

    /// Runs Algorithm 2 plus the engine's implied-anomaly count for
    /// every lane marked in `active`, lane-batched. Returns per-lane
    /// success flags (a subset of `active`): a cleared flag means the
    /// scalar path would have returned an error for that robot
    /// (singular gain, non-converged eigendecomposition, χ² failure) —
    /// its lane holds garbage and the robot must be re-run through the
    /// scalar estimator.
    pub(crate) fn run(
        &mut self,
        system: &RobotSystem,
        compensate: bool,
        actuator_threshold: f64,
        testing_thresholds: &[f64],
        active: &[bool; K],
    ) -> [bool; K] {
        let mut ok = *active;
        let q = system.process_noise();

        // --- Step 1: actuator anomaly estimation (Alg. 2 lines 2–6).
        // Jacobians, x̄, C₂ and h₂(x̄) were loaded per lane.
        // P̃ = (A·P·Aᵀ + Q).symmetrized()
        self.p_prev
            .mul_transpose_into(&self.a_mat, &mut self.tmp_nn_a);
        self.a_mat.mul_into(&self.tmp_nn_a, &mut self.p_tilde);
        self.p_tilde.add_assign_broadcast(q);
        self.p_tilde
            .symmetrize_in_place()
            .expect("square by construction");

        // R*₂ = (C₂·P̃·C₂ᵀ + R₂).symmetrized(), then its inverse.
        self.c2
            .congruence_into(&self.p_tilde, &mut self.sc_n_m2, &mut self.r2_star)
            .expect("shapes fixed at construction");
        self.r2_star.add_assign_broadcast(&self.r2);
        self.r2_star
            .symmetrize_in_place()
            .expect("square by construction");
        self.lu_m2.factorize(&self.r2_star);
        for l in 0..K {
            if self.lu_m2.singular()[l] {
                ok[l] = false;
            }
        }
        self.lu_m2.inverse_into(&mut self.r2_star_inv);

        // M₂ = (Fᵀ·R*⁻¹·F)⁻¹·Fᵀ·R*⁻¹ with F = C₂·G.
        self.c2.mul_into(&self.g_mat, &mut self.f_mat);
        self.f_mat.transpose_into(&mut self.f_mat_t);
        self.r2_star_inv.mul_into(&self.f_mat, &mut self.tmp_m2q);
        self.f_mat_t.mul_into(&self.tmp_m2q, &mut self.normal);
        self.normal
            .symmetrize_in_place()
            .expect("square by construction");
        self.lu_q.factorize(&self.normal);
        for l in 0..K {
            if self.lu_q.singular()[l] {
                ok[l] = false;
            }
        }
        self.lu_q.inverse_into(&mut self.normal_inv);
        self.f_mat_t.mul_into(&self.r2_star_inv, &mut self.tmp_qm2);
        self.normal_inv.mul_into(&self.tmp_qm2, &mut self.m2_gain);

        // ν̃ = wrap(z₂ − h(ref, x̄)), d̂ᵃ = M₂·ν̃, Pᵃ = (Fᵀ·R*⁻¹·F)⁻¹.
        self.nu_tilde.copy_from(&self.z2);
        self.nu_tilde -= &self.h2;
        for &i in &self.angular2 {
            let g = self.nu_tilde.at_mut(i);
            for v in g.iter_mut() {
                *v = wrap_angle(*v);
            }
        }
        self.m2_gain
            .mul_vec_into(&self.nu_tilde, &mut self.out_actuator_anomaly);
        self.out_actuator_covariance.copy_from(&self.normal_inv);

        // --- Step 2: compensated state prediction (lines 7–10). ---
        if compensate {
            self.g_mat
                .mul_vec_into(&self.out_actuator_anomaly, &mut self.tmp_n);
            self.x_pred.copy_from(&self.x_bar);
            self.x_pred += &self.tmp_n;
            self.g_mat.mul_into(&self.m2_gain, &mut self.gm2);
            self.gm2.mul_into(&self.c2, &mut self.tmp_nn_a);
            self.j_comp.set_identity();
            self.j_comp -= &self.tmp_nn_a;
            self.j_comp.mul_into(&self.a_mat, &mut self.a_bar);
            self.j_comp
                .congruence_broadcast_into(q, &mut self.sc_n_n, &mut self.q_bar)
                .expect("shapes fixed at construction");
            self.gm2
                .congruence_broadcast_into(&self.r2, &mut self.sc_m2_n, &mut self.tmp_nn_b)
                .expect("shapes fixed at construction");
            self.q_bar += &self.tmp_nn_b;
            self.q_bar
                .symmetrize_in_place()
                .expect("square by construction");
            self.gm2.mul_broadcast_into(&self.r2, &mut self.s_mat);
            self.s_mat.negate();
        } else {
            self.x_pred.copy_from(&self.x_bar);
            self.a_bar.copy_from(&self.a_mat);
            // The scalar path copies Q; `broadcast_from` (not
            // fill+add, which would turn −0.0 entries into +0.0).
            self.q_bar.broadcast_from(q);
            self.s_mat.fill(0.0);
        }
        self.a_bar
            .congruence_into(&self.p_prev, &mut self.sc_n_n, &mut self.p_pred)
            .expect("shapes fixed at construction");
        self.p_pred += &self.q_bar;
        self.p_pred
            .symmetrize_in_place()
            .expect("square by construction");

        // --- Step 3: correlated-noise state update (lines 11–14). ---
        // h₂ at x_pred is a per-robot model evaluation; failed lanes
        // are skipped (their x_pred holds garbage).
        for l in 0..K {
            if !ok[l] {
                continue;
            }
            self.x_pred.store_lane(l, &mut self.eval_x);
            system.measure_subset_into(&self.ref_slices, &self.eval_x, &mut self.eval_h2);
            self.h2.load_lane(l, &self.eval_h2);
        }
        self.out_innovation.copy_from(&self.z2);
        self.out_innovation -= &self.h2;
        for &i in &self.angular2 {
            let g = self.out_innovation.at_mut(i);
            for v in g.iter_mut() {
                *v = wrap_angle(*v);
            }
        }
        // Pν = ((C₂·P·C₂ᵀ + R₂) + (C₂S + (C₂S)ᵀ)).symmetrized()
        self.c2.mul_into(&self.s_mat, &mut self.tmp_m2m2_a);
        self.c2
            .congruence_into(&self.p_pred, &mut self.sc_n_m2, &mut self.p_nu)
            .expect("shapes fixed at construction");
        self.p_nu.add_assign_broadcast(&self.r2);
        self.tmp_m2m2_a.transpose_into(&mut self.tmp_m2m2_b);
        self.tmp_m2m2_a += &self.tmp_m2m2_b;
        self.p_nu += &self.tmp_m2m2_a;
        self.p_nu
            .symmetrize_in_place()
            .expect("square by construction");
        // Pseudo-inverse on the informative spectrum (see the scalar
        // path for why Pν is structurally singular and the cutoff
        // carries an absolute noise-scale floor). Failed lanes are
        // inactive so their NaN spectra cannot drag the sweep count.
        let converged = self.eigen.factorize(&self.p_nu, &ok);
        for l in 0..K {
            if ok[l] && !converged[l] {
                ok[l] = false;
            }
        }
        let mut cutoff = [0.0f64; K];
        for (l, c) in cutoff.iter_mut().enumerate() {
            if ok[l] {
                *c = (1e-9 * self.noise_scale).max(1e-10 * self.eigen.max_eigenvalue(l).abs());
            }
        }
        self.eigen.spectral_map_into(
            |l, lam| {
                if ok[l] && lam.abs() > cutoff[l] {
                    1.0 / lam
                } else {
                    0.0
                }
            },
            &mut self.p_nu_pinv,
        );
        let mut nu_rank = [0usize; K];
        let mut nu_pdet = [1.0f64; K];
        for l in 0..K {
            if !ok[l] {
                continue;
            }
            for k in 0..self.m2_dim {
                let lam = self.eigen.eigenvalues().at(k)[l];
                if lam.abs() > cutoff[l] {
                    nu_rank[l] += 1;
                    nu_pdet[l] *= lam;
                }
            }
        }
        // L = (P·C₂ᵀ + S)·Pν†
        self.p_pred
            .mul_transpose_into(&self.c2, &mut self.tmp_nm2_a);
        self.tmp_nm2_a += &self.s_mat;
        self.tmp_nm2_a.mul_into(&self.p_nu_pinv, &mut self.l_gain);
        self.l_gain
            .mul_vec_into(&self.out_innovation, &mut self.tmp_n);
        self.out_state_estimate.copy_from(&self.x_pred);
        self.out_state_estimate += &self.tmp_n;
        for &i in system.dynamics().angular_state_components() {
            let g = self.out_state_estimate.at_mut(i);
            for v in g.iter_mut() {
                *v = wrap_angle(*v);
            }
        }
        // J = I − L·C₂, Pˣ = (J·P·Jᵀ + L·R₂·Lᵀ − (JSLᵀ + (JSLᵀ)ᵀ)).symmetrized()
        self.l_gain.mul_into(&self.c2, &mut self.tmp_nn_a);
        self.j_upd.set_identity();
        self.j_upd -= &self.tmp_nn_a;
        self.j_upd.mul_into(&self.s_mat, &mut self.tmp_nm2_b);
        self.tmp_nm2_b
            .mul_transpose_into(&self.l_gain, &mut self.cross);
        self.j_upd
            .congruence_into(
                &self.p_pred,
                &mut self.sc_n_n,
                &mut self.out_state_covariance,
            )
            .expect("shapes fixed at construction");
        self.l_gain
            .congruence_broadcast_into(&self.r2, &mut self.sc_m2_n, &mut self.tmp_nn_a)
            .expect("shapes fixed at construction");
        self.out_state_covariance += &self.tmp_nn_a;
        self.cross.transpose_into(&mut self.tmp_nn_b);
        self.cross += &self.tmp_nn_b;
        self.out_state_covariance -= &self.cross;
        self.out_state_covariance
            .symmetrize_in_place()
            .expect("square by construction");

        // --- Step 4: testing-sensor anomaly estimation (lines 15–16).
        if !self.test_slices.is_empty() {
            // z₁ was gathered at load time; C₁/h₁ at the fresh state
            // estimate are per-robot model evaluations.
            for l in 0..K {
                if !ok[l] {
                    continue;
                }
                self.out_state_estimate.store_lane(l, &mut self.eval_x);
                system.jacobian_subset_into(&self.test_slices, &self.eval_x, &mut self.eval_c1);
                self.c1.load_lane(l, &self.eval_c1);
                system.measure_subset_into(&self.test_slices, &self.eval_x, &mut self.eval_h1);
                self.h1.load_lane(l, &self.eval_h1);
            }
            self.out_sensor_anomaly.copy_from(&self.z1);
            self.out_sensor_anomaly -= &self.h1;
            for &i in &self.angular1 {
                let g = self.out_sensor_anomaly.at_mut(i);
                for v in g.iter_mut() {
                    *v = wrap_angle(*v);
                }
            }
            self.c1
                .congruence_into(
                    &self.out_state_covariance,
                    &mut self.sc_n_m1,
                    &mut self.out_sensor_covariance,
                )
                .expect("shapes fixed at construction");
            self.out_sensor_covariance.add_assign_broadcast(&self.r1);
            self.out_sensor_covariance
                .symmetrize_in_place()
                .expect("square by construction");
        }

        // --- Step 5: mode likelihood (lines 17–20). ---
        let stat_all = self.out_innovation.quadratic_form(&self.p_nu_pinv);
        for l in 0..K {
            if !ok[l] {
                continue;
            }
            if nu_rank[l] == 0 {
                self.likelihood[l] = 1.0;
                self.consistency[l] = 1.0;
                continue;
            }
            let stat = stat_all[l].max(0.0);
            let norm = (2.0 * std::f64::consts::PI).powf(nu_rank[l] as f64 / 2.0)
                * nu_pdet[l].abs().sqrt();
            self.likelihood[l] = (-0.5 * stat).exp() / norm.max(f64::MIN_POSITIVE);
            match roboads_stats::ChiSquared::new(nu_rank[l]).and_then(|chi| chi.survival(stat)) {
                Ok(c) => self.consistency[l] = c,
                Err(_) => ok[l] = false,
            }
        }

        // --- Implied anomaly count (the engine's parsimony prior),
        // lane-batched to mirror `implied_anomaly_count` bit for bit.
        let conv = self
            .pars_actuator_eig
            .factorize(&self.out_actuator_covariance, &ok);
        for l in 0..K {
            if ok[l] && !conv[l] {
                ok[l] = false;
            }
        }
        let mut cut_a = [0.0f64; K];
        for (l, c) in cut_a.iter_mut().enumerate() {
            if ok[l] {
                *c = self.pars_actuator_eig.spectrum_cutoff(l);
            }
        }
        self.pars_actuator_eig.spectral_map_into(
            |l, lam| {
                if ok[l] && lam.abs() > cut_a[l] {
                    1.0 / lam
                } else {
                    0.0
                }
            },
            &mut self.pars_actuator_pinv,
        );
        let a_stat = self
            .out_actuator_anomaly
            .quadratic_form(&self.pars_actuator_pinv);
        for l in 0..K {
            self.counts[l] = usize::from(ok[l] && a_stat[l] > actuator_threshold);
        }
        let pars_slices = &mut self.pars_slices;
        let sensor_anomaly = &self.out_sensor_anomaly;
        let sensor_covariance = &self.out_sensor_covariance;
        let counts = &mut self.counts;
        for (s, &threshold) in pars_slices.iter_mut().zip(testing_thresholds) {
            for i in 0..s.len {
                *s.d.at_mut(i) = *sensor_anomaly.at(s.offset + i);
            }
            for i in 0..s.len {
                for j in 0..s.len {
                    *s.cov.at_mut(i, j) = *sensor_covariance.at(s.offset + i, s.offset + j);
                }
            }
            let conv = s.eig.factorize(&s.cov, &ok);
            for l in 0..K {
                if ok[l] && !conv[l] {
                    ok[l] = false;
                }
            }
            let mut cut = [0.0f64; K];
            for (l, c) in cut.iter_mut().enumerate() {
                if ok[l] {
                    *c = s.eig.spectrum_cutoff(l);
                }
            }
            let eig = &s.eig;
            eig.spectral_map_into(
                |l, lam| {
                    if ok[l] && lam.abs() > cut[l] {
                        1.0 / lam
                    } else {
                        0.0
                    }
                },
                &mut s.pinv,
            );
            let stat = s.d.quadratic_form(&s.pinv);
            for l in 0..K {
                if ok[l] && stat[l] > threshold {
                    counts[l] += 1;
                }
            }
        }
        ok
    }

    /// Copies lane `lane`'s results into `out` (which must be sized for
    /// this workspace's mode, e.g. the engine's per-mode output slot).
    /// Only meaningful for lanes whose [`run`](NuiseSlabWorkspace::run)
    /// flag was set.
    pub(crate) fn scatter_lane(&self, lane: usize, out: &mut NuiseOutput) {
        self.out_state_estimate
            .store_lane(lane, &mut out.state_estimate);
        self.out_state_covariance
            .store_lane(lane, &mut out.state_covariance);
        self.out_actuator_anomaly
            .store_lane(lane, &mut out.actuator_anomaly);
        self.out_actuator_covariance
            .store_lane(lane, &mut out.actuator_covariance);
        self.out_sensor_anomaly
            .store_lane(lane, &mut out.sensor_anomaly);
        self.out_sensor_covariance
            .store_lane(lane, &mut out.sensor_covariance);
        self.out_innovation.store_lane(lane, &mut out.innovation);
        out.likelihood = self.likelihood[lane];
        out.consistency = self.consistency[lane];
    }

    /// Lane `lane`'s implied anomaly count from the last
    /// [`run`](NuiseSlabWorkspace::run).
    pub(crate) fn count(&self, lane: usize) -> usize {
        self.counts[lane]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Linearization;
    use crate::engine::{implied_anomaly_count, ParsimonyScratch};
    use crate::nuise::{nuise_step_into, NuiseInput, NuiseWorkspace};
    use roboads_models::presets;

    const K: usize = 4;

    fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
        (0..system.sensor_count())
            .map(|i| system.sensor(i).unwrap().measure(x))
            .collect()
    }

    /// The slab pipeline must reproduce the scalar NUISE step and the
    /// scalar implied-anomaly count bit for bit, per lane, over warm
    /// multi-step trajectories with distinct per-lane states, for every
    /// reference/testing partition shape and both compensation settings.
    #[test]
    fn slab_run_is_bitwise_identical_to_scalar_step() {
        let system = presets::khepera_system();
        let modes = [
            Mode::new(vec![0], vec![1, 2]),
            Mode::new(vec![1], vec![0, 2]),
            Mode::new(vec![2], vec![0, 1]),
            Mode::new(vec![0, 1, 2], vec![]),
        ];
        let actuator_threshold = 9.21; // any positive constant works: both paths share it
        for mode in &modes {
            for compensate in [true, false] {
                let mut ws = NuiseWorkspace::new(&system, mode);
                let testing_thresholds: Vec<f64> = ws
                    .testing_slices()
                    .iter()
                    .map(|s| 2.0 + s.len as f64)
                    .collect();
                let mut scratch = ParsimonyScratch::new(system.input_dim(), ws.testing_slices());
                let mut slab = NuiseSlabWorkspace::<K>::new(&system, mode);
                let mut reference = ws.new_output();
                let mut scattered = ws.new_output();
                let mut x_est: Vec<Vector> = (0..K)
                    .map(|l| Vector::from_slice(&[0.4 + 0.1 * l as f64, 0.5, 0.1 * l as f64]))
                    .collect();
                let mut p: Vec<Matrix> = (0..K)
                    .map(|l| Matrix::identity(3) * (1e-4 * (l + 1) as f64))
                    .collect();
                let mut x_true = x_est.clone();
                let u: Vec<Vector> = (0..K)
                    .map(|l| Vector::from_slice(&[0.05 + 0.01 * l as f64, 0.05]))
                    .collect();
                for k in 0..15 {
                    let mut all_readings = Vec::new();
                    for l in 0..K {
                        x_true[l] = system.dynamics().step(&x_true[l], &u[l]);
                        let mut readings = clean_readings(&system, &x_true[l]);
                        if k > 7 {
                            readings[1][0] += 0.05 * (l + 1) as f64;
                        }
                        all_readings.push(readings);
                    }
                    for l in 0..K {
                        slab.load_lane(l, &system, &x_est[l], &p[l], &u[l], &all_readings[l])
                            .unwrap();
                    }
                    let ok = slab.run(
                        &system,
                        compensate,
                        actuator_threshold,
                        &testing_thresholds,
                        &[true; K],
                    );
                    assert_eq!(ok, [true; K], "mode {mode:?} step {k}");
                    for l in 0..K {
                        nuise_step_into(
                            NuiseInput {
                                system: &system,
                                mode,
                                x_prev: &x_est[l],
                                p_prev: &p[l],
                                u_prev: &u[l],
                                readings: &all_readings[l],
                                linearization: &Linearization::PerIteration,
                                compensate,
                            },
                            &mut ws,
                            &mut reference,
                        )
                        .unwrap();
                        let expected_count = implied_anomaly_count(
                            &reference,
                            actuator_threshold,
                            ws.testing_slices(),
                            &testing_thresholds,
                            &mut scratch,
                        )
                        .unwrap();
                        slab.scatter_lane(l, &mut scattered);
                        assert_eq!(
                            scattered, reference,
                            "mode {mode:?} lane {l} diverged at step {k}"
                        );
                        assert_eq!(slab.count(l), expected_count, "mode {mode:?} lane {l}");
                        x_est[l] = reference.state_estimate.clone();
                        p[l] = reference.state_covariance.clone();
                    }
                }
            }
        }
    }

    /// A partially-active tile (the fleet's remainder tail) must leave
    /// inactive lanes out while the active lanes stay bitwise-pinned.
    #[test]
    fn masked_lanes_do_not_perturb_active_lanes() {
        let system = presets::khepera_system();
        let mode = Mode::new(vec![0], vec![1, 2]);
        let mut ws = NuiseWorkspace::new(&system, &mode);
        let testing_thresholds: Vec<f64> = ws
            .testing_slices()
            .iter()
            .map(|s| 2.0 + s.len as f64)
            .collect();
        let mut slab = NuiseSlabWorkspace::<K>::new(&system, &mode);
        let mut reference = ws.new_output();
        let mut scattered = ws.new_output();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.3]);
        let p0 = Matrix::identity(3) * 1e-4;
        let u = Vector::from_slice(&[0.06, 0.05]);
        let x1 = system.dynamics().step(&x0, &u);
        let readings = clean_readings(&system, &x1);
        let mut active = [false; K];
        for l in 0..2 {
            slab.load_lane(l, &system, &x0, &p0, &u, &readings).unwrap();
            active[l] = true;
        }
        let ok = slab.run(&system, true, 9.21, &testing_thresholds, &active);
        assert_eq!(ok, active);
        nuise_step_into(
            NuiseInput {
                system: &system,
                mode: &mode,
                x_prev: &x0,
                p_prev: &p0,
                u_prev: &u,
                readings: &readings,
                linearization: &Linearization::PerIteration,
                compensate: true,
            },
            &mut ws,
            &mut reference,
        )
        .unwrap();
        for l in 0..2 {
            slab.scatter_lane(l, &mut scattered);
            assert_eq!(scattered, reference, "lane {l}");
        }
    }

    /// Bad readings must be rejected at load time with the scalar error.
    #[test]
    fn load_lane_rejects_bad_readings() {
        let system = presets::khepera_system();
        let mode = Mode::new(vec![0], vec![1, 2]);
        let mut slab = NuiseSlabWorkspace::<K>::new(&system, &mode);
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.3]);
        let p0 = Matrix::identity(3) * 1e-4;
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut readings = clean_readings(&system, &x0);
        readings[0][0] = f64::NAN;
        let err = slab
            .load_lane(1, &system, &x0, &p0, &u, &readings)
            .unwrap_err();
        assert!(matches!(err, crate::CoreError::BadReadings { .. }));
    }
}
