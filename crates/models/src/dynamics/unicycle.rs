use roboads_linalg::{Matrix, Vector};

use crate::angle::wrap_angle;
use crate::dynamics::DynamicsModel;
use crate::{ModelError, Result};

/// Plain unicycle kinematics: state `(x, y, θ)`, input `u = (v, ω)`.
///
/// Not one of the paper's evaluation robots, but the simplest nonlinear
/// model with the same structure — used by the test suite, by the
/// `custom_robot` example, and as the reference model for the
/// NUISE-vs-EKF equivalence checks.
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_models::dynamics::Unicycle;
/// use roboads_models::DynamicsModel;
///
/// # fn main() -> Result<(), roboads_models::ModelError> {
/// let uni = Unicycle::new(0.1)?;
/// let x1 = uni.step(
///     &Vector::from_slice(&[0.0, 0.0, 0.0]),
///     &Vector::from_slice(&[1.0, 0.5]),
/// );
/// assert!((x1[2] - 0.05).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Unicycle {
    dt: f64,
}

impl Unicycle {
    /// Creates the model with control period `dt` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive `dt`.
    pub fn new(dt: f64) -> Result<Self> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "dt",
                value: format!("{dt}"),
            });
        }
        Ok(Unicycle { dt })
    }

    /// Control period in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }
}

impl DynamicsModel for Unicycle {
    fn state_dim(&self) -> usize {
        3
    }

    fn input_dim(&self) -> usize {
        2
    }

    fn angular_state_components(&self) -> &[usize] {
        &[2]
    }

    fn name(&self) -> &str {
        "unicycle"
    }

    fn step(&self, x: &Vector, u: &Vector) -> Vector {
        assert_eq!(x.len(), 3, "unicycle expects a 3-state");
        assert_eq!(u.len(), 2, "unicycle expects (v, omega)");
        let theta = x[2];
        Vector::from_slice(&[
            x[0] + u[0] * theta.cos() * self.dt,
            x[1] + u[0] * theta.sin() * self.dt,
            wrap_angle(theta + u[1] * self.dt),
        ])
    }

    fn state_jacobian(&self, x: &Vector, u: &Vector) -> Matrix {
        let theta = x[2];
        Matrix::from_rows(&[
            &[1.0, 0.0, -u[0] * theta.sin() * self.dt],
            &[0.0, 1.0, u[0] * theta.cos() * self.dt],
            &[0.0, 0.0, 1.0],
        ])
        .expect("static shape")
    }

    fn input_jacobian(&self, x: &Vector, _u: &Vector) -> Matrix {
        let theta = x[2];
        Matrix::from_rows(&[
            &[theta.cos() * self.dt, 0.0],
            &[theta.sin() * self.dt, 0.0],
            &[0.0, self.dt],
        ])
        .expect("static shape")
    }

    fn step_into(&self, x: &Vector, u: &Vector, out: &mut Vector) {
        assert_eq!(x.len(), 3, "unicycle expects a 3-state");
        assert_eq!(u.len(), 2, "unicycle expects (v, omega)");
        let theta = x[2];
        out[0] = x[0] + u[0] * theta.cos() * self.dt;
        out[1] = x[1] + u[0] * theta.sin() * self.dt;
        out[2] = wrap_angle(theta + u[1] * self.dt);
    }

    fn state_jacobian_into(&self, x: &Vector, u: &Vector, out: &mut Matrix) {
        let theta = x[2];
        out.as_mut_slice().copy_from_slice(&[
            1.0,
            0.0,
            -u[0] * theta.sin() * self.dt,
            0.0,
            1.0,
            u[0] * theta.cos() * self.dt,
            0.0,
            0.0,
            1.0,
        ]);
    }

    fn input_jacobian_into(&self, x: &Vector, _u: &Vector, out: &mut Matrix) {
        let theta = x[2];
        out.as_mut_slice().copy_from_slice(&[
            theta.cos() * self.dt,
            0.0,
            theta.sin() * self.dt,
            0.0,
            0.0,
            self.dt,
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::test_support::{assert_into_variants_match, assert_jacobians_match};

    #[test]
    fn circular_trajectory_closes() {
        // v = r·ω around a circle; after 2π/ω seconds the pose returns.
        let dt = 0.001;
        let uni = Unicycle::new(dt).unwrap();
        let omega = 1.0;
        let steps = (2.0 * std::f64::consts::PI / omega / dt).round() as usize;
        let mut x = Vector::from_slice(&[1.0, 0.0, std::f64::consts::FRAC_PI_2]);
        let u = Vector::from_slice(&[1.0, omega]);
        for _ in 0..steps {
            x = uni.step(&x, &u);
        }
        assert!((x[0] - 1.0).abs() < 0.01, "x = {}", x[0]);
        assert!(x[1].abs() < 0.01, "y = {}", x[1]);
    }

    #[test]
    fn jacobians_match_numeric() {
        let uni = Unicycle::new(0.1).unwrap();
        let x = Vector::from_slice(&[0.2, -0.8, 1.1]);
        let u = Vector::from_slice(&[0.4, -0.6]);
        assert_jacobians_match(&uni, &x, &u, 1e-6);
        assert_into_variants_match(&uni, &x, &u);
    }

    #[test]
    fn rejects_bad_dt() {
        assert!(Unicycle::new(0.0).is_err());
        assert!(Unicycle::new(f64::INFINITY).is_err());
    }
}
