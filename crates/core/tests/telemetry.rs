//! Smoke test for the instrumented hot path: a clean 30-iteration
//! Khepera run must emit the expected span and counter set, and a
//! spoofed run must add the alarm events — so a refactor cannot
//! silently drop instrumentation from the pipeline.

use std::collections::BTreeSet;
use std::sync::Arc;

use roboads_core::obs::{RingBufferSink, Telemetry, WriterSink};
use roboads_core::{ModeSet, RoboAds, RoboAdsConfig};
use roboads_linalg::Vector;
use roboads_models::{presets, RobotSystem};

fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
    (0..system.sensor_count())
        .map(|i| system.sensor(i).unwrap().measure(x))
        .collect()
}

const ITERATIONS: usize = 30;

fn run_clean(telemetry: Telemetry) -> RoboAds {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    // Sequential fan-out: the span-accounting assertion below (stage
    // spans sum within their parent's wall clock) only holds when the
    // per-mode NUISE spans do not run concurrently.
    let mut ads = RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults().with_threads(1),
        x0.clone(),
        ModeSet::one_reference_per_sensor(&system),
    )
    .unwrap()
    .with_telemetry(telemetry);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut x_true = x0;
    for _ in 0..ITERATIONS {
        x_true = system.dynamics().step(&x_true, &u);
        ads.step(&u, &clean_readings(&system, &x_true)).unwrap();
    }
    ads
}

#[test]
fn clean_run_emits_the_expected_span_and_counter_set() {
    let ring = Arc::new(RingBufferSink::new(100_000));
    let telemetry = Telemetry::new(ring.clone());
    let ads = run_clean(telemetry.clone());

    // Every pipeline stage shows up as a span, with per-step counts.
    let spans = ring.spans();
    let names: BTreeSet<&str> = spans.iter().map(|s| s.name).collect();
    for expected in [
        "engine.step",
        "engine.nuise_mode",
        "engine.parsimony",
        "engine.select",
        "engine.reanchor",
        "decision.assess",
    ] {
        assert!(
            names.contains(expected),
            "missing span {expected}: {names:?}"
        );
    }
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    assert_eq!(count("engine.step"), ITERATIONS);
    assert_eq!(count("decision.assess"), ITERATIONS);
    assert_eq!(count("engine.nuise_mode"), ITERATIONS * 3, "one per mode");
    // Stage spans nest inside their engine.step wall-clock-wise.
    let step_total: u64 = spans
        .iter()
        .filter(|s| s.name == "engine.step")
        .map(|s| s.duration_ns)
        .sum();
    let nuise_total: u64 = spans
        .iter()
        .filter(|s| s.name == "engine.nuise_mode")
        .map(|s| s.duration_ns)
        .sum();
    assert!(nuise_total <= step_total, "stage spans exceed their parent");

    // Counters and per-mode histograms land in the shared registry.
    let metrics = telemetry.metrics();
    assert_eq!(
        metrics.counter_value("engine.steps"),
        Some(ITERATIONS as u64)
    );
    assert_eq!(metrics.counter_value("engine.numeric_failures"), Some(0));
    assert_eq!(metrics.counter_value("decision.sensor_alarms"), Some(0));
    assert_eq!(metrics.counter_value("decision.actuator_alarms"), Some(0));
    // Per-mode distribution histograms are sampled 1-in-16 commits
    // (first sample on the first commit) — recording them per step was
    // the dominant term of the live-sink telemetry overhead. 30
    // iterations sample commits 1 and 17.
    let hist_samples = 1 + (ITERATIONS as u64 - 1) / 16;
    for m in 0..3 {
        let p = metrics
            .histogram_summary(&format!("engine.mode{m}.probability"))
            .unwrap();
        assert_eq!(p.count, hist_samples);
        assert!(p.nonfinite == 0, "mode probabilities must stay finite");
        let c = metrics
            .histogram_summary(&format!("engine.mode{m}.consistency"))
            .unwrap();
        assert_eq!(c.count, hist_samples);
        assert!(c.p50 > 1e-4, "clean run must stay innovation-consistent");
    }
    assert_eq!(ads.iteration(), ITERATIONS as u64);
    assert!(!ads.telemetry().metrics().snapshot().to_json().is_empty());
}

#[test]
fn spoofed_run_logs_confirmed_alarm_events() {
    let ring = Arc::new(RingBufferSink::new(100_000));
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut ads = RoboAds::with_defaults(system.clone(), x0.clone())
        .unwrap()
        .with_telemetry(Telemetry::new(ring.clone()));
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut x_true = x0;
    for _ in 0..12 {
        x_true = system.dynamics().step(&x_true, &u);
        let mut readings = clean_readings(&system, &x_true);
        readings[0][0] += 0.07;
        ads.step(&u, &readings).unwrap();
    }
    let confirmed: Vec<_> = ring
        .events()
        .into_iter()
        .filter(|e| e.name == "decision.sensor_alarm_confirmed")
        .collect();
    assert_eq!(confirmed.len(), 1, "edge-triggered: one confirmation");
    assert!(
        confirmed[0]
            .fields
            .iter()
            .any(|(k, v)| *k == "sensors"
                && matches!(v, roboads_core::obs::Value::Text(s) if s == "0")),
        "event must name the identified sensor: {:?}",
        confirmed[0].fields
    );
    assert_eq!(
        ads.telemetry()
            .metrics()
            .counter_value("decision.sensor_alarms"),
        Some(1)
    );
}

#[test]
fn parallel_nuise_spans_carry_worker_attribution() {
    let ring = Arc::new(RingBufferSink::new(100_000));
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut ads = RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults().with_threads(3),
        x0.clone(),
        ModeSet::one_reference_per_sensor(&system),
    )
    .unwrap()
    .with_telemetry(Telemetry::new(ring.clone()));
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut x_true = x0;
    for _ in 0..5 {
        x_true = system.dynamics().step(&x_true, &u);
        ads.step(&u, &clean_readings(&system, &x_true)).unwrap();
    }
    let spans = ring.spans();
    let nuise: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "engine.nuise_mode")
        .collect();
    assert_eq!(nuise.len(), 5 * 3);
    for s in &nuise {
        assert!(
            (1..=3).contains(&s.worker),
            "parallel NUISE span attributed to worker {}",
            s.worker
        );
    }
    // Main-thread stages keep the default worker 0.
    for s in spans.iter().filter(|s| s.name == "engine.step") {
        assert_eq!(s.worker, 0);
    }
}

#[test]
fn disabled_telemetry_still_collects_metrics_but_no_records() {
    let telemetry = Telemetry::disabled();
    run_clean(telemetry.clone());
    assert_eq!(
        telemetry.metrics().counter_value("engine.steps"),
        Some(ITERATIONS as u64)
    );
}

#[test]
fn writer_sink_produces_parseable_jsonl() {
    // Shared-buffer writer so we can inspect after the run.
    #[derive(Clone, Default)]
    struct Shared(Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let buf = Shared::default();
    run_clean(Telemetry::new(Arc::new(WriterSink::new(buf.clone()))));
    let out = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    assert!(!out.is_empty());
    for line in out.lines() {
        assert!(
            line.starts_with("{\"type\":\"") && line.ends_with('}'),
            "not a JSONL record: {line}"
        );
    }
}
