//! External load generation for the sharded fleet service
//! (`DESIGN.md` §18): trace-driven wire producers.
//!
//! The sharded deployment splits roles across processes — simulation
//! (or a real bus bridge) *produces* stamped frames, the detection
//! service *consumes* them over a socket. This module is the producer
//! half: it replays recorded [`Trace`]s as the binary wire protocol,
//! one [`WireFrame::Input`] plus one [`WireFrame::Reading`] per sensor
//! per robot per tick, closing each tick with [`WireFrame::TickEnd`].
//! Because the traces carry the exact `f64` bits the in-process runner
//! fed its detectors, a service fed from this producer is bitwise
//! identical to the in-process sync path whenever every frame lands on
//! time (pinned by `tests/shard_service.rs`).
//!
//! [`serve_traces_uds`] is the one-machine harness: producer thread on
//! one end of a Unix-domain socket, the caller's [`ShardedFleet`]
//! pumped on the other — the same byte stream a genuinely separate
//! process would send, without needing one in tests and benches.

use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;

use roboads_core::ShardedFleet;
use roboads_wire::{serve_uds, FrameWriter, ServeSummary, WireError, WireFrame};

use crate::trace::Trace;

/// Streams recorded traces over `sink` as wire frames: per tick, every
/// robot's planned command and sensor readings (stamped with the tick),
/// then the tick boundary; finally an orderly `Bye`. Robots are
/// `(global id, trace)` pairs; a robot whose trace is shorter than the
/// longest simply stops producing (its slots resolve by deadline
/// policy, exactly like a silent robot on a real bus).
///
/// # Errors
///
/// The sink's I/O failure.
pub fn stream_traces<W: Write>(robots: &[(u64, &Trace)], sink: W) -> Result<(), WireError> {
    let mut writer = FrameWriter::new(sink);
    let ticks = robots.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
    for k in 0..ticks {
        let tick = k as u64;
        for (robot, trace) in robots {
            let Some(record) = trace.records().get(k) else {
                continue;
            };
            writer.send(&WireFrame::Input {
                robot: *robot,
                tick,
                values: record.planned_command.as_slice().to_vec(),
            });
            for (sensor, reading) in record.readings.iter().enumerate() {
                writer.send(&WireFrame::Reading {
                    robot: *robot,
                    sensor: sensor as u32,
                    tick,
                    values: reading.as_slice().to_vec(),
                });
            }
        }
        writer.send(&WireFrame::TickEnd { tick });
        // One flush per tick: the frame batch crosses the socket as a
        // handful of writes, mimicking a per-tick bus flush.
        writer.flush()?;
    }
    writer.finish()
}

/// One-machine wire session over a Unix-domain socket: binds `socket`,
/// spawns a producer thread streaming `robots`' traces, and pumps the
/// connection into `fleet` until `Bye`. Returns the service-side
/// summary (frames accepted/rejected, ticks stepped).
///
/// # Errors
///
/// Socket setup failures, producer I/O failures, or any protocol error
/// from the service-side pump.
pub fn serve_traces_uds(
    socket: &Path,
    robots: &[(u64, Trace)],
    fleet: &mut ShardedFleet,
) -> Result<ServeSummary, WireError> {
    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    let producer_robots: Vec<(u64, Trace)> = robots.to_vec();
    let path = socket.to_path_buf();
    let producer = std::thread::spawn(move || -> Result<(), WireError> {
        let stream = UnixStream::connect(&path)?;
        let borrowed: Vec<(u64, &Trace)> = producer_robots.iter().map(|(id, t)| (*id, t)).collect();
        stream_traces(&borrowed, stream)
    });
    let summary = serve_uds(&listener, fleet);
    let produced = producer.join().expect("producer thread panicked");
    let _ = std::fs::remove_file(socket);
    produced?;
    summary
}
