//! Pins every slab kernel bitwise (exact `==` / `to_bits`) against the
//! scalar in-place reference in `inplace.rs`, lane by lane, over
//! randomized shapes and values — including injected exact zeros (the
//! zero-skip branches), singular LU lanes and masked eigen lanes.
//!
//! Uses a self-contained splitmix64 generator so the suite runs in the
//! offline tier-1 build with no external packages.
// Index-form lane loops, matching the convention of the kernels under
// test.
#![allow(clippy::needless_range_loop)]

use roboads_linalg::{
    EigenSlabWorkspace, EigenWorkspace, LuSlabWorkspace, LuWorkspace, Matrix, MatrixSlab, Vector,
    VectorSlab,
};

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in [-1, 1), with roughly one entry in eight forced to an
    /// exact 0.0 so the scalar zero-skip branches diverge across lanes.
    fn entry(&mut self) -> f64 {
        let bits = self.next_u64();
        if bits & 0x7 == 0 {
            return 0.0;
        }
        (bits >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    fn matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| self.entry()).collect())
            .expect("sized data")
    }

    fn vector(&mut self, len: usize) -> Vector {
        Vector::from((0..len).map(|_| self.entry()).collect::<Vec<_>>())
    }

    fn symmetric(&mut self, n: usize) -> Matrix {
        self.matrix(n, n).symmetrized().unwrap()
    }
}

fn load<const K: usize>(lanes: &[Matrix]) -> MatrixSlab<K> {
    let mut slab = MatrixSlab::<K>::zeros(lanes[0].rows(), lanes[0].cols());
    for (l, m) in lanes.iter().enumerate() {
        slab.load_lane(l, m);
    }
    slab
}

fn load_vec<const K: usize>(lanes: &[Vector]) -> VectorSlab<K> {
    let mut slab = VectorSlab::<K>::zeros(lanes[0].len());
    for (l, v) in lanes.iter().enumerate() {
        slab.load_lane(l, v);
    }
    slab
}

/// Asserts lane `lane` of `slab` is bitwise equal to `expected`.
fn assert_lane_eq<const K: usize>(slab: &MatrixSlab<K>, lane: usize, expected: &Matrix, op: &str) {
    let mut got = Matrix::zeros(expected.rows(), expected.cols());
    slab.store_lane(lane, &mut got);
    for (g, e) in got.as_slice().iter().zip(expected.as_slice()) {
        assert_eq!(
            g.to_bits(),
            e.to_bits(),
            "{op}: lane {lane} diverges from scalar ({g} vs {e})"
        );
    }
}

fn assert_lane_vec_eq<const K: usize>(
    slab: &VectorSlab<K>,
    lane: usize,
    expected: &Vector,
    op: &str,
) {
    let mut got = Vector::zeros(expected.len());
    slab.store_lane(lane, &mut got);
    for (g, e) in got.as_slice().iter().zip(expected.as_slice()) {
        assert_eq!(
            g.to_bits(),
            e.to_bits(),
            "{op}: lane {lane} diverges from scalar ({g} vs {e})"
        );
    }
}

const K: usize = 8;
const SHAPES: &[(usize, usize, usize)] = &[(1, 1, 1), (2, 3, 2), (3, 3, 3), (4, 2, 5), (5, 5, 4)];

#[test]
fn products_match_scalar_bitwise_per_lane() {
    let mut rng = Rng(0x51ab_0001);
    for &(m, n, p) in SHAPES {
        for _round in 0..8 {
            let a: Vec<Matrix> = (0..K).map(|_| rng.matrix(m, n)).collect();
            let b: Vec<Matrix> = (0..K).map(|_| rng.matrix(n, p)).collect();
            let bt: Vec<Matrix> = (0..K).map(|_| rng.matrix(p, n)).collect();
            let v: Vec<Vector> = (0..K).map(|_| rng.vector(n)).collect();
            let a_slab = load::<K>(&a);
            let b_slab = load::<K>(&b);
            let bt_slab = load::<K>(&bt);
            let v_slab = load_vec::<K>(&v);

            let mut out = MatrixSlab::<K>::zeros(m, p);
            a_slab.mul_into(&b_slab, &mut out);
            let mut expected = Matrix::zeros(m, p);
            for l in 0..K {
                a[l].mul_into(&b[l], &mut expected);
                assert_lane_eq(&out, l, &expected, "mul_into");
            }

            let mut out_t = MatrixSlab::<K>::zeros(m, p);
            a_slab.mul_transpose_into(&bt_slab, &mut out_t);
            for l in 0..K {
                a[l].mul_transpose_into(&bt[l], &mut expected);
                assert_lane_eq(&out_t, l, &expected, "mul_transpose_into");
            }

            let mut out_v = VectorSlab::<K>::zeros(m);
            a_slab.mul_vec_into(&v_slab, &mut out_v);
            let mut expected_v = Vector::zeros(m);
            for l in 0..K {
                a[l].mul_vec_into(&v[l], &mut expected_v);
                assert_lane_vec_eq(&out_v, l, &expected_v, "mul_vec_into");
            }

            // Broadcast variants: one scalar operand shared by all lanes.
            let shared_rhs = rng.matrix(n, p);
            let mut out_b = MatrixSlab::<K>::zeros(m, p);
            a_slab.mul_broadcast_into(&shared_rhs, &mut out_b);
            for l in 0..K {
                a[l].mul_into(&shared_rhs, &mut expected);
                assert_lane_eq(&out_b, l, &expected, "mul_broadcast_into");
            }

            let shared_lhs = rng.matrix(p, n);
            let mut out_p = MatrixSlab::<K>::zeros(p, m);
            a_slab.premul_transpose_into(&shared_lhs, &mut out_p);
            let mut expected_p = Matrix::zeros(p, m);
            for l in 0..K {
                shared_lhs.mul_transpose_into(&a[l], &mut expected_p);
                assert_lane_eq(&out_p, l, &expected_p, "premul_transpose_into");
            }
        }
    }
}

#[test]
fn congruence_matches_scalar_bitwise_per_lane() {
    let mut rng = Rng(0x51ab_0002);
    for &(m, n, _) in SHAPES {
        for _round in 0..8 {
            let a: Vec<Matrix> = (0..K).map(|_| rng.matrix(m, n)).collect();
            let p: Vec<Matrix> = (0..K).map(|_| rng.symmetric(n)).collect();
            let a_slab = load::<K>(&a);
            let p_slab = load::<K>(&p);

            let mut scratch = MatrixSlab::<K>::zeros(n, m);
            let mut out = MatrixSlab::<K>::zeros(m, m);
            a_slab
                .congruence_into(&p_slab, &mut scratch, &mut out)
                .unwrap();
            let mut sc = Matrix::zeros(n, m);
            let mut expected = Matrix::zeros(m, m);
            for l in 0..K {
                a[l].congruence_into(&p[l], &mut sc, &mut expected).unwrap();
                assert_lane_eq(&out, l, &expected, "congruence_into");
            }

            let shared_p = rng.symmetric(n);
            a_slab
                .congruence_broadcast_into(&shared_p, &mut scratch, &mut out)
                .unwrap();
            for l in 0..K {
                a[l].congruence_into(&shared_p, &mut sc, &mut expected)
                    .unwrap();
                assert_lane_eq(&out, l, &expected, "congruence_broadcast_into");
            }
        }
    }
}

#[test]
fn elementwise_ops_match_scalar_bitwise_per_lane() {
    let mut rng = Rng(0x51ab_0003);
    for &(m, n, _) in SHAPES {
        let a: Vec<Matrix> = (0..K).map(|_| rng.matrix(m, n)).collect();
        let b: Vec<Matrix> = (0..K).map(|_| rng.matrix(m, n)).collect();
        let shared = rng.matrix(m, n);
        let mut slab = load::<K>(&a);
        let b_slab = load::<K>(&b);

        slab += &b_slab;
        slab.add_assign_broadcast(&shared);
        slab -= &b_slab;
        slab.negate();
        for l in 0..K {
            let mut expected = a[l].clone();
            expected += &b[l];
            expected += &shared;
            expected -= &b[l];
            expected.negate();
            assert_lane_eq(&slab, l, &expected, "add/sub/negate");
        }

        let mut t = MatrixSlab::<K>::zeros(n, m);
        slab.transpose_into(&mut t);
        for l in 0..K {
            let mut expected = a[l].clone();
            expected += &b[l];
            expected += &shared;
            expected -= &b[l];
            expected.negate();
            let mut et = Matrix::zeros(n, m);
            expected.transpose_into(&mut et);
            assert_lane_eq(&t, l, &et, "transpose_into");
        }
    }

    // Symmetrize and quadratic form on square shapes.
    for n in 1..=5 {
        let s: Vec<Matrix> = (0..K).map(|_| rng.matrix(n, n)).collect();
        let v: Vec<Vector> = (0..K).map(|_| rng.vector(n)).collect();
        let mut slab = load::<K>(&s);
        slab.symmetrize_in_place().unwrap();
        for l in 0..K {
            let mut expected = s[l].clone();
            expected.symmetrize_in_place().unwrap();
            assert_lane_eq(&slab, l, &expected, "symmetrize_in_place");
        }

        let v_slab = load_vec::<K>(&v);
        let q = v_slab.quadratic_form(&slab);
        for l in 0..K {
            let mut sym = s[l].clone();
            sym.symmetrize_in_place().unwrap();
            let expected = v[l].quadratic_form(&sym).unwrap();
            assert_eq!(
                q[l].to_bits(),
                expected.to_bits(),
                "quadratic_form lane {l}"
            );
        }
    }
}

#[test]
fn lu_matches_scalar_bitwise_per_lane_including_singular() {
    let mut rng = Rng(0x51ab_0004);
    for n in 1..=5 {
        for round in 0..8 {
            let mats: Vec<Matrix> = (0..K)
                .map(|l| {
                    if (l + round) % 3 == 0 && n > 1 {
                        // Rank-deficient lane: duplicate a row so this
                        // lane takes the singularity-skip path while
                        // its lane-mates eliminate normally.
                        let mut m = rng.matrix(n, n);
                        for j in 0..n {
                            let v = m[(0, j)];
                            m[(n - 1, j)] = v;
                        }
                        m
                    } else {
                        // Diagonally dominated lane: guaranteed
                        // non-singular.
                        let mut m = rng.matrix(n, n);
                        for i in 0..n {
                            m[(i, i)] += 3.0;
                        }
                        m
                    }
                })
                .collect();
            let slab = load::<K>(&mats);
            let mut ws = LuSlabWorkspace::<K>::new(n);
            ws.factorize(&slab);
            let mut inv = MatrixSlab::<K>::zeros(n, n);
            ws.inverse_into(&mut inv);

            let mut scalar_ws = LuWorkspace::new(n);
            let mut expected = Matrix::zeros(n, n);
            for l in 0..K {
                scalar_ws.factorize(&mats[l]).unwrap();
                assert_eq!(
                    ws.singular()[l],
                    scalar_ws.is_singular(),
                    "lu singularity flag lane {l}"
                );
                if !scalar_ws.is_singular() {
                    scalar_ws.inverse_into(&mut expected).unwrap();
                    assert_lane_eq(&inv, l, &expected, "lu inverse_into");
                }
            }
        }
    }
}

#[test]
fn eigen_matches_scalar_bitwise_per_lane_with_mask() {
    let mut rng = Rng(0x51ab_0005);
    for n in 1..=5 {
        for round in 0..6 {
            let mats: Vec<Matrix> = (0..K).map(|_| rng.symmetric(n)).collect();
            let slab = load::<K>(&mats);
            let mut active = [true; K];
            // Mask a couple of lanes so their (stale) buffers cannot
            // perturb the live lanes.
            active[round % K] = false;
            active[(round + 3) % K] = false;
            let mut ws = EigenSlabWorkspace::<K>::new(n);
            let converged = ws.factorize(&slab, &active);

            let mut scalar_ws = EigenWorkspace::new(n);
            for l in 0..K {
                if !active[l] {
                    assert!(!converged[l], "inactive lane {l} must report false");
                    continue;
                }
                scalar_ws.factorize(&mats[l]).unwrap();
                assert!(converged[l], "lane {l} failed to converge");
                let mut got = Vector::zeros(n);
                ws.eigenvalues().store_lane(l, &mut got);
                for (g, e) in got
                    .as_slice()
                    .iter()
                    .zip(scalar_ws.eigenvalues().as_slice())
                {
                    assert_eq!(g.to_bits(), e.to_bits(), "eigenvalues lane {l}");
                }
                assert_eq!(
                    ws.max_eigenvalue(l).to_bits(),
                    scalar_ws.max_eigenvalue().to_bits(),
                    "max_eigenvalue lane {l}"
                );
            }

            // Pseudo-inverse through the slab spectral map matches the
            // scalar pseudo_inverse_into exactly (same cutoff code).
            let mut cutoff = [0.0f64; K];
            for l in 0..K {
                cutoff[l] = ws.spectrum_cutoff(l);
            }
            let mut pinv = MatrixSlab::<K>::zeros(n, n);
            ws.spectral_map_into(
                |l, lam| {
                    if lam.abs() > cutoff[l] {
                        1.0 / lam
                    } else {
                        0.0
                    }
                },
                &mut pinv,
            );
            let mut expected = Matrix::zeros(n, n);
            for l in 0..K {
                if !active[l] {
                    continue;
                }
                mats[l]
                    .pseudo_inverse_into(&mut scalar_ws, &mut expected)
                    .unwrap();
                assert_lane_eq(&pinv, l, &expected, "slab pseudo-inverse");
            }
        }
    }
}

#[test]
fn eigen_spectral_map_zero_skip_matches_scalar() {
    // A map that returns 0.0 for most eigenvalues exercises the
    // masked-accumulate path (the scalar zero-skip `continue`).
    let mut rng = Rng(0x51ab_0006);
    let n = 4;
    let mats: Vec<Matrix> = (0..K).map(|_| rng.symmetric(n)).collect();
    let slab = load::<K>(&mats);
    let mut ws = EigenSlabWorkspace::<K>::new(n);
    let converged = ws.factorize(&slab, &[true; K]);
    let mut scalar_ws = EigenWorkspace::new(n);
    let mut out = MatrixSlab::<K>::zeros(n, n);
    ws.spectral_map_into(|_, lam| if lam > 0.5 { lam * lam } else { 0.0 }, &mut out);
    let mut expected = Matrix::zeros(n, n);
    for l in 0..K {
        assert!(converged[l]);
        scalar_ws.factorize(&mats[l]).unwrap();
        scalar_ws.spectral_map_into(|lam| if lam > 0.5 { lam * lam } else { 0.0 }, &mut expected);
        assert_lane_eq(&out, l, &expected, "spectral_map zero-skip");
    }
}

#[test]
fn identity_fill_copy_roundtrip() {
    let mut rng = Rng(0x51ab_0007);
    let mats: Vec<Matrix> = (0..K).map(|_| rng.matrix(3, 3)).collect();
    let slab = load::<K>(&mats);
    let mut copy = MatrixSlab::<K>::zeros(3, 3);
    copy.copy_from(&slab);
    for l in 0..K {
        assert_lane_eq(&copy, l, &mats[l], "copy_from");
    }
    copy.set_identity();
    for l in 0..K {
        assert_lane_eq(&copy, l, &Matrix::identity(3), "set_identity");
    }
    copy.fill(2.5);
    assert_eq!(*copy.at(1, 2), [2.5; K]);
}
