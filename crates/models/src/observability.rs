//! Linearized observability analysis for reference-sensor validation.
//!
//! §VI of the paper ("Sensor capabilities") requires that the reference
//! sensors of every NUISE mode can reconstruct the robot state: "the
//! system is observable using the reference sensors". A magnetometer
//! alone cannot; grouped with a GPS it can. This module checks the rank
//! of the local observability matrix
//!
//! ```text
//! O = [C; C·A; C·A²; …; C·A^{n−1}]
//! ```
//!
//! built from the Jacobians of the dynamics and the chosen sensor subset
//! at an operating point.

use roboads_linalg::{Matrix, Vector};

use crate::system::RobotSystem;
use crate::Result;

/// Rank of the local observability matrix for the sensor subset at the
/// operating point `(x, u)`.
///
/// # Errors
///
/// Propagates subset-validation errors from the system description.
///
/// # Panics
///
/// Panics on an invalid (unsorted / out-of-range) subset, matching the
/// contract of [`RobotSystem::jacobian_subset`].
pub fn observability_rank(
    system: &RobotSystem,
    reference_sensors: &[usize],
    x: &Vector,
    u: &Vector,
) -> Result<usize> {
    let n = system.state_dim();
    let a = system.dynamics().state_jacobian(x, u);
    let c = system.jacobian_subset(reference_sensors, x);

    let mut blocks = Vec::with_capacity(n);
    let mut ca = c;
    for _ in 0..n {
        blocks.push(ca.clone());
        ca = &ca * &a;
    }
    let obs = Matrix::vstack_all(blocks.iter()).expect("observability blocks share column count");
    // rank(O) = rank(OᵀO); the Gram matrix is symmetric, which our
    // eigendecomposition-based rank requires.
    let gram = &obs.transpose() * &obs;
    Ok(gram.rank().expect("gram matrix is square and symmetric"))
}

/// Whether the subset makes the state fully observable at `(x, u)`.
///
/// # Errors
///
/// Propagates errors from [`observability_rank`].
pub fn is_observable(
    system: &RobotSystem,
    reference_sensors: &[usize],
    x: &Vector,
    u: &Vector,
) -> Result<bool> {
    Ok(observability_rank(system, reference_sensors, x, u)? == system.state_dim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::Unicycle;
    use crate::sensors::{Gps, Magnetometer, SensorModel};
    use crate::{presets, DynamicsModel};
    use std::sync::Arc;

    fn partial_sensor_system() -> RobotSystem {
        let dynamics: Arc<dyn DynamicsModel> = Arc::new(Unicycle::new(0.1).unwrap());
        let gps: Arc<dyn SensorModel> = Arc::new(Gps::new(0.1).unwrap());
        let mag: Arc<dyn SensorModel> = Arc::new(Magnetometer::new(0.01).unwrap());
        RobotSystem::new(
            dynamics,
            Matrix::from_diagonal(&[1e-4, 1e-4, 1e-4]),
            vec![gps, mag],
        )
        .unwrap()
    }

    #[test]
    fn every_khepera_sensor_observes_the_full_state() {
        let sys = presets::khepera_system();
        let x = Vector::from_slice(&[1.0, 1.0, 0.3]);
        let u = Vector::from_slice(&[0.05, 0.04]);
        for i in 0..sys.sensor_count() {
            assert!(
                is_observable(&sys, &[i], &x, &u).unwrap(),
                "sensor {i} should observe the full pose"
            );
        }
    }

    #[test]
    fn magnetometer_alone_is_not_observable() {
        let sys = partial_sensor_system();
        let x = Vector::from_slice(&[0.5, 0.5, 0.0]);
        let u = Vector::from_slice(&[0.1, 0.0]);
        // Magnetometer is sensor 1.
        assert!(!is_observable(&sys, &[1], &x, &u).unwrap());
        assert_eq!(observability_rank(&sys, &[1], &x, &u).unwrap(), 1);
    }

    #[test]
    fn gps_alone_misses_heading_when_stationary() {
        let sys = partial_sensor_system();
        let x = Vector::from_slice(&[0.5, 0.5, 0.0]);
        // With zero speed the heading never enters the position dynamics.
        let u = Vector::from_slice(&[0.0, 0.0]);
        assert!(!is_observable(&sys, &[0], &x, &u).unwrap());
        // While moving, the heading becomes locally observable through
        // the position drift.
        let u_moving = Vector::from_slice(&[0.2, 0.0]);
        assert!(is_observable(&sys, &[0], &x, &u_moving).unwrap());
    }

    #[test]
    fn grouping_gps_and_magnetometer_restores_observability() {
        let sys = partial_sensor_system();
        let x = Vector::from_slice(&[0.5, 0.5, 0.0]);
        let u = Vector::from_slice(&[0.0, 0.0]);
        assert!(is_observable(&sys, &[0, 1], &x, &u).unwrap());
    }
}
