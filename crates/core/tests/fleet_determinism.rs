//! Fleet batching must be *bitwise* invisible to every robot.
//!
//! A [`FleetEngine`] stepping N robots — at any batch size and any
//! robot-grain thread count — must produce, for each robot, exactly the
//! [`DetectionReport`] sequence a standalone [`RoboAds`] produces when
//! fed the same inputs. Robots share no mutable state and each cell's
//! arithmetic is the standalone `step_into` path, so chunk boundaries
//! and thread interleavings cannot perturb a single bit (see
//! `DESIGN.md` §12).
//!
//! Each robot gets a *phase-offset* copy of the same scripted scenario
//! (IPS spoof, then a LiDAR DoS on top, shifted by the robot index), so
//! robots are genuinely distinct mid-run: a cross-robot state leak or
//! an off-by-one in the chunked scheduler shows up as a mismatch.

use roboads_core::{
    ActivationPolicy, DetectionReport, FleetEngine, ModeSet, RoboAds, RoboAdsConfig, RobotInput,
};
use roboads_linalg::Vector;
use roboads_models::{presets, RobotSystem};

const STEPS: usize = 20;

fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
    (0..system.sensor_count())
        .map(|i| system.sensor(i).unwrap().measure(x))
        .collect()
}

/// Robot `robot`'s readings at step `k`: the shared trajectory with the
/// misbehavior schedule phase-shifted by the robot index.
fn robot_readings(system: &RobotSystem, x: &Vector, robot: usize, k: usize) -> Vec<Vector> {
    let mut readings = clean_readings(system, x);
    let phase = robot % 5;
    if k >= 8 + phase {
        readings[0][0] += 0.07; // IPS spoof
    }
    if k >= 14 + phase {
        readings[2] = Vector::zeros(4); // LiDAR DoS on top
    }
    readings
}

fn detector() -> RoboAds {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    RoboAds::with_defaults(system, x0).unwrap()
}

/// Per-robot report sequences from N standalone detectors.
fn standalone_runs(robots: usize) -> Vec<Vec<DetectionReport>> {
    let system = presets::khepera_system();
    let u = Vector::from_slice(&[0.06, 0.05]);
    (0..robots)
        .map(|robot| {
            let mut ads = detector();
            let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
            let mut reports = Vec::with_capacity(STEPS);
            for k in 0..STEPS {
                x_true = system.dynamics().step(&x_true, &u);
                let readings = robot_readings(&system, &x_true, robot, k);
                reports.push(ads.step(&u, &readings).unwrap());
            }
            reports
        })
        .collect()
}

/// Per-robot report sequences from one fleet stepped batch-wise.
fn fleet_run(robots: usize, threads: usize) -> Vec<Vec<DetectionReport>> {
    let system = presets::khepera_system();
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut fleet = FleetEngine::new((0..robots).map(|_| detector()).collect(), threads);
    let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut sequences: Vec<Vec<DetectionReport>> = vec![Vec::with_capacity(STEPS); robots];
    for k in 0..STEPS {
        x_true = system.dynamics().step(&x_true, &u);
        let all_readings: Vec<Vec<Vector>> = (0..robots)
            .map(|robot| robot_readings(&system, &x_true, robot, k))
            .collect();
        let inputs: Vec<RobotInput> = all_readings
            .iter()
            .map(|readings| RobotInput {
                u_prev: &u,
                readings,
            })
            .collect();
        fleet.step_batch(&inputs).unwrap();
        for (robot, seq) in sequences.iter_mut().enumerate() {
            seq.push(fleet.report(robot).clone());
        }
    }
    sequences
}

#[test]
fn fleet_batches_are_bitwise_identical_to_standalone_detectors() {
    for robots in [1, 8] {
        let expected = standalone_runs(robots);
        for threads in [1, 2, 4] {
            let got = fleet_run(robots, threads);
            for (robot, (a, b)) in expected.iter().zip(&got).enumerate() {
                for (k, (ra, rb)) in a.iter().zip(b).enumerate() {
                    assert_eq!(
                        ra, rb,
                        "robots={robots} threads={threads} robot={robot} diverged at step {k}"
                    );
                }
            }
        }
    }
}

#[test]
fn large_fleet_spanning_many_chunks_stays_exact() {
    // 64 robots across 4 workers exercises multi-chunk scheduling with
    // uneven phase offsets; compare against the sequential fleet, which
    // the test above pins to the standalone detectors.
    let seq = fleet_run(64, 1);
    let par = fleet_run(64, 4);
    assert_eq!(seq, par);
}

#[test]
fn fleet_runs_are_reproducible_across_invocations() {
    assert_eq!(fleet_run(8, 2), fleet_run(8, 2));
}

/// A detector with a pinned fleet slab lane width (`1` disables the
/// SIMD-batched path entirely).
fn detector_with_lanes(lanes: usize) -> RoboAds {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let modes = ModeSet::one_reference_per_sensor(&system);
    RoboAds::new(
        system,
        RoboAdsConfig::paper_defaults().with_slab_lanes(lanes),
        x0,
        modes,
    )
    .unwrap()
}

/// As [`fleet_run`] but with an explicit slab lane width.
fn fleet_run_lanes(robots: usize, threads: usize, lanes: usize) -> Vec<Vec<DetectionReport>> {
    let system = presets::khepera_system();
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut fleet = FleetEngine::new(
        (0..robots).map(|_| detector_with_lanes(lanes)).collect(),
        threads,
    );
    let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut sequences: Vec<Vec<DetectionReport>> = vec![Vec::with_capacity(STEPS); robots];
    for k in 0..STEPS {
        x_true = system.dynamics().step(&x_true, &u);
        let all_readings: Vec<Vec<Vector>> = (0..robots)
            .map(|robot| robot_readings(&system, &x_true, robot, k))
            .collect();
        let inputs: Vec<RobotInput> = all_readings
            .iter()
            .map(|readings| RobotInput {
                u_prev: &u,
                readings,
            })
            .collect();
        fleet.step_batch(&inputs).unwrap();
        for (robot, seq) in sequences.iter_mut().enumerate() {
            seq.push(fleet.report(robot).clone());
        }
    }
    sequences
}

/// The SIMD-batched slab path must be bitwise invisible: for every
/// robot, the full report sequence with `slab_lanes ∈ {4, 8}` equals
/// the scalar path's (`slab_lanes = 1`), at every batch size shape —
/// a lone robot and one-short-of-a-tile (sub-tile fleets stay on the
/// scalar path by design), a full tile plus masked tail (7 robots at
/// 4 lanes), exactly one tile, and many tiles plus a remainder tail —
/// and every robot-grain thread count.
#[test]
fn slab_path_reports_match_scalar_path_exactly() {
    for robots in [1, 7, 8, 67] {
        let scalar = fleet_run_lanes(robots, 1, 1);
        for threads in [1, 2, 4] {
            for lanes in [4, 8] {
                let slab = fleet_run_lanes(robots, threads, lanes);
                assert_eq!(
                    scalar, slab,
                    "slab divergence: robots={robots} threads={threads} lanes={lanes}"
                );
            }
        }
    }
}

/// A robot whose readings fail validation mid-fleet must fall out of
/// its slab tile and reproduce the exact scalar error and side effects,
/// while every other lane of the tile advances normally.
#[test]
fn slab_lane_failure_falls_back_to_scalar_per_robot() {
    let run = |lanes: usize| {
        let system = presets::khepera_system();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let robots = 9;
        let mut fleet =
            FleetEngine::new((0..robots).map(|_| detector_with_lanes(lanes)).collect(), 1);
        let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut outcomes = Vec::new();
        for k in 0..8 {
            x_true = system.dynamics().step(&x_true, &u);
            let all_readings: Vec<Vec<Vector>> = (0..robots)
                .map(|robot| {
                    let mut readings = robot_readings(&system, &x_true, robot, k);
                    if robot == 3 && k == 5 {
                        readings[0][0] = f64::NAN;
                    }
                    readings
                })
                .collect();
            let inputs: Vec<RobotInput> = all_readings
                .iter()
                .map(|readings| RobotInput {
                    u_prev: &u,
                    readings,
                })
                .collect();
            let batch = fleet.step_batch(&inputs);
            assert_eq!(batch.is_err(), k == 5, "lanes={lanes} step {k}");
            outcomes.push(
                (0..robots)
                    .map(|r| {
                        (
                            fleet.result(r).is_ok(),
                            fleet.detector(r).iteration(),
                            fleet.report(r).clone(),
                        )
                    })
                    .collect::<Vec<_>>(),
            );
        }
        outcomes
    };
    let scalar = run(1);
    let slab = run(8);
    // The failed robot's error step leaves a partial report on both
    // paths (contents unspecified); everything else must be identical.
    for (k, (sc, sl)) in scalar.iter().zip(&slab).enumerate() {
        for (r, (a, b)) in sc.iter().zip(sl).enumerate() {
            assert_eq!(a.0, b.0, "result mismatch robot {r} step {k}");
            assert_eq!(a.1, b.1, "iteration mismatch robot {r} step {k}");
            if a.0 {
                assert_eq!(a.2, b.2, "report mismatch robot {r} step {k}");
            }
        }
    }
    // Sanity: robot 3 failed exactly once and skipped that iteration.
    assert!(!scalar[5][3].0);
    assert_eq!(scalar[7][3].1, 7);
}

// ---------------------------------------------------------------------
// Heterogeneous (multi-signature) fleets: the per-group slab partition
// must be just as bitwise-invisible as the homogeneous slab. Each group
// uses a separately instantiated preset system — numerically identical
// but pointer-distinct, so the fleet partitions it into its own group —
// and groups are *dealt round-robin* across fleet order so the
// group-major cell reorder genuinely permutes robots.
// ---------------------------------------------------------------------

/// Deals `sizes[g]` robots of signature group `g` round-robin across
/// fleet order; returns each fleet index's group id.
fn deal_groups(sizes: &[usize]) -> Vec<usize> {
    let mut remaining = sizes.to_vec();
    let mut layout = Vec::new();
    loop {
        let mut dealt = false;
        for (g, left) in remaining.iter_mut().enumerate() {
            if *left > 0 {
                *left -= 1;
                layout.push(g);
                dealt = true;
            }
        }
        if !dealt {
            break;
        }
    }
    layout
}

fn detector_for(system: &RobotSystem, lanes: usize) -> RoboAds {
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let modes = ModeSet::one_reference_per_sensor(system);
    RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults().with_slab_lanes(lanes),
        x0,
        modes,
    )
    .unwrap()
}

/// Per-robot report sequences from a mixed fleet: robot `i` belongs to
/// signature group `layout[i]` (its own `RobotSystem` instance).
fn mixed_fleet_run(
    layout: &[usize],
    systems: &[RobotSystem],
    threads: usize,
    lanes: usize,
) -> Vec<Vec<DetectionReport>> {
    let physics = &systems[0]; // presets are bitwise-identical constants
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut fleet = FleetEngine::new(
        layout
            .iter()
            .map(|&g| detector_for(&systems[g], lanes))
            .collect(),
        threads,
    );
    let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut sequences: Vec<Vec<DetectionReport>> = vec![Vec::with_capacity(STEPS); layout.len()];
    for k in 0..STEPS {
        x_true = physics.dynamics().step(&x_true, &u);
        let all_readings: Vec<Vec<Vector>> = (0..layout.len())
            .map(|robot| robot_readings(physics, &x_true, robot, k))
            .collect();
        let inputs: Vec<RobotInput> = all_readings
            .iter()
            .map(|readings| RobotInput {
                u_prev: &u,
                readings,
            })
            .collect();
        fleet.step_batch(&inputs).unwrap();
        for (robot, seq) in sequences.iter_mut().enumerate() {
            seq.push(fleet.report(robot).clone());
        }
    }
    sequences
}

/// Every robot of a mixed fleet — group sizes spanning a lone robot, a
/// sub-tile group, exactly one tile, and many tiles — must be bitwise
/// identical to its standalone twin at every thread count and lane
/// width. Sub-tile groups run scalar (per-group small-fleet rule), the
/// rest slab; neither may perturb a bit.
#[test]
fn mixed_fleet_robots_match_their_standalone_twins() {
    for sizes in [&[8usize, 1, 7][..], &[67, 8][..]] {
        let layout = deal_groups(sizes);
        let systems: Vec<RobotSystem> = sizes.iter().map(|_| presets::khepera_system()).collect();
        // A standalone twin per robot, built from its group's system.
        let expected: Vec<Vec<DetectionReport>> = {
            let physics = &systems[0];
            let u = Vector::from_slice(&[0.06, 0.05]);
            layout
                .iter()
                .enumerate()
                .map(|(robot, &g)| {
                    let mut ads = detector_for(&systems[g], 1);
                    let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
                    let mut reports = Vec::with_capacity(STEPS);
                    for k in 0..STEPS {
                        x_true = physics.dynamics().step(&x_true, &u);
                        let readings = robot_readings(physics, &x_true, robot, k);
                        reports.push(ads.step(&u, &readings).unwrap());
                    }
                    reports
                })
                .collect()
        };
        for threads in [1, 2, 4] {
            for lanes in [4, 8] {
                let got = mixed_fleet_run(&layout, &systems, threads, lanes);
                for (robot, (a, b)) in expected.iter().zip(&got).enumerate() {
                    for (k, (ra, rb)) in a.iter().zip(b).enumerate() {
                        assert_eq!(
                            ra, rb,
                            "sizes={sizes:?} threads={threads} lanes={lanes} \
                             robot={robot} diverged at step {k}"
                        );
                    }
                }
            }
        }
    }
}

/// A NaN divergence inside one signature group's tile must fall only
/// that robot back to scalar; lanes of *other groups* — stepped through
/// entirely separate slab scratch — stay bitwise untouched.
#[test]
fn nan_in_one_group_leaves_other_groups_lanes_untouched() {
    let sizes = [8usize, 8];
    let layout = deal_groups(&sizes);
    let poisoned = layout.iter().position(|&g| g == 0).unwrap(); // a group-0 robot
    let run = |lanes: usize| {
        let systems: Vec<RobotSystem> = sizes.iter().map(|_| presets::khepera_system()).collect();
        let physics = systems[0].clone();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut fleet = FleetEngine::new(
            layout
                .iter()
                .map(|&g| detector_for(&systems[g], lanes))
                .collect(),
            1,
        );
        let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut outcomes = Vec::new();
        for k in 0..8 {
            x_true = physics.dynamics().step(&x_true, &u);
            let all_readings: Vec<Vec<Vector>> = (0..layout.len())
                .map(|robot| {
                    let mut readings = robot_readings(&physics, &x_true, robot, k);
                    if robot == poisoned && k == 5 {
                        readings[0][0] = f64::NAN;
                    }
                    readings
                })
                .collect();
            let inputs: Vec<RobotInput> = all_readings
                .iter()
                .map(|readings| RobotInput {
                    u_prev: &u,
                    readings,
                })
                .collect();
            let batch = fleet.step_batch(&inputs);
            assert_eq!(batch.is_err(), k == 5, "lanes={lanes} step {k}");
            outcomes.push(
                (0..layout.len())
                    .map(|r| {
                        (
                            fleet.result(r).is_ok(),
                            fleet.detector(r).iteration(),
                            fleet.report(r).clone(),
                        )
                    })
                    .collect::<Vec<_>>(),
            );
        }
        outcomes
    };
    let scalar = run(1);
    let slab = run(8);
    for (k, (sc, sl)) in scalar.iter().zip(&slab).enumerate() {
        for (r, (a, b)) in sc.iter().zip(sl).enumerate() {
            assert_eq!(a.0, b.0, "result mismatch robot {r} step {k}");
            assert_eq!(a.1, b.1, "iteration mismatch robot {r} step {k}");
            if a.0 {
                assert_eq!(a.2, b.2, "report mismatch robot {r} step {k}");
            }
        }
    }
    // The poisoned robot failed exactly once; every group-1 robot (the
    // *other* slab group) completed all 8 iterations.
    assert!(!scalar[5][poisoned].0 && !slab[5][poisoned].0);
    for (r, &g) in layout.iter().enumerate() {
        if g == 1 {
            assert_eq!(slab[7][r].1, 8, "group-1 robot {r} lost an iteration");
        }
    }
}

// ---------------------------------------------------------------------
// Lazy activation (DESIGN.md §17): fleets of TopK robots sleep, wake and
// re-sleep at *different* ticks (phase-offset attacks), which exercises
// the activation-keyed slab repartition, per-mode lane masks and the
// wake-tick scalar fallback. All of it must stay bitwise invisible.
// ---------------------------------------------------------------------

const LAZY_STEPS: usize = 45;

fn lazy_detector(lanes: usize) -> RoboAds {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let modes = ModeSet::one_reference_per_sensor(&system);
    RoboAds::new(
        system,
        RoboAdsConfig::paper_defaults()
            .with_slab_lanes(lanes)
            .with_activation(ActivationPolicy::lazy_defaults()),
        x0,
        modes,
    )
    .unwrap()
}

/// Clean long enough for every bank to sleep (~tick 12), then a
/// phase-offset IPS spoof burst that wakes robots at different ticks,
/// then clean recovery so they re-sleep at different ticks too.
fn lazy_robot_readings(system: &RobotSystem, x: &Vector, robot: usize, k: usize) -> Vec<Vector> {
    let mut readings = clean_readings(system, x);
    let phase = robot % 5;
    if (20 + phase..28 + phase).contains(&k) {
        readings[0][0] += 0.07;
    }
    readings
}

/// Per-robot lazy report sequences, standalone (`None`) or fleet-stepped
/// with the given thread count and lane width. Also returns the minimum
/// `active_modes` observed across the run, to prove dormancy happened.
fn lazy_run(
    robots: usize,
    fleet_shape: Option<(usize, usize)>,
) -> (Vec<Vec<DetectionReport>>, usize) {
    let system = presets::khepera_system();
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut min_active = usize::MAX;
    let mut sequences: Vec<Vec<DetectionReport>> = vec![Vec::with_capacity(LAZY_STEPS); robots];
    match fleet_shape {
        None => {
            for (robot, seq) in sequences.iter_mut().enumerate() {
                let mut ads = lazy_detector(1);
                let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
                for k in 0..LAZY_STEPS {
                    x_true = system.dynamics().step(&x_true, &u);
                    let readings = lazy_robot_readings(&system, &x_true, robot, k);
                    seq.push(ads.step(&u, &readings).unwrap());
                    min_active = min_active.min(ads.active_modes());
                }
            }
        }
        Some((threads, lanes)) => {
            let mut fleet =
                FleetEngine::new((0..robots).map(|_| lazy_detector(lanes)).collect(), threads);
            let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
            for k in 0..LAZY_STEPS {
                x_true = system.dynamics().step(&x_true, &u);
                let all_readings: Vec<Vec<Vector>> = (0..robots)
                    .map(|robot| lazy_robot_readings(&system, &x_true, robot, k))
                    .collect();
                let inputs: Vec<RobotInput> = all_readings
                    .iter()
                    .map(|readings| RobotInput {
                        u_prev: &u,
                        readings,
                    })
                    .collect();
                fleet.step_batch(&inputs).unwrap();
                for (robot, seq) in sequences.iter_mut().enumerate() {
                    seq.push(fleet.report(robot).clone());
                    min_active = min_active.min(fleet.detector(robot).active_modes());
                }
            }
        }
    }
    (sequences, min_active)
}

/// A lazy fleet — slab or scalar, any thread count — must be bitwise
/// identical to standalone lazy detectors through the whole
/// sleep → wake → re-sleep cycle, and the run must genuinely visit the
/// dormant state (k = 2 of 3 modes) on both sides of the comparison.
#[test]
fn lazy_fleet_matches_standalone_lazy_detectors_bitwise() {
    for robots in [1, 8, 19] {
        let (expected, standalone_min) = lazy_run(robots, None);
        assert_eq!(standalone_min, 2, "standalone banks never slept");
        for threads in [1, 2] {
            for lanes in [1, 4, 8] {
                let (got, fleet_min) = lazy_run(robots, Some((threads, lanes)));
                assert_eq!(fleet_min, 2, "fleet banks never slept");
                for (robot, (a, b)) in expected.iter().zip(&got).enumerate() {
                    for (k, (ra, rb)) in a.iter().zip(b).enumerate() {
                        assert_eq!(
                            ra, rb,
                            "robots={robots} threads={threads} lanes={lanes} \
                             robot={robot} diverged at step {k}"
                        );
                    }
                }
            }
        }
    }
}
