//! CAN-like communication bus: the "communication module" of the
//! paper's Figure 1.
//!
//! Every sensing workflow publishes its planner-visible reading as a
//! fixed-point [`Frame`] each control iteration, and the planner's
//! monitor decodes the frames back into reading vectors — so the data
//! the detector consumes really does round-trip through the bus, as it
//! does on a vehicle. Frame payloads are nano-unit integers (CAN buses
//! carry integers, not floats); the quantization error of 0.5 nm is far
//! below every sensor noise floor.
//!
//! The bus also gives Table I's *packet injection* attacks a concrete
//! surface: an injected frame with a sensing workflow's arbitration id
//! displaces the authentic reading for that iteration, exactly like the
//! speedometer-packet injection of the Jeep/Ford attacks the paper
//! cites.

use roboads_linalg::Vector;

use crate::SimError;

/// Fixed-point scale: payload integers are nano-units (1e-9).
pub const PAYLOAD_SCALE: f64 = 1e-9;

/// Converts one reading component to a payload word, saturating what
/// the fixed-point range cannot express (see [`Frame::encode`]).
fn saturating_word(v: f64) -> i64 {
    let scaled = v / PAYLOAD_SCALE;
    if scaled.is_nan() {
        0
    } else if scaled >= i64::MAX as f64 {
        i64::MAX
    } else if scaled <= i64::MIN as f64 {
        i64::MIN
    } else {
        scaled.round() as i64
    }
}

/// Arbitration-id base for sensing workflows: sensor `i` publishes with
/// id `SENSOR_ID_BASE + i`.
pub const SENSOR_ID_BASE: u16 = 0x100;

/// Arbitration id for the planned-command frame.
pub const COMMAND_ID: u16 = 0x200;

/// One bus frame: an arbitration id, the publishing workflow's name and
/// a fixed-point payload.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Frame {
    /// Arbitration id (lower wins on a real CAN bus; here it only keys
    /// the consumer's lookup).
    pub id: u16,
    /// Publishing workflow, e.g. `"ips"`.
    pub source: String,
    /// Nano-unit payload words.
    pub payload: Vec<i64>,
    /// Control tick the frame belongs to, stamped by [`Bus::publish`]
    /// from the bus clock ([`Bus::begin_tick`]). Consumers use it to
    /// tell a fresh reading from a cached one — a frame can only claim
    /// an older tick, never a fresher one, so a delayed or replayed
    /// frame is detectable by its stamp.
    pub tick: u64,
    /// Bus-wide publish sequence number, stamped by [`Bus::publish`].
    /// Strictly increasing across the bus lifetime (it survives
    /// [`Bus::clear`]), so reordered frames within a tick are sortable
    /// and a forensic log line is globally identifiable.
    pub seq: u64,
}

impl Frame {
    /// Encodes a reading vector into a frame, **saturating** values the
    /// fixed-point range cannot express: ±∞ and out-of-range magnitudes
    /// clamp to `i64::MAX`/`i64::MIN` words, NaN encodes as `0` (a CAN
    /// transceiver has no NaN wire symbol — the corrupted producer puts
    /// *some* word on the wire, and a deterministic one keeps campaign
    /// trials reproducible).
    ///
    /// A corruption upstream of the encoder therefore yields an extreme
    /// — and very detectable — reading instead of aborting the whole
    /// simulation. Use [`Frame::try_encode`] to reject non-finite
    /// values with a typed error instead.
    pub fn encode(id: u16, source: impl Into<String>, reading: &Vector) -> Frame {
        let payload = reading
            .as_slice()
            .iter()
            .map(|&v| saturating_word(v))
            .collect();
        Frame {
            id,
            source: source.into(),
            payload,
            tick: 0,
            seq: 0,
        }
    }

    /// Encodes a reading vector, returning a typed error for any
    /// component the fixed-point payload cannot faithfully represent
    /// (NaN, ±∞, or magnitude at/beyond ±`i64::MAX` nano-units).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] naming the offending
    /// component; no frame is constructed.
    pub fn try_encode(
        id: u16,
        source: impl Into<String>,
        reading: &Vector,
    ) -> crate::Result<Frame> {
        for (i, &v) in reading.as_slice().iter().enumerate() {
            let scaled = v / PAYLOAD_SCALE;
            if !scaled.is_finite() || scaled.abs() >= i64::MAX as f64 {
                return Err(SimError::InvalidParameter {
                    name: "frame_payload",
                    value: format!("component {i} = {v} exceeds the bus fixed-point range"),
                });
            }
        }
        Ok(Frame::encode(id, source, reading))
    }

    /// Re-encodes `reading` into this frame's payload in place, with
    /// the same saturation as [`Frame::encode`], leaving id, source and
    /// stamps untouched — the man-in-the-middle rewrite primitive: to
    /// the consumer the frame still looks exactly like the authentic
    /// publisher's.
    pub fn set_payload_from(&mut self, reading: &Vector) {
        self.payload.clear();
        self.payload
            .extend(reading.as_slice().iter().map(|&v| saturating_word(v)));
    }

    /// Decodes the payload back to a reading vector.
    pub fn decode(&self) -> Vector {
        Vector::from_fn(self.payload.len(), |i| {
            self.payload[i] as f64 * PAYLOAD_SCALE
        })
    }
}

/// A single-iteration bus: workflows publish, the monitor drains.
///
/// Later frames with the same arbitration id displace earlier ones
/// (the consumer keeps the freshest value), which is what makes packet
/// injection effective.
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_sim::bus::{Bus, Frame, SENSOR_ID_BASE};
///
/// let mut bus = Bus::new();
/// bus.publish(Frame::encode(SENSOR_ID_BASE, "ips", &Vector::from_slice(&[1.0, 2.0, 0.3])));
/// let reading = bus.latest(SENSOR_ID_BASE).unwrap().decode();
/// assert!((reading[0] - 1.0).abs() < 1e-8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Bus {
    frames: Vec<Frame>,
    /// Current control tick of the bus clock (see [`Bus::begin_tick`]).
    tick: u64,
    /// Next publish sequence number; never reset, so frame identities
    /// stay unique across [`Bus::clear`] calls.
    next_seq: u64,
    /// Frames whose requested stamp claimed a tick *fresher* than the
    /// bus clock and were clamped to it (see [`Bus::publish_stamped`]).
    /// Survives [`Bus::clear`], like the clock itself.
    future_stamp_rejected: u64,
}

impl Bus {
    /// Creates an empty bus at tick 0.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Advances the bus clock to `tick`. Frames published afterwards
    /// are stamped with it; frames already on the bus keep their older
    /// stamps, which is exactly what makes a dropped reading visible —
    /// the consumer's "latest" frame stops matching the current tick
    /// (see [`Bus::staleness`]).
    pub fn begin_tick(&mut self, tick: u64) {
        self.tick = tick;
    }

    /// The current bus-clock tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Publishes a frame (workflows and attackers alike), stamping it
    /// with the current tick and the next bus-wide sequence number.
    pub fn publish(&mut self, frame: Frame) {
        self.publish_stamped(frame, self.tick);
    }

    /// Publishes a frame carrying an *explicit* tick stamp — the fault
    /// injector's surface for delayed frames: a frame generated at tick
    /// `t` but delivered at tick `t+1` arrives stamped `t`, so a
    /// stamp-checking consumer rejects it as late instead of silently
    /// consuming last tick's data.
    ///
    /// A stamp claiming a tick *fresher* than the bus clock violates
    /// [`Frame::tick`]'s invariant ("a frame can only claim an older
    /// tick, never a fresher one") and is **clamped** to the current
    /// tick: the frame is delivered as what it physically is — a frame
    /// arriving now — and the forgery attempt is counted in
    /// [`Bus::future_stamps_rejected`]. Before this clamp a
    /// desynchronization attacker could pre-stamp tick `t + k` and have
    /// the forged frame become `latest_fresh` at tick `t + k` — a
    /// replay primitive — while [`Bus::staleness`]'s saturating
    /// subtraction silently reported it fresh.
    pub fn publish_stamped(&mut self, mut frame: Frame, tick: u64) {
        if tick > self.tick {
            self.future_stamp_rejected += 1;
            frame.tick = self.tick;
        } else {
            frame.tick = tick;
        }
        frame.seq = self.next_seq;
        self.next_seq += 1;
        self.frames.push(frame);
    }

    /// Number of publish attempts whose stamp claimed a future tick and
    /// was clamped to the bus clock (`bus.future_stamp_rejected` in
    /// forensic terms). Monotonic across [`Bus::clear`].
    pub fn future_stamps_rejected(&self) -> u64 {
        self.future_stamp_rejected
    }

    /// The newest frame carrying the given arbitration id, **regardless
    /// of age** — consumer-cache semantics. On a bus that retains
    /// frames across ticks this can silently return last tick's value
    /// for a dropped reading; staleness-aware consumers must check
    /// [`Bus::staleness`] or use [`Bus::latest_fresh`].
    pub fn latest(&self, id: u16) -> Option<&Frame> {
        self.frames.iter().rev().find(|f| f.id == id)
    }

    /// The newest frame with the given arbitration id stamped with the
    /// *current* tick — `None` when the reading was dropped or delayed
    /// this tick, even if an older frame is still cached.
    pub fn latest_fresh(&self, id: u16) -> Option<&Frame> {
        self.frames
            .iter()
            .rev()
            .find(|f| f.id == id && f.tick == self.tick)
    }

    /// Age of the newest frame with the given arbitration id, in ticks
    /// (`Some(0)` = fresh this tick); `None` when no frame with that id
    /// was ever seen.
    pub fn staleness(&self, id: u16) -> Option<u64> {
        self.latest(id).map(|f| self.tick.saturating_sub(f.tick))
    }

    /// All frames transmitted this iteration, in publish order (the
    /// forensic bus log).
    pub fn log(&self) -> &[Frame] {
        &self.frames
    }

    /// Mutable access to the transmitted frames — the man-in-the-middle
    /// surface: an attacker sitting on the wire rewrites payloads in
    /// place, leaving ids, stamps and publish order untouched (see
    /// [`crate::attacks`]).
    pub fn frames_mut(&mut self) -> &mut [Frame] {
        &mut self.frames
    }

    /// Drops every frame failing the predicate — the frame-trashing
    /// surface: a jamming attacker destroys selected frames in flight,
    /// so the consumer's fresh view for those ids goes empty this tick.
    pub fn retain(&mut self, f: impl FnMut(&Frame) -> bool) {
        self.frames.retain(f);
    }

    /// Number of frames transmitted.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether nothing was transmitted.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Clears the frame log for the next control iteration. The bus
    /// clock and the sequence counter survive — identity and freshness
    /// bookkeeping outlive any single iteration's frames.
    pub fn clear(&mut self) {
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_is_below_noise_floor() {
        let reading = Vector::from_slice(&[1.234_567_89, -0.000_123_456, 2.618_033_988]);
        let frame = Frame::encode(SENSOR_ID_BASE, "ips", &reading);
        let decoded = frame.decode();
        for i in 0..reading.len() {
            assert!(
                (decoded[i] - reading[i]).abs() <= PAYLOAD_SCALE / 2.0 + 1e-15,
                "component {i}: {} vs {}",
                decoded[i],
                reading[i]
            );
        }
    }

    #[test]
    fn latest_frame_wins_like_a_consumer_cache() {
        let mut bus = Bus::new();
        let authentic = Frame::encode(SENSOR_ID_BASE, "ips", &Vector::from_slice(&[1.0]));
        bus.publish(authentic);
        // Sensor packet injection (Table I): a forged frame with the
        // same id displaces the authentic reading.
        let forged = Frame::encode(SENSOR_ID_BASE, "attacker", &Vector::from_slice(&[9.0]));
        bus.publish(forged.clone());
        let latest = bus.latest(SENSOR_ID_BASE).unwrap();
        assert_eq!(latest.source, "attacker");
        assert_eq!(latest.payload, forged.payload);
        assert_eq!(bus.len(), 2); // the log keeps both for forensics
    }

    #[test]
    fn publish_stamps_tick_and_a_monotonic_sequence() {
        let mut bus = Bus::new();
        bus.begin_tick(4);
        bus.publish(Frame::encode(
            SENSOR_ID_BASE,
            "ips",
            &Vector::from_slice(&[1.0]),
        ));
        bus.publish(Frame::encode(
            COMMAND_ID,
            "planner",
            &Vector::from_slice(&[0.1]),
        ));
        let log = bus.log();
        assert_eq!(log[0].tick, 4);
        assert_eq!(log[1].tick, 4);
        assert_eq!(log[0].seq + 1, log[1].seq);
        // The sequence counter survives a per-iteration clear: frame
        // identities never repeat across ticks.
        bus.clear();
        bus.begin_tick(5);
        bus.publish(Frame::encode(
            SENSOR_ID_BASE,
            "ips",
            &Vector::from_slice(&[2.0]),
        ));
        assert_eq!(bus.log()[0].seq, 2);
        assert_eq!(bus.log()[0].tick, 5);
    }

    /// Regression for the consumer-cache staleness bug: [`Bus::latest`]
    /// happily returns last tick's frame after a drop, but the stamps
    /// now make the staleness queryable instead of silent.
    #[test]
    fn dropped_frame_is_reported_stale_not_silently_reused() {
        let mut bus = Bus::new();
        bus.begin_tick(0);
        bus.publish(Frame::encode(
            SENSOR_ID_BASE,
            "ips",
            &Vector::from_slice(&[1.0]),
        ));
        assert_eq!(bus.staleness(SENSOR_ID_BASE), Some(0));
        assert!(bus.latest_fresh(SENSOR_ID_BASE).is_some());

        // Next tick: the IPS frame is dropped (nothing published).
        bus.begin_tick(1);
        // The cache still serves the old frame — the original bug...
        assert!(bus.latest(SENSOR_ID_BASE).is_some());
        // ...but the staleness is now queryable, and the fresh view is
        // empty.
        assert_eq!(bus.staleness(SENSOR_ID_BASE), Some(1));
        assert!(bus.latest_fresh(SENSOR_ID_BASE).is_none());
        assert_eq!(bus.staleness(0x300), None, "never-seen id has no age");

        // A delayed frame delivered now but stamped for tick 0 is still
        // not fresh.
        bus.publish_stamped(
            Frame::encode(SENSOR_ID_BASE, "ips", &Vector::from_slice(&[2.0])),
            0,
        );
        assert!(bus.latest_fresh(SENSOR_ID_BASE).is_none());
        assert_eq!(bus.staleness(SENSOR_ID_BASE), Some(1));
    }

    #[test]
    fn ids_are_independent() {
        let mut bus = Bus::new();
        bus.publish(Frame::encode(
            SENSOR_ID_BASE,
            "ips",
            &Vector::from_slice(&[1.0]),
        ));
        bus.publish(Frame::encode(
            COMMAND_ID,
            "planner",
            &Vector::from_slice(&[0.05, 0.05]),
        ));
        assert_eq!(bus.latest(SENSOR_ID_BASE).unwrap().source, "ips");
        assert_eq!(bus.latest(COMMAND_ID).unwrap().payload.len(), 2);
        assert!(bus.latest(0x300).is_none());
    }

    #[test]
    fn clear_resets_for_the_next_iteration() {
        let mut bus = Bus::new();
        bus.publish(Frame::encode(
            SENSOR_ID_BASE,
            "ips",
            &Vector::from_slice(&[1.0]),
        ));
        assert!(!bus.is_empty());
        bus.clear();
        assert!(bus.is_empty());
        assert!(bus.latest(SENSOR_ID_BASE).is_none());
    }

    /// Regression for the non-finite-payload panic: `Frame::encode`
    /// used to `assert!(scaled.abs() < i64::MAX as f64)`, which is
    /// *false* for NaN and ±∞ — a corruption producing a non-finite
    /// reading aborted the whole simulation instead of putting a frame
    /// on the wire. Saturation keeps the trial running (and very
    /// detectable); `try_encode` offers the strict typed-error path.
    #[test]
    fn non_finite_and_overflow_values_saturate_instead_of_panicking() {
        let cases = [
            (f64::NAN, 0i64),
            (f64::INFINITY, i64::MAX),
            (f64::NEG_INFINITY, i64::MIN),
            (1e300, i64::MAX),  // finite overflow: +1e309 nano-units
            (-1e300, i64::MIN), // finite overflow, negative
        ];
        for (v, word) in cases {
            let frame = Frame::encode(SENSOR_ID_BASE, "ips", &Vector::from_slice(&[v, 1.0]));
            assert_eq!(frame.payload[0], word, "value {v}");
            assert_eq!(frame.payload[1], 1_000_000_000);
            // The decoded reading is finite (extreme, but steppable).
            assert!(frame.decode()[0].is_finite(), "value {v}");
            assert!(Frame::try_encode(SENSOR_ID_BASE, "ips", &Vector::from_slice(&[v])).is_err());
        }
        let ok = Frame::try_encode(SENSOR_ID_BASE, "ips", &Vector::from_slice(&[1.0, -2.0]));
        assert_eq!(ok.unwrap().payload, vec![1_000_000_000, -2_000_000_000]);
    }

    /// Regression for the future-stamp hole: `publish_stamped` accepted
    /// stamps fresher than the bus clock, so a desync attacker could
    /// pre-stamp tick `t + k` and the forged frame became `latest_fresh`
    /// at tick `t + k` while `staleness` reported it fresh all along.
    #[test]
    fn future_stamps_are_clamped_to_the_bus_clock_and_counted() {
        let mut bus = Bus::new();
        bus.begin_tick(10);
        bus.publish_stamped(
            Frame::encode(SENSOR_ID_BASE, "attacker", &Vector::from_slice(&[9.0])),
            15,
        );
        // The frame is delivered as what it is: a frame arriving *now*.
        let f = bus.latest(SENSOR_ID_BASE).unwrap();
        assert_eq!(f.tick, 10, "stamp clamped to the bus clock");
        assert_eq!(bus.staleness(SENSOR_ID_BASE), Some(0));
        assert_eq!(bus.future_stamps_rejected(), 1);

        // Advancing to the forged tick must NOT resurrect it as fresh —
        // the replay primitive this clamp kills.
        bus.begin_tick(15);
        assert!(bus.latest_fresh(SENSOR_ID_BASE).is_none());
        assert_eq!(bus.staleness(SENSOR_ID_BASE), Some(5));

        // Honest old stamps still pass through unclamped.
        bus.publish_stamped(
            Frame::encode(SENSOR_ID_BASE, "ips", &Vector::from_slice(&[1.0])),
            12,
        );
        assert_eq!(bus.latest(SENSOR_ID_BASE).unwrap().tick, 12);
        assert_eq!(bus.future_stamps_rejected(), 1, "no new clamp");
        // The counter survives clear, like the clock and sequence.
        bus.clear();
        assert_eq!(bus.future_stamps_rejected(), 1);
    }

    /// When every id published this tick, the staleness-aware fresh view
    /// and the legacy cache view agree frame-for-frame — the equality the
    /// runner's `latest` → `latest_fresh` migration relies on.
    #[test]
    fn fresh_view_equals_cache_view_when_all_frames_arrive() {
        let mut bus = Bus::new();
        bus.begin_tick(3);
        for i in 0..3u16 {
            bus.publish(Frame::encode(
                SENSOR_ID_BASE + i,
                "wf",
                &Vector::from_slice(&[i as f64]),
            ));
        }
        bus.publish(Frame::encode(
            COMMAND_ID,
            "planner",
            &Vector::from_slice(&[0.1, 0.2]),
        ));
        for id in [
            SENSOR_ID_BASE,
            SENSOR_ID_BASE + 1,
            SENSOR_ID_BASE + 2,
            COMMAND_ID,
        ] {
            assert_eq!(bus.latest(id), bus.latest_fresh(id));
        }
    }

    #[test]
    fn negative_and_angular_values_survive() {
        let reading = Vector::from_slice(&[-3.0, std::f64::consts::PI, -1e-6]);
        let decoded = Frame::encode(0x101, "enc", &reading).decode();
        assert!((decoded[0] + 3.0).abs() < 1e-8);
        assert!((decoded[1] - std::f64::consts::PI).abs() < 1e-8);
        assert!((decoded[2] + 1e-6).abs() < 1e-9);
    }
}
