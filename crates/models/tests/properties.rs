//! Property suite — gated behind the `proptest-suites` feature because
//! the tier-1 build must resolve offline with no external packages
//! (vendor proptest and re-add the dev-dependency to enable).
#![cfg(feature = "proptest-suites")]

//! Property-based tests for the dynamics/sensor/environment substrate.

use proptest::prelude::*;
use roboads_linalg::Vector;
use roboads_models::dynamics::{Bicycle, DifferentialDrive, Unicycle};
use roboads_models::{
    numeric_jacobian, numeric_jacobian_wrt, presets, wrap_angle, Arena, DynamicsModel,
};

fn pose() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.3f64..3.7, 0.3f64..3.7, -3.1f64..3.1)
}

proptest! {
    #[test]
    fn wrap_angle_stays_in_range_and_preserves_direction((_, _, theta) in pose(), turns in -5i32..5) {
        let unwrapped = theta + turns as f64 * 2.0 * std::f64::consts::PI;
        let w = wrap_angle(unwrapped);
        prop_assert!(w > -std::f64::consts::PI - 1e-12);
        prop_assert!(w <= std::f64::consts::PI + 1e-12);
        // Same point on the circle.
        prop_assert!((w.sin() - unwrapped.sin()).abs() < 1e-9);
        prop_assert!((w.cos() - unwrapped.cos()).abs() < 1e-9);
    }

    #[test]
    fn differential_drive_jacobians_match_numeric(
        (x, y, theta) in pose(),
        vl in -0.2f64..0.2,
        vr in -0.2f64..0.2,
    ) {
        let dd = DifferentialDrive::new(0.0885, 0.1).unwrap();
        let state = Vector::from_slice(&[x, y, theta]);
        let u = Vector::from_slice(&[vl, vr]);
        let a = dd.state_jacobian(&state, &u);
        let a_num = numeric_jacobian(&|xx: &Vector| dd.step(xx, &u), &state, 3);
        prop_assert!((&a - &a_num).max_abs() < 1e-5);
        let g = dd.input_jacobian(&state, &u);
        let g_num = numeric_jacobian_wrt(&|xx: &Vector, uu: &Vector| dd.step(xx, uu), &state, &u, 3);
        prop_assert!((&g - &g_num).max_abs() < 1e-5);
    }

    #[test]
    fn bicycle_jacobians_match_numeric_inside_the_steering_range(
        (x, y, theta) in pose(),
        v in -0.3f64..0.3,
        delta in -0.4f64..0.4,
    ) {
        let car = Bicycle::new(0.257, 0.45, 0.1).unwrap();
        let state = Vector::from_slice(&[x, y, theta]);
        let u = Vector::from_slice(&[v, delta]);
        let a = car.state_jacobian(&state, &u);
        let a_num = numeric_jacobian(&|xx: &Vector| car.step(xx, &u), &state, 3);
        prop_assert!((&a - &a_num).max_abs() < 1e-4);
        let g = car.input_jacobian(&state, &u);
        let g_num = numeric_jacobian_wrt(&|xx: &Vector, uu: &Vector| car.step(xx, uu), &state, &u, 3);
        prop_assert!((&g - &g_num).max_abs() < 1e-4);
    }

    #[test]
    fn unicycle_motion_distance_is_bounded_by_speed(
        (x, y, theta) in pose(),
        v in -0.5f64..0.5,
        omega in -1.0f64..1.0,
    ) {
        let uni = Unicycle::new(0.1).unwrap();
        let x0 = Vector::from_slice(&[x, y, theta]);
        let x1 = uni.step(&x0, &Vector::from_slice(&[v, omega]));
        let moved = ((x1[0] - x0[0]).powi(2) + (x1[1] - x0[1]).powi(2)).sqrt();
        prop_assert!(moved <= v.abs() * 0.1 + 1e-12);
    }

    #[test]
    fn raycast_hits_are_within_the_arena_diagonal((x, y, theta) in pose()) {
        let arena = presets::evaluation_arena();
        let hit = arena.raycast(x, y, theta).expect("inside the arena");
        let diagonal = (arena.width().powi(2) + arena.height().powi(2)).sqrt();
        prop_assert!(hit.distance >= 0.0);
        prop_assert!(hit.distance <= diagonal + 1e-9);
        // The hit point lies inside (or on the boundary of) the arena.
        let hx = x + hit.distance * theta.cos();
        let hy = y + hit.distance * theta.sin();
        prop_assert!(hx >= -1e-9 && hx <= arena.width() + 1e-9);
        prop_assert!(hy >= -1e-9 && hy <= arena.height() + 1e-9);
    }

    #[test]
    fn free_points_have_clear_raycasts_up_to_the_hit((x, y, theta) in pose()) {
        let arena = presets::evaluation_arena();
        prop_assume!(arena.is_free(x, y, 0.05));
        let hit = arena.raycast(x, y, theta).expect("inside the arena");
        // Half-way to the hit must be free space for a point robot.
        let t = hit.distance * 0.5;
        let (mx, my) = (x + t * theta.cos(), y + t * theta.sin());
        if hit.distance > 0.2 {
            prop_assert!(
                arena.is_free(mx, my, 0.0),
                "midpoint ({mx},{my}) blocked before hit at {}",
                hit.distance
            );
        }
    }

    #[test]
    fn every_sensor_measurement_matches_its_jacobian_numerically((x, y, theta) in pose()) {
        let system = presets::khepera_system();
        let state = Vector::from_slice(&[x, y, theta]);
        for i in 0..system.sensor_count() {
            let sensor = system.sensor(i).unwrap();
            let c = sensor.jacobian(&state);
            let c_num = numeric_jacobian(&|xx: &Vector| sensor.measure(xx), &state, sensor.dim());
            prop_assert!((&c - &c_num).max_abs() < 1e-5, "sensor {i}");
        }
    }

    #[test]
    fn arena_segments_between_free_points_agree_with_sampling(
        (x0, y0, _) in pose(),
        (x1, y1, _) in pose(),
    ) {
        let arena = Arena::new(4.0, 4.0).unwrap();
        // Empty arena: every segment between interior points is free.
        prop_assert!(arena.segment_is_free(x0, y0, x1, y1, 0.05));
    }
}
