use roboads_linalg::{Matrix, Vector};

/// A normalized anomaly estimate with its χ² test context.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AnomalyEstimate {
    /// The anomaly-vector estimate (`d̂^s` or `d̂^a`).
    pub estimate: Vector,
    /// Its error covariance.
    pub covariance: Matrix,
    /// The normalized test statistic `d̂ᵀP⁺d̂` (0 for an empty vector).
    pub statistic: f64,
    /// The χ² critical value the statistic was compared against
    /// (`+∞` when no test applies, e.g. an empty testing set).
    pub threshold: f64,
    /// Whether the statistic exceeded the threshold this iteration
    /// (the raw, pre-window test result).
    pub exceeds: bool,
}

impl AnomalyEstimate {
    /// An empty estimate (no testing sensors / no test conducted).
    pub fn empty() -> Self {
        AnomalyEstimate {
            estimate: Vector::zeros(0),
            covariance: Matrix::zeros(0, 0),
            statistic: 0.0,
            threshold: f64::INFINITY,
            exceeds: false,
        }
    }
}

/// Per-sensor anomaly view for one iteration.
///
/// For Figure-6-style traces the report carries an estimate for *every*
/// sensor: from the selected mode when the sensor is in its testing set,
/// otherwise from the most probable mode that does test it.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SensorAnomaly {
    /// Sensor suite index.
    pub sensor: usize,
    /// Sensing-workflow name (e.g. `"ips"`).
    pub name: String,
    /// The sensor's anomaly-vector estimate.
    pub estimate: Vector,
    /// Normalized per-sensor χ² statistic.
    pub statistic: f64,
    /// Whether the per-sensor statistic exceeded its critical value.
    pub exceeds: bool,
    /// Which mode the estimate was taken from.
    pub from_mode: usize,
}

/// The complete output of one RoboADS iteration (Algorithm 1's outputs:
/// abnormal workflow(s) and anomaly-vector estimates, plus every
/// intermediate quantity the paper's Figure 6 plots).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DetectionReport {
    /// Control iteration counter `k` (1-based, counted by the detector).
    pub iteration: u64,
    /// Selected mode index `M_k`.
    pub selected_mode: usize,
    /// Normalized mode probabilities `μ_k`.
    pub mode_probabilities: Vec<f64>,
    /// Updated state estimate `x̂_{k|k}` from the selected mode.
    pub state_estimate: Vector,
    /// Aggregate sensor anomaly of the selected mode (stacked testing
    /// sensors) with its test context.
    pub sensor_anomaly: AnomalyEstimate,
    /// Actuator anomaly of the selected mode with its test context.
    pub actuator_anomaly: AnomalyEstimate,
    /// Window-confirmed sensor alarm (`b^s` through the sliding window).
    pub sensor_alarm: bool,
    /// Identified misbehaving sensors (empty when none confirmed);
    /// sorted suite indices. Valid only while `sensor_alarm` is raised.
    pub misbehaving_sensors: Vec<usize>,
    /// Window-confirmed actuator alarm.
    pub actuator_alarm: bool,
    /// Per-sensor anomaly views covering the whole suite.
    pub per_sensor: Vec<SensorAnomaly>,
}

impl DetectionReport {
    /// A blank report for [`crate::RoboAds::step_into`] to fill: every
    /// field at its clean-iteration default with zero-length buffers.
    /// Reusing one blank report across steps lets the buffers warm up
    /// to their steady-state sizes, after which refills are
    /// allocation-free.
    pub fn blank() -> Self {
        DetectionReport {
            iteration: 0,
            selected_mode: 0,
            mode_probabilities: Vec::new(),
            state_estimate: Vector::zeros(0),
            sensor_anomaly: AnomalyEstimate::empty(),
            actuator_anomaly: AnomalyEstimate::empty(),
            sensor_alarm: false,
            misbehaving_sensors: Vec::new(),
            actuator_alarm: false,
            per_sensor: Vec::new(),
        }
    }

    /// Whether a sensor misbehavior is currently confirmed (alarm raised
    /// and at least one sensor identified).
    pub fn sensor_misbehavior_detected(&self) -> bool {
        self.sensor_alarm && !self.misbehaving_sensors.is_empty()
    }

    /// The paper's Table-III-style condition label for the identified
    /// sensor set: `"S0"` when clean, `"S{i+1}"` for a single sensor
    /// `i`, and `"S{i+1}+{j+1}"`-style labels for combinations.
    pub fn sensor_condition_label(&self) -> String {
        if !self.sensor_misbehavior_detected() {
            return "S0".to_string();
        }
        let parts: Vec<String> = self
            .misbehaving_sensors
            .iter()
            .map(|i| (i + 1).to_string())
            .collect();
        format!("S{}", parts.join("+"))
    }

    /// The actuator condition label: `"A1"` under an actuator alarm,
    /// `"A0"` otherwise.
    pub fn actuator_condition_label(&self) -> &'static str {
        if self.actuator_alarm {
            "A1"
        } else {
            "A0"
        }
    }

    /// The per-sensor anomaly view for suite index `sensor`, if present.
    pub fn sensor_anomaly_for(&self, sensor: usize) -> Option<&SensorAnomaly> {
        self.per_sensor.iter().find(|s| s.sensor == sensor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank_report() -> DetectionReport {
        DetectionReport {
            iteration: 1,
            selected_mode: 0,
            mode_probabilities: vec![1.0],
            state_estimate: Vector::zeros(3),
            sensor_anomaly: AnomalyEstimate::empty(),
            actuator_anomaly: AnomalyEstimate::empty(),
            sensor_alarm: false,
            misbehaving_sensors: vec![],
            actuator_alarm: false,
            per_sensor: vec![],
        }
    }

    #[test]
    fn clean_report_labels() {
        let r = blank_report();
        assert!(!r.sensor_misbehavior_detected());
        assert_eq!(r.sensor_condition_label(), "S0");
        assert_eq!(r.actuator_condition_label(), "A0");
    }

    #[test]
    fn condition_labels_match_table_iii() {
        let mut r = blank_report();
        r.sensor_alarm = true;
        r.misbehaving_sensors = vec![0];
        assert_eq!(r.sensor_condition_label(), "S1"); // IPS
        r.misbehaving_sensors = vec![1];
        assert_eq!(r.sensor_condition_label(), "S2"); // wheel encoder
        r.misbehaving_sensors = vec![1, 2];
        assert_eq!(r.sensor_condition_label(), "S2+3"); // WE + LiDAR
        r.actuator_alarm = true;
        assert_eq!(r.actuator_condition_label(), "A1");
    }

    #[test]
    fn alarm_without_identification_is_not_detection() {
        let mut r = blank_report();
        r.sensor_alarm = true;
        assert!(!r.sensor_misbehavior_detected());
        assert_eq!(r.sensor_condition_label(), "S0");
    }

    #[test]
    fn per_sensor_lookup() {
        let mut r = blank_report();
        r.per_sensor.push(SensorAnomaly {
            sensor: 2,
            name: "lidar".into(),
            estimate: Vector::zeros(4),
            statistic: 0.5,
            exceeds: false,
            from_mode: 1,
        });
        assert!(r.sensor_anomaly_for(2).is_some());
        assert!(r.sensor_anomaly_for(0).is_none());
    }

    #[test]
    fn empty_anomaly_estimate_never_exceeds() {
        let e = AnomalyEstimate::empty();
        assert!(!e.exceeds);
        assert_eq!(e.statistic, 0.0);
        assert_eq!(e.threshold, f64::INFINITY);
    }
}
