//! Allocation-free variants of the operations the NUISE hot path uses.
//!
//! Every method here writes into caller-owned storage instead of
//! returning a fresh `Matrix`/`Vector`, so a pre-sized workspace makes a
//! full estimator step heap-allocation-free. Each in-place operation is
//! **bitwise identical** to its allocating counterpart (same loop
//! structure, same accumulation order): the engine's determinism
//! contract — parallel output equals sequential output equals the
//! pre-workspace seed output — depends on that, and the test suite pins
//! it with exact `==` comparisons against the allocating versions.
//!
//! Shape mismatches panic, matching the operator-overload contract in
//! [`crate::Matrix`] arithmetic: all shapes come from a validated system
//! description, so a mismatch is a programming error.

use std::ops::{AddAssign, SubAssign};

use crate::{LinalgError, Matrix, Result, Vector};

fn assert_shape(op: &str, got: (usize, usize), want: (usize, usize)) {
    assert!(
        got == want,
        "{op}: destination shape {}x{} does not match required {}x{}",
        got.0,
        got.1,
        want.0,
        want.1
    );
}

impl Matrix {
    /// Sets every entry to `value`.
    pub fn fill(&mut self, value: f64) {
        for v in self.as_mut_slice() {
            *v = value;
        }
    }

    /// Overwrites `self` with `src` (same shape required).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_shape("copy_from", self.shape(), src.shape());
        self.as_mut_slice().copy_from_slice(src.as_slice());
    }

    /// Overwrites `self` with the identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square.
    pub fn set_identity(&mut self) {
        assert!(
            self.is_square(),
            "set_identity on {:?} matrix",
            self.shape()
        );
        let n = self.rows();
        self.fill(0.0);
        for i in 0..n {
            self[(i, i)] = 1.0;
        }
    }

    /// Writes `selfᵀ` into `out`. Equivalent to [`Matrix::transpose`].
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `cols × rows`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_shape("transpose_into", out.shape(), (self.cols(), self.rows()));
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                out[(j, i)] = self[(i, j)];
            }
        }
    }

    /// Writes `self · rhs` into `out`. Bitwise identical to the `Mul`
    /// operator (same i-k-j loop and zero-skip).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or destination-shape mismatch.
    pub fn mul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert!(
            self.cols() == rhs.rows(),
            "mul_into of matrices with shapes {}x{} and {}x{}",
            self.rows(),
            self.cols(),
            rhs.rows(),
            rhs.cols()
        );
        assert_shape("mul_into", out.shape(), (self.rows(), rhs.cols()));
        out.fill(0.0);
        for i in 0..self.rows() {
            for k in 0..self.cols() {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols() {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
    }

    /// Writes `self · rhsᵀ` into `out` without materializing the
    /// transpose. Bitwise identical to `self * &rhs.transpose()`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or destination-shape mismatch.
    pub fn mul_transpose_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert!(
            self.cols() == rhs.cols(),
            "mul_transpose_into of matrices with shapes {}x{} and {}x{}ᵀ",
            self.rows(),
            self.cols(),
            rhs.rows(),
            rhs.cols()
        );
        assert_shape("mul_transpose_into", out.shape(), (self.rows(), rhs.rows()));
        out.fill(0.0);
        for i in 0..self.rows() {
            for k in 0..self.cols() {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.rows() {
                    out[(i, j)] += aik * rhs[(j, k)];
                }
            }
        }
    }

    /// Writes `self · v` into `out`. Bitwise identical to the
    /// matrix-vector `Mul` operator.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec_into(&self, v: &Vector, out: &mut Vector) {
        assert!(
            self.cols() == v.len(),
            "mul_vec_into of {}x{} matrix with length-{} vector",
            self.rows(),
            self.cols(),
            v.len()
        );
        assert!(
            out.len() == self.rows(),
            "mul_vec_into: destination length {} does not match {} rows",
            out.len(),
            self.rows()
        );
        for i in 0..self.rows() {
            let mut acc = 0.0;
            for j in 0..self.cols() {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
    }

    /// Replaces `self` with its symmetric part `(self + selfᵀ)/2`.
    /// Bitwise identical to [`Matrix::symmetrized`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn symmetrize_in_place(&mut self) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        let n = self.rows();
        for i in 0..n {
            // (aᵢᵢ + aᵢᵢ)/2 is exactly aᵢᵢ in IEEE arithmetic, so only
            // the off-diagonal pairs need touching; addition is
            // commutative bitwise, so one averaged value serves both.
            for j in (i + 1)..n {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
        Ok(())
    }

    /// Negates every entry in place.
    pub fn negate(&mut self) {
        for v in self.as_mut_slice() {
            *v = -*v;
        }
    }

    /// Writes `self · p · selfᵀ` into `out`, using `scratch` for the
    /// intermediate `p · selfᵀ` product. Bitwise identical to
    /// [`Matrix::congruence`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `p` is not square
    /// with side `self.cols()`.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` is not `cols × rows` or `out` is not
    /// `rows × rows`.
    pub fn congruence_into(
        &self,
        p: &Matrix,
        scratch: &mut Matrix,
        out: &mut Matrix,
    ) -> Result<()> {
        if p.rows() != self.cols() || p.cols() != self.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "congruence",
                lhs: self.shape(),
                rhs: p.shape(),
            });
        }
        p.mul_transpose_into(self, scratch);
        self.mul_into(scratch, out);
        Ok(())
    }
}

impl AddAssign<&Matrix> for Matrix {
    /// Elementwise `self += rhs`; bitwise identical to the `Add`
    /// operator.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_shape("add_assign", self.shape(), rhs.shape());
        for (a, b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    /// Elementwise `self -= rhs`; bitwise identical to the `Sub`
    /// operator.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_shape("sub_assign", self.shape(), rhs.shape());
        for (a, b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a -= b;
        }
    }
}

impl Vector {
    /// Sets every entry to `value`.
    pub fn fill(&mut self, value: f64) {
        for v in self.as_mut_slice() {
            *v = value;
        }
    }

    /// Overwrites `self` with `src` (same length required).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, src: &Vector) {
        assert_eq!(
            self.len(),
            src.len(),
            "copy_from of vectors with lengths {} and {}",
            self.len(),
            src.len()
        );
        self.as_mut_slice().copy_from_slice(src.as_slice());
    }

    /// Negates every entry in place.
    pub fn negate(&mut self) {
        for v in self.as_mut_slice() {
            *v = -*v;
        }
    }
}

impl AddAssign<&Vector> for Vector {
    /// Elementwise `self += rhs`; bitwise identical to the `Add`
    /// operator.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(
            self.len(),
            rhs.len(),
            "add_assign of vectors with lengths {} and {}",
            self.len(),
            rhs.len()
        );
        for (a, b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    /// Elementwise `self -= rhs`; bitwise identical to the `Sub`
    /// operator.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(
            self.len(),
            rhs.len(),
            "sub_assign of vectors with lengths {} and {}",
            self.len(),
            rhs.len()
        );
        for (a, b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a -= b;
        }
    }
}

/// Reusable LU factorization buffers: one allocation at construction,
/// then [`LuWorkspace::factorize`] / [`LuWorkspace::inverse_into`] run
/// allocation-free for the lifetime of the workspace.
///
/// Produces results bitwise identical to [`crate::Lu`] (same pivoting
/// and substitution loops).
#[derive(Debug, Clone)]
pub struct LuWorkspace {
    factors: Matrix,
    perm: Vec<usize>,
    perm_sign: f64,
    singular: bool,
    col: Vector,
}

/// Relative pivot threshold, kept equal to `Lu`'s for identical
/// singularity classification.
const PIVOT_TOL: f64 = 1e-13;

impl LuWorkspace {
    /// Allocates buffers for `n × n` factorizations.
    pub fn new(n: usize) -> Self {
        LuWorkspace {
            factors: Matrix::zeros(n, n),
            perm: vec![0; n],
            perm_sign: 1.0,
            singular: false,
            col: Vector::zeros(n),
        }
    }

    /// Workspace dimension.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Whether the last factorized matrix was singular to working
    /// precision.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Factorizes `a` into the workspace buffers.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input,
    /// [`LinalgError::Empty`] for an empty workspace, and
    /// [`LinalgError::DimensionMismatch`] if `a` does not match the
    /// workspace dimension. Singularity is (as with [`crate::Lu`])
    /// reported by the solve/inverse calls, not here.
    pub fn factorize(&mut self, a: &Matrix) -> Result<()> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = self.dim();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if a.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_workspace_factorize",
                lhs: (n, n),
                rhs: a.shape(),
            });
        }
        let scale = a.max_abs().max(1.0);
        let f = &mut self.factors;
        f.copy_from(a);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        self.perm_sign = 1.0;
        self.singular = false;

        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_val = f[(k, k)].abs();
            for i in (k + 1)..n {
                let v = f[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = f[(k, j)];
                    f[(k, j)] = f[(pivot_row, j)];
                    f[(pivot_row, j)] = tmp;
                }
                self.perm.swap(k, pivot_row);
                self.perm_sign = -self.perm_sign;
            }
            if pivot_val <= PIVOT_TOL * scale {
                self.singular = true;
                continue;
            }
            let pivot = f[(k, k)];
            for i in (k + 1)..n {
                let factor = f[(i, k)] / pivot;
                f[(i, k)] = factor;
                for j in (k + 1)..n {
                    f[(i, j)] -= factor * f[(k, j)];
                }
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` into `out` using the last factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the factorized matrix was
    /// singular and [`LinalgError::DimensionMismatch`] on length
    /// mismatch.
    pub fn solve_into(&self, b: &Vector, out: &mut Vector) -> Result<()> {
        if self.singular {
            return Err(LinalgError::Singular);
        }
        let n = self.dim();
        if b.len() != n || out.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_workspace_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        for i in 0..n {
            out[i] = b[self.perm[i]];
        }
        self.substitute(out);
        Ok(())
    }

    /// Forward/backward substitution on an already-permuted right-hand
    /// side held in `x`.
    fn substitute(&self, x: &mut Vector) {
        let n = self.dim();
        for i in 1..n {
            for j in 0..i {
                let lij = self.factors[(i, j)];
                x[i] -= lij * x[j];
            }
        }
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let uij = self.factors[(i, j)];
                x[i] -= uij * x[j];
            }
            x[i] /= self.factors[(i, i)];
        }
    }

    /// Writes the inverse of the last factorized matrix into `out`.
    /// Bitwise identical to [`crate::Lu::inverse`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the factorized matrix was
    /// singular and [`LinalgError::DimensionMismatch`] if `out` has the
    /// wrong shape.
    pub fn inverse_into(&mut self, out: &mut Matrix) -> Result<()> {
        if self.singular {
            return Err(LinalgError::Singular);
        }
        let n = self.dim();
        if out.shape() != (n, n) {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_workspace_inverse",
                lhs: (n, n),
                rhs: out.shape(),
            });
        }
        for j in 0..n {
            // Column j of A⁻¹ solves A·x = e_j; the permuted RHS of the
            // unit vector is 1 where perm[i] == j.
            for i in 0..n {
                self.col[i] = if self.perm[i] == j { 1.0 } else { 0.0 };
            }
            // Split the borrow: substitution reads factors, writes col.
            let (factors, col) = (&self.factors, &mut self.col);
            for i in 1..n {
                for jj in 0..i {
                    let lij = factors[(i, jj)];
                    col[i] -= lij * col[jj];
                }
            }
            for i in (0..n).rev() {
                for jj in (i + 1)..n {
                    let uij = factors[(i, jj)];
                    col[i] -= uij * col[jj];
                }
                col[i] /= factors[(i, i)];
            }
            for i in 0..n {
                out[(i, j)] = self.col[i];
            }
        }
        Ok(())
    }
}

/// Reusable Jacobi eigendecomposition buffers for symmetric matrices.
///
/// [`EigenWorkspace::factorize`] replays the exact rotation sequence of
/// [`crate::SymmetricEigen::new`], so eigenvalues, eigenvectors and
/// every [`EigenWorkspace::spectral_map_into`] result are bitwise
/// identical to the allocating path.
#[derive(Debug, Clone)]
pub struct EigenWorkspace {
    a: Matrix,
    v: Matrix,
    eigenvalues: Vector,
}

/// Sweep cap and convergence tolerance, kept equal to
/// [`crate::SymmetricEigen`]'s.
const MAX_SWEEPS: usize = 64;
const CONVERGENCE_TOL: f64 = 1e-14;

impl EigenWorkspace {
    /// Allocates buffers for `n × n` decompositions.
    pub fn new(n: usize) -> Self {
        EigenWorkspace {
            a: Matrix::zeros(n, n),
            v: Matrix::zeros(n, n),
            eigenvalues: Vector::zeros(n),
        }
    }

    /// Workspace dimension.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Decomposes `m` (upper triangle, as the allocating path does).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`], [`LinalgError::Empty`],
    /// [`LinalgError::DimensionMismatch`] on a workspace-size mismatch,
    /// or [`LinalgError::NoConvergence`].
    pub fn factorize(&mut self, m: &Matrix) -> Result<()> {
        if !m.is_square() {
            return Err(LinalgError::NotSquare { shape: m.shape() });
        }
        let n = self.dim();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if m.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "eigen_workspace_factorize",
                lhs: (n, n),
                rhs: m.shape(),
            });
        }
        let a = &mut self.a;
        let v = &mut self.v;
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = if i <= j { m[(i, j)] } else { m[(j, i)] };
            }
        }
        v.set_identity();
        let norm = a.frobenius_norm().max(f64::MIN_POSITIVE);

        for _sweep in 0..MAX_SWEEPS {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off.sqrt() <= CONVERGENCE_TOL * norm {
                for i in 0..n {
                    self.eigenvalues[i] = a[(i, i)];
                }
                return Ok(());
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[(p, q)];
                    if apq.abs() <= f64::MIN_POSITIVE {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;

                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    a[(p, q)] = 0.0;
                    a[(q, p)] = 0.0;
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        Err(LinalgError::NoConvergence { sweeps: MAX_SWEEPS })
    }

    /// Eigenvalues of the last decomposition (unsorted, matching
    /// eigenvector columns).
    pub fn eigenvalues(&self) -> &Vector {
        &self.eigenvalues
    }

    /// Largest eigenvalue of the last decomposition.
    pub fn max_eigenvalue(&self) -> f64 {
        self.eigenvalues
            .as_slice()
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
    }

    /// Writes `V·f(Λ)·Vᵀ` into `out`; bitwise identical to
    /// [`crate::SymmetricEigen::spectral_map`].
    ///
    /// # Panics
    ///
    /// Panics if `out` does not match the workspace dimension.
    pub fn spectral_map_into(&self, f: impl Fn(f64) -> f64, out: &mut Matrix) {
        let n = self.dim();
        assert_shape("spectral_map_into", out.shape(), (n, n));
        let v = &self.v;
        out.fill(0.0);
        for k in 0..n {
            let fl = f(self.eigenvalues[k]);
            if fl == 0.0 {
                continue;
            }
            for i in 0..n {
                for j in 0..n {
                    out[(i, j)] += fl * v[(i, k)] * v[(j, k)];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a22() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.5], &[-3.0, 4.0]]).unwrap()
    }

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[6.0, 3.0, 4.0], &[3.0, 6.0, 5.0], &[4.0, 5.0, 10.0]]).unwrap()
    }

    #[test]
    fn mul_into_matches_operator_bitwise() {
        let a = a22();
        let b = Matrix::from_rows(&[&[0.3, -1.0], &[7.0, 0.0]]).unwrap();
        let mut out = Matrix::zeros(2, 2);
        a.mul_into(&b, &mut out);
        assert_eq!(out, &a * &b);
    }

    #[test]
    fn mul_transpose_into_matches_materialized_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.1, 0.2, 0.3], &[-0.4, 0.5, 0.6]]).unwrap();
        let mut out = Matrix::zeros(2, 2);
        a.mul_transpose_into(&b, &mut out);
        assert_eq!(out, &a * &b.transpose());
    }

    #[test]
    fn mul_vec_into_matches_operator_bitwise() {
        let a = a22();
        let v = Vector::from_slice(&[0.7, -0.2]);
        let mut out = Vector::zeros(2);
        a.mul_vec_into(&v, &mut out);
        assert_eq!(out, &a * &v);
    }

    #[test]
    fn transpose_copy_fill_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let mut t = Matrix::zeros(3, 2);
        a.transpose_into(&mut t);
        assert_eq!(t, a.transpose());

        let mut c = Matrix::zeros(2, 3);
        c.copy_from(&a);
        assert_eq!(c, a);

        let mut i = Matrix::zeros(3, 3);
        i.set_identity();
        assert_eq!(i, Matrix::identity(3));

        c.fill(7.0);
        assert_eq!(c[(1, 2)], 7.0);
    }

    #[test]
    fn add_sub_assign_match_operators_bitwise() {
        let a = a22();
        let b = Matrix::from_rows(&[&[0.1, 0.2], &[0.3, 0.4]]).unwrap();
        let mut m = a.clone();
        m += &b;
        assert_eq!(m, &a + &b);
        m -= &b;
        m -= &b;
        assert_eq!(m, &(&(&a + &b) - &b) - &b);

        let x = Vector::from_slice(&[1.0, -2.0]);
        let y = Vector::from_slice(&[0.5, 0.25]);
        let mut v = x.clone();
        v += &y;
        assert_eq!(v, &x + &y);
        v -= &y;
        v -= &y;
        assert_eq!(v, &(&(&x + &y) - &y) - &y);
    }

    #[test]
    fn symmetrize_in_place_matches_symmetrized_bitwise() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 0.31], &[4.0, 3.0, -0.77], &[0.13, 0.99, 5.5]])
            .unwrap();
        let expected = m.symmetrized().unwrap();
        let mut s = m.clone();
        s.symmetrize_in_place().unwrap();
        assert_eq!(s, expected);
        assert!(Matrix::zeros(2, 3).symmetrize_in_place().is_err());
    }

    #[test]
    fn negate_matches_neg() {
        let a = a22();
        let mut m = a.clone();
        m.negate();
        assert_eq!(m, -&a);
        let x = Vector::from_slice(&[1.0, -0.5]);
        let mut v = x.clone();
        v.negate();
        assert_eq!(v, -&x);
    }

    #[test]
    fn congruence_into_matches_congruence_bitwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -0.3]]).unwrap();
        let p = spd3();
        let mut scratch = Matrix::zeros(3, 2);
        let mut out = Matrix::zeros(2, 2);
        a.congruence_into(&p, &mut scratch, &mut out).unwrap();
        assert_eq!(out, a.congruence(&p).unwrap());
        assert!(a
            .congruence_into(&Matrix::zeros(4, 4), &mut scratch, &mut out)
            .is_err());
    }

    #[test]
    fn lu_workspace_matches_lu_bitwise() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[3.0, 6.0, -4.0], &[2.0, 1.0, 8.0]]).unwrap();
        let mut ws = LuWorkspace::new(3);
        ws.factorize(&a).unwrap();
        assert!(!ws.is_singular());
        let mut inv = Matrix::zeros(3, 3);
        ws.inverse_into(&mut inv).unwrap();
        assert_eq!(inv, a.inverse().unwrap());

        let b = Vector::from_slice(&[1.0, -2.0, 0.5]);
        let mut x = Vector::zeros(3);
        ws.solve_into(&b, &mut x).unwrap();
        assert_eq!(x, a.lu().unwrap().solve(&b).unwrap());

        // Reuse on a second matrix, including a pivoting path.
        let p = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        ws.factorize(&p).unwrap();
        ws.inverse_into(&mut inv).unwrap();
        assert_eq!(inv, p.inverse().unwrap());
    }

    #[test]
    fn lu_workspace_reports_singularity_like_lu() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let mut ws = LuWorkspace::new(2);
        ws.factorize(&s).unwrap();
        assert!(ws.is_singular());
        let mut out = Matrix::zeros(2, 2);
        assert_eq!(
            ws.inverse_into(&mut out).unwrap_err(),
            LinalgError::Singular
        );
        let mut x = Vector::zeros(2);
        assert_eq!(
            ws.solve_into(&Vector::zeros(2), &mut x).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn lu_workspace_shape_checks() {
        let mut ws = LuWorkspace::new(2);
        assert!(matches!(
            ws.factorize(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            ws.factorize(&Matrix::identity(3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn eigen_workspace_matches_symmetric_eigen_bitwise() {
        let a = spd3();
        let mut ws = EigenWorkspace::new(3);
        ws.factorize(&a).unwrap();
        let reference = a.symmetric_eigen().unwrap();
        assert_eq!(ws.eigenvalues(), reference.eigenvalues());
        assert_eq!(ws.max_eigenvalue(), reference.max_eigenvalue());

        let mut mapped = Matrix::zeros(3, 3);
        ws.spectral_map_into(|l| if l > 1.0 { 1.0 / l } else { 0.0 }, &mut mapped);
        assert_eq!(
            mapped,
            reference.spectral_map(|l| if l > 1.0 { 1.0 / l } else { 0.0 })
        );

        // Reuse for a second decomposition.
        let b = Matrix::from_diagonal(&[4.0, 9.0, 16.0]);
        ws.factorize(&b).unwrap();
        let reference = b.symmetric_eigen().unwrap();
        assert_eq!(ws.eigenvalues(), reference.eigenvalues());
    }

    #[test]
    fn eigen_workspace_shape_checks() {
        let mut ws = EigenWorkspace::new(2);
        assert!(matches!(
            ws.factorize(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            ws.factorize(&Matrix::identity(4)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
