//! Pseudo-inverse, pseudo-determinant and rank for symmetric matrices.
//!
//! Algorithm 2 of the RoboADS paper computes the mode likelihood
//!
//! ```text
//! N_k = exp(−ν̃ᵀ (P̃_{k|k−1})† ν̃ / 2) / ((2π)^{n/2} |P̃_{k|k−1}|₊^{1/2})
//! ```
//!
//! where `†` is the Moore–Penrose pseudo-inverse, `|·|₊` the
//! pseudo-determinant (product of nonzero eigenvalues) and `n` the rank of
//! the innovation covariance. These operations live here as inherent
//! methods on [`Matrix`], implemented through the Jacobi
//! eigendecomposition, and are restricted to symmetric input (covariance
//! matrices), which is all the estimator needs.

use crate::{EigenWorkspace, Matrix, Result};

/// Relative eigenvalue threshold below which the spectrum is treated as
/// zero when computing rank, pseudo-inverse and pseudo-determinant.
pub const RANK_TOL: f64 = 1e-10;

impl Matrix {
    /// Moore–Penrose pseudo-inverse of a **symmetric** matrix.
    ///
    /// Eigenvalues with magnitude below `RANK_TOL · λ_max` are treated as
    /// zero. For an invertible symmetric matrix this equals the ordinary
    /// inverse.
    ///
    /// # Errors
    ///
    /// Returns the underlying eigendecomposition error for non-square or
    /// empty input.
    ///
    /// ```
    /// use roboads_linalg::Matrix;
    ///
    /// # fn main() -> Result<(), roboads_linalg::LinalgError> {
    /// // Rank-1 projector: pinv equals the projector itself.
    /// let p = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]])?;
    /// let pinv = p.pseudo_inverse()?;
    /// assert!((&pinv - &p).max_abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn pseudo_inverse(&self) -> Result<Matrix> {
        let eig = self.symmetric_eigen()?;
        let cutoff = spectrum_cutoff(eig.eigenvalues().as_slice());
        Ok(eig.spectral_map(|l| if l.abs() > cutoff { 1.0 / l } else { 0.0 }))
    }

    /// Writes the Moore–Penrose pseudo-inverse of a **symmetric** matrix
    /// into `out`, factorizing into `ws`. Bitwise identical to
    /// [`Matrix::pseudo_inverse`] (the workspace eigendecomposition
    /// replays the allocating path's rotation sequence and the rank
    /// cutoff is computed by the same code), without heap allocation.
    ///
    /// # Errors
    ///
    /// Returns the underlying eigendecomposition error for non-square or
    /// empty input, or a workspace-dimension mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not match the workspace dimension.
    pub fn pseudo_inverse_into(&self, ws: &mut EigenWorkspace, out: &mut Matrix) -> Result<()> {
        ws.factorize(self)?;
        let cutoff = spectrum_cutoff(ws.eigenvalues().as_slice());
        ws.spectral_map_into(|l| if l.abs() > cutoff { 1.0 / l } else { 0.0 }, out);
        Ok(())
    }

    /// Pseudo-determinant of a **symmetric** matrix: the product of its
    /// significant (above the rank tolerance) eigenvalues.
    ///
    /// For a full-rank symmetric matrix this equals the determinant; for a
    /// singular one it is the product over the nonzero spectrum, as used in
    /// the degenerate-Gaussian likelihood of Algorithm 2.
    ///
    /// # Errors
    ///
    /// Returns the underlying eigendecomposition error for non-square or
    /// empty input.
    pub fn pseudo_determinant(&self) -> Result<f64> {
        let eig = self.symmetric_eigen()?;
        let cutoff = spectrum_cutoff(eig.eigenvalues().as_slice());
        let mut det = 1.0;
        for &l in eig.eigenvalues().as_slice() {
            if l.abs() > cutoff {
                det *= l;
            }
        }
        Ok(det)
    }

    /// Numerical rank of a **symmetric** matrix (eigenvalues above the
    /// rank tolerance).
    ///
    /// # Errors
    ///
    /// Returns the underlying eigendecomposition error for non-square or
    /// empty input.
    pub fn rank(&self) -> Result<usize> {
        let eig = self.symmetric_eigen()?;
        let cutoff = spectrum_cutoff(eig.eigenvalues().as_slice());
        Ok(eig
            .eigenvalues()
            .as_slice()
            .iter()
            .filter(|l| l.abs() > cutoff)
            .count())
    }

    /// Whether a **symmetric** matrix is positive semi-definite up to the
    /// given absolute tolerance on its smallest eigenvalue.
    ///
    /// # Errors
    ///
    /// Returns the underlying eigendecomposition error for non-square or
    /// empty input.
    pub fn is_positive_semi_definite(&self, tol: f64) -> Result<bool> {
        Ok(self.symmetric_eigen()?.min_eigenvalue() >= -tol)
    }
}

/// Rank cutoff for a spectrum: one implementation shared by the
/// allocating and workspace pseudo-inverse paths so both treat exactly
/// the same eigenvalues as zero.
fn spectrum_cutoff(eigenvalues: &[f64]) -> f64 {
    let max_abs = eigenvalues.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    RANK_TOL * max_abs.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use crate::{Matrix, Vector};

    #[test]
    fn pinv_of_invertible_equals_inverse() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let pinv = a.pseudo_inverse().unwrap();
        let inv = a.inverse().unwrap();
        assert!((&pinv - &inv).max_abs() < 1e-10);
    }

    #[test]
    fn moore_penrose_identities_on_singular_matrix() {
        // Rank-2 symmetric 3x3.
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let a = &b * &b.transpose();
        assert_eq!(a.rank().unwrap(), 2);
        let p = a.pseudo_inverse().unwrap();
        // A·A⁺·A = A and A⁺·A·A⁺ = A⁺.
        assert!((&(&(&a * &p) * &a) - &a).max_abs() < 1e-10);
        assert!((&(&(&p * &a) * &p) - &p).max_abs() < 1e-10);
        // A·A⁺ symmetric.
        let ap = &a * &p;
        assert!((&ap - &ap.transpose()).max_abs() < 1e-10);
    }

    #[test]
    fn pseudo_determinant_of_full_rank_matches_det() {
        let a = Matrix::from_rows(&[&[2.0, 0.3], &[0.3, 1.5]]).unwrap();
        let pd = a.pseudo_determinant().unwrap();
        let d = a.determinant().unwrap();
        assert!((pd - d).abs() < 1e-10);
    }

    #[test]
    fn pseudo_determinant_of_singular_is_nonzero_product() {
        let a = Matrix::from_diagonal(&[3.0, 0.0, 2.0]);
        assert!((a.pseudo_determinant().unwrap() - 6.0).abs() < 1e-12);
        assert_eq!(a.rank().unwrap(), 2);
    }

    #[test]
    fn zero_matrix_rank_and_pinv() {
        let z = Matrix::zeros(3, 3);
        assert_eq!(z.rank().unwrap(), 0);
        assert_eq!(z.pseudo_inverse().unwrap(), Matrix::zeros(3, 3));
        // Empty product convention: pdet of the zero matrix is 1.
        assert_eq!(z.pseudo_determinant().unwrap(), 1.0);
    }

    #[test]
    fn psd_check() {
        let spd = Matrix::from_diagonal(&[1.0, 2.0]);
        assert!(spd.is_positive_semi_definite(0.0).unwrap());
        let indef = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(!indef.is_positive_semi_definite(1e-9).unwrap());
        let psd = Matrix::from_diagonal(&[1.0, 0.0]);
        assert!(psd.is_positive_semi_definite(1e-12).unwrap());
    }

    #[test]
    fn pseudo_inverse_into_matches_allocating_bitwise() {
        use crate::EigenWorkspace;
        // Singular rank-2 case and a full-rank reuse, both pinned
        // exactly against the allocating path.
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let a = &b * &b.transpose();
        let mut ws = EigenWorkspace::new(3);
        let mut out = Matrix::zeros(3, 3);
        a.pseudo_inverse_into(&mut ws, &mut out).unwrap();
        assert_eq!(out, a.pseudo_inverse().unwrap());

        let spd =
            Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 0.2], &[0.0, 0.2, 2.0]]).unwrap();
        spd.pseudo_inverse_into(&mut ws, &mut out).unwrap();
        assert_eq!(out, spd.pseudo_inverse().unwrap());

        // Dimension mismatch surfaces as an error, not a panic.
        assert!(Matrix::identity(2)
            .pseudo_inverse_into(&mut ws, &mut out)
            .is_err());
    }

    #[test]
    fn degenerate_gaussian_quadratic_form_is_finite() {
        // The likelihood computation evaluates νᵀ P† ν with singular P;
        // make sure the pinv path produces a finite, sensible value.
        let p = Matrix::from_diagonal(&[2.0, 0.0]);
        let nu = Vector::from_slice(&[2.0, 0.0]);
        let stat = nu.quadratic_form(&p.pseudo_inverse().unwrap()).unwrap();
        assert!((stat - 2.0).abs() < 1e-12);
    }
}
