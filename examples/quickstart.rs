//! Quickstart: run the paper's evaluation mission with RoboADS watching,
//! first clean, then under the IPS spoofing attack of Table II #4.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use roboads::sim::{Scenario, SimulationBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A clean mission: the detector should stay quiet. ---
    let clean = SimulationBuilder::khepera()
        .scenario(Scenario::clean())
        .seed(7)
        .run()?;
    println!(
        "clean mission: {} iterations, sensor FPR {:.2}%, actuator FPR {:.2}%",
        clean.trace.len(),
        clean.eval.sensor_fpr() * 100.0,
        clean.eval.actuator_fpr() * 100.0,
    );

    // --- The same mission under IPS spoofing (−0.1 m on X from t = 4 s). ---
    let attacked = SimulationBuilder::khepera()
        .scenario(Scenario::ips_spoofing())
        .seed(7)
        .run()?;
    println!(
        "\nips spoofing: detected condition sequence {}",
        attacked.eval.detected_sensor_sequence.join(" -> ")
    );
    println!(
        "detection delay: {:.2} s after the attack trigger",
        attacked.eval.sensor_delay().expect("attack is detected")
    );
    let final_report = &attacked.report;
    println!(
        "final report: condition {} ({}), anomaly estimate on X = {:+.3} m (injected -0.100)",
        final_report.sensor_condition_label(),
        final_report
            .misbehaving_sensors
            .iter()
            .map(|&i| attacked_sensor_name(i))
            .collect::<Vec<_>>()
            .join(","),
        final_report
            .sensor_anomaly_for(0)
            .expect("IPS view present")
            .estimate[0],
    );
    Ok(())
}

fn attacked_sensor_name(index: usize) -> &'static str {
    ["ips", "wheel-encoder", "lidar"][index]
}
