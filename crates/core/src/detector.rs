use roboads_linalg::{Matrix, Vector};
use roboads_models::RobotSystem;

use crate::config::RoboAdsConfig;
use crate::decision::DecisionMaker;
use crate::engine::{MultiModeEngine, SlabCommit};
use crate::mode::ModeSet;
use crate::recorder::{FlightRecorder, RecorderConfig};
use crate::report::DetectionReport;
use crate::Result;

/// The RoboADS detector (Algorithm 1): monitor → multi-mode estimation
/// engine → mode selector → decision maker, packaged behind a single
/// [`RoboAds::step`] call the planner invokes every control iteration.
///
/// # Example
///
/// ```
/// use roboads_core::{ModeSet, RoboAds, RoboAdsConfig};
/// use roboads_linalg::Vector;
/// use roboads_models::presets;
///
/// # fn main() -> Result<(), roboads_core::CoreError> {
/// let system = presets::khepera_system();
/// let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
/// let mut ads = RoboAds::new(
///     system.clone(),
///     RoboAdsConfig::paper_defaults(),
///     x0.clone(),
///     ModeSet::one_reference_per_sensor(&system),
/// )?;
///
/// let u = Vector::from_slice(&[0.05, 0.05]);
/// let x1 = system.dynamics().step(&x0, &u);
/// let mut readings: Vec<_> = (0..3)
///     .map(|i| system.sensor(i).unwrap().measure(&x1))
///     .collect();
/// readings[0][0] += 0.07; // spoof the IPS
/// let first = ads.step(&u, &readings)?;
/// assert!(!first.sensor_misbehavior_detected()); // 2/2 window pending
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RoboAds {
    engine: MultiModeEngine,
    decision: DecisionMaker,
    iteration: u64,
    /// Optional flight recorder (boxed: it carries a full ring of tick
    /// records and must not bloat recorder-less detectors).
    recorder: Option<Box<FlightRecorder>>,
}

impl RoboAds {
    /// Builds a detector for the given system, configuration, initial
    /// state estimate and mode set.
    ///
    /// The mode set is validated up front (observability and actuator
    /// rank of every reference group; see [`ModeSet::validate`]).
    ///
    /// # Errors
    ///
    /// Returns configuration and degenerate-mode errors.
    pub fn new(
        system: RobotSystem,
        config: RoboAdsConfig,
        initial_state: Vector,
        modes: ModeSet,
    ) -> Result<Self> {
        config.validate()?;
        let decision = DecisionMaker::new(&config, system.input_dim())?;
        let engine = MultiModeEngine::new(system, modes, initial_state, &config)?;
        Ok(RoboAds {
            engine,
            decision,
            iteration: 0,
            recorder: None,
        })
    }

    /// Convenience constructor using the paper's default mode set (one
    /// reference sensor per mode) and configuration.
    ///
    /// # Errors
    ///
    /// Same as [`RoboAds::new`].
    pub fn with_defaults(system: RobotSystem, initial_state: Vector) -> Result<Self> {
        let modes = ModeSet::one_reference_per_sensor(&system);
        RoboAds::new(
            system,
            RoboAdsConfig::paper_defaults(),
            initial_state,
            modes,
        )
    }

    /// Threads one telemetry context through the whole pipeline (engine
    /// spans/metrics and decision events share the sink and registry).
    /// The default is a disabled context; call this before the first
    /// [`RoboAds::step`] so every sample lands in the shared registry.
    pub fn set_telemetry(&mut self, telemetry: roboads_obs::Telemetry) {
        if let Some(recorder) = &mut self.recorder {
            recorder.set_telemetry(telemetry.clone());
        }
        self.engine.set_telemetry(telemetry.clone());
        self.decision.set_telemetry(telemetry);
    }

    /// Builder-style variant of [`RoboAds::set_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: roboads_obs::Telemetry) -> Self {
        self.set_telemetry(telemetry);
        self
    }

    /// The telemetry context the pipeline reports into.
    pub fn telemetry(&self) -> &roboads_obs::Telemetry {
        self.engine.telemetry()
    }

    /// Attaches a [`FlightRecorder`] sized for this detector's system
    /// and mode set. The recorder shares the detector's telemetry
    /// context (capsules are enriched with its histograms). Replaces any
    /// previously attached recorder.
    pub fn attach_recorder(&mut self, config: RecorderConfig) {
        let mut recorder =
            FlightRecorder::for_system(config, self.engine.system(), self.engine.modes().len());
        recorder.set_telemetry(self.engine.telemetry().clone());
        self.recorder = Some(Box::new(recorder));
    }

    /// Builder-style variant of [`RoboAds::attach_recorder`].
    #[must_use]
    pub fn with_recorder(mut self, config: RecorderConfig) -> Self {
        self.attach_recorder(config);
        self
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_deref()
    }

    /// Mutable access to the attached flight recorder, if any.
    pub fn recorder_mut(&mut self) -> Option<&mut FlightRecorder> {
        self.recorder.as_deref_mut()
    }

    /// Feeds one completed iteration to the attached recorder (no-op
    /// without one). `stamp` is the bus/ingest tick the inputs arrived
    /// under; `report` must be the report the inputs just produced.
    ///
    /// This is a separate hook rather than part of [`RoboAds::step_into`]
    /// because the fleet's slab path commits reports without re-entering
    /// `step_into` — both paths (and the sim runner) call this after a
    /// successful step so every recorded robot sees every tick.
    pub fn record_tick(
        &mut self,
        stamp: u64,
        u_prev: &Vector,
        readings: &[Vector],
        report: &DetectionReport,
    ) {
        if let Some(recorder) = &mut self.recorder {
            recorder.record(stamp, u_prev, readings, report);
        }
    }

    /// One control iteration (the monitor's hand-off): the planned
    /// commands of the previous iteration and the fresh readings of
    /// every sensing workflow, in suite order.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::BadReadings`] for malformed readings
    /// and numeric errors from the estimator bank. On error the internal
    /// state is unchanged and the iteration may simply be retried or
    /// skipped.
    pub fn step(&mut self, u_prev: &Vector, readings: &[Vector]) -> Result<DetectionReport> {
        let mut report = DetectionReport::blank();
        self.step_into(u_prev, readings, &mut report)?;
        Ok(report)
    }

    /// Like [`RoboAds::step`] but fills a caller-owned report in place,
    /// reusing its buffers. Feeding the same report every iteration
    /// makes the whole warm detector step — engine, decision maker and
    /// report refill — free of heap allocation (on the sequential
    /// engine path), with values bitwise identical to `step`'s. This is
    /// the per-robot hot path of the fleet engine.
    ///
    /// # Errors
    ///
    /// As [`RoboAds::step`]; the internal filter state is unchanged, but
    /// `report` may hold a partial verdict and should be discarded.
    pub fn step_into(
        &mut self,
        u_prev: &Vector,
        readings: &[Vector],
        report: &mut DetectionReport,
    ) -> Result<()> {
        self.engine.step_in_place(u_prev, readings)?;
        self.decision.assess_report(
            self.engine.system(),
            self.engine.modes(),
            self.engine.last_output(),
            report,
        )?;
        // Feed the decision windows back to the activation scheduler:
        // while a χ² window holds a positive, some hypothesis is in
        // contention and the bank must stay (or come) fully awake.
        self.engine
            .note_decision_activity(self.decision.windows_active());
        self.iteration += 1;
        let out = self.engine.last_output();
        report.iteration = self.iteration;
        report.selected_mode = out.selected;
        report.mode_probabilities.clear();
        report
            .mode_probabilities
            .extend_from_slice(&out.probabilities);
        report
            .state_estimate
            .assign(&out.selected_output().state_estimate);
        Ok(())
    }

    /// Completes an iteration whose per-mode NUISE outputs were
    /// scattered into the engine by the fleet's lane-batched slab path
    /// (see [`MultiModeEngine::commit_slab_step`]): runs the engine's
    /// selection/commit tail with the supplied implied-anomaly `counts`,
    /// then the same decision-and-report tail as [`RoboAds::step_into`].
    /// Given bitwise-identical mode outputs and counts, the resulting
    /// detector state and report are bitwise identical to `step_into`'s.
    ///
    /// Returns [`SlabCommit::NeedsScalar`] — with the detector
    /// completely untouched — when a sleeping bank's fresh results trip
    /// a wake trigger: the dormant modes must run within this same
    /// iteration, so the fleet re-runs the robot through
    /// [`RoboAds::step_into`] (bitwise identical for the modes the slab
    /// already computed).
    ///
    /// # Errors
    ///
    /// As [`RoboAds::step_into`].
    pub(crate) fn commit_slab_step<I: IntoIterator<Item = usize>>(
        &mut self,
        counts: I,
        report: &mut DetectionReport,
    ) -> Result<SlabCommit> {
        if self.engine.commit_slab_step(counts)? == SlabCommit::NeedsScalar {
            return Ok(SlabCommit::NeedsScalar);
        }
        self.decision.assess_report(
            self.engine.system(),
            self.engine.modes(),
            self.engine.last_output(),
            report,
        )?;
        self.engine
            .note_decision_activity(self.decision.windows_active());
        self.iteration += 1;
        let out = self.engine.last_output();
        report.iteration = self.iteration;
        report.selected_mode = out.selected;
        report.mode_probabilities.clear();
        report
            .mode_probabilities
            .extend_from_slice(&out.probabilities);
        report
            .state_estimate
            .assign(&out.selected_output().state_estimate);
        Ok(SlabCommit::Committed)
    }

    /// Number of currently active (non-dormant) estimator modes — the
    /// bank size under [`crate::ActivationPolicy::AlwaysFull`], fewer
    /// while a lazy bank is parked (see `DESIGN.md` §17).
    pub fn active_modes(&self) -> usize {
        self.engine.active_modes()
    }

    /// Whether the full mode bank is running this robot (always `true`
    /// under [`crate::ActivationPolicy::AlwaysFull`]).
    pub fn bank_awake(&self) -> bool {
        self.engine.bank_awake()
    }

    /// The underlying engine (fleet slab path).
    pub(crate) fn engine(&self) -> &MultiModeEngine {
        &self.engine
    }

    /// Mutable access to the underlying engine (fleet slab path).
    pub(crate) fn engine_mut(&mut self) -> &mut MultiModeEngine {
        &mut self.engine
    }

    /// Number of completed iterations.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Current state estimate.
    pub fn state_estimate(&self) -> &Vector {
        self.engine.state_estimate()
    }

    /// Current state covariance.
    pub fn state_covariance(&self) -> &Matrix {
        self.engine.state_covariance()
    }

    /// The system description the detector was built with.
    pub fn system(&self) -> &RobotSystem {
        self.engine.system()
    }

    /// The mode set in use.
    pub fn modes(&self) -> &ModeSet {
        self.engine.modes()
    }

    /// Effective intra-step NUISE fan-out width of the engine (`1` on
    /// the sequential path — a fleet-eligible detector).
    pub fn engine_threads(&self) -> usize {
        self.engine.threads()
    }

    /// Appends the detector's mutable state (iteration, engine,
    /// decision maker) to a snapshot buffer. The flight recorder is not
    /// snapshotted — reattach one after restore if needed; its contents
    /// never influence future step outputs.
    pub(crate) fn snap_write(&self, out: &mut Vec<u8>) {
        roboads_obs::wire::put_u64(out, self.iteration);
        self.engine.snap_write(out);
        self.decision.snap_write(out);
    }

    /// Restores the detector's mutable state from a snapshot buffer onto
    /// an identically-constructed twin.
    pub(crate) fn snap_read(&mut self, rd: &mut roboads_obs::wire::ByteReader<'_>) -> Result<()> {
        self.iteration = rd.u64()?;
        self.engine.snap_read(rd)?;
        self.decision.snap_read(rd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_models::presets;

    fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
        (0..system.sensor_count())
            .map(|i| system.sensor(i).unwrap().measure(x))
            .collect()
    }

    #[test]
    fn full_pipeline_detects_and_identifies_ips_spoofing() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut ads = RoboAds::with_defaults(system.clone(), x0.clone()).unwrap();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        let mut labels = Vec::new();
        for k in 0..12 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            if k >= 4 {
                readings[0][0] -= 0.1; // scenario #4: −0.1 m shift on X
            }
            let report = ads.step(&u, &readings).unwrap();
            labels.push(report.sensor_condition_label());
        }
        // Clean prefix, then S1 (IPS) after the window fills.
        assert_eq!(&labels[..4], &["S0", "S0", "S0", "S0"]);
        assert!(labels[6..].iter().all(|l| l == "S1"), "labels {labels:?}");
    }

    #[test]
    fn full_pipeline_detects_wheel_logic_bomb() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[1.0, 1.0, 0.0]);
        let mut ads = RoboAds::with_defaults(system.clone(), x0.clone()).unwrap();
        let u = Vector::from_slice(&[0.06, 0.05]);
        // Scenario #1: −6000/+6000 speed units on the wheels.
        let bias = Vector::from_slice(&[-0.04, 0.04]);
        let mut x_true = x0;
        let mut actuator_labels = Vec::new();
        for k in 0..14 {
            let executed = if k >= 4 { &u + &bias } else { u.clone() };
            x_true = system.dynamics().step(&x_true, &executed);
            let report = ads.step(&u, &clean_readings(&system, &x_true)).unwrap();
            actuator_labels.push(report.actuator_condition_label());
        }
        assert!(actuator_labels[..4].iter().all(|&l| l == "A0"));
        assert!(
            actuator_labels[8..].iter().all(|&l| l == "A1"),
            "labels {actuator_labels:?}"
        );
    }

    #[test]
    fn recovery_after_attack_ends() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut ads = RoboAds::with_defaults(system.clone(), x0.clone()).unwrap();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        let mut final_label = String::new();
        for k in 0..30 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            if (5..15).contains(&k) {
                readings[2][0] += 0.12; // transient LiDAR blocking
            }
            let report = ads.step(&u, &readings).unwrap();
            final_label = report.sensor_condition_label();
        }
        assert_eq!(
            final_label, "S0",
            "detector should recover after the attack"
        );
    }

    #[test]
    fn iteration_counter_and_accessors() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
        let mut ads = RoboAds::with_defaults(system.clone(), x0.clone()).unwrap();
        assert_eq!(ads.iteration(), 0);
        let u = Vector::from_slice(&[0.05, 0.05]);
        let x1 = system.dynamics().step(&x0, &u);
        ads.step(&u, &clean_readings(&system, &x1)).unwrap();
        assert_eq!(ads.iteration(), 1);
        assert_eq!(ads.modes().len(), 3);
        assert_eq!(ads.system().sensor_count(), 3);
        assert!(ads.state_covariance().is_finite());
    }

    #[test]
    fn report_mode_probabilities_are_normalized() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
        let mut ads = RoboAds::with_defaults(system.clone(), x0.clone()).unwrap();
        let u = Vector::from_slice(&[0.05, 0.05]);
        let x1 = system.dynamics().step(&x0, &u);
        let report = ads.step(&u, &clean_readings(&system, &x1)).unwrap();
        let sum: f64 = report.mode_probabilities.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }
}
