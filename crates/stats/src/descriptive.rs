//! Small descriptive-statistics helpers used by the evaluation harness
//! (anomaly-vector quantification accuracy, Table IV variances, …).

/// Arithmetic mean; 0 for an empty slice.
///
/// ```
/// assert_eq!(roboads_stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased sample variance (`n − 1` denominator); 0 for fewer than two
/// samples.
///
/// ```
/// let v = roboads_stats::sample_variance(&[1.0, 2.0, 3.0]);
/// assert!((v - 1.0).abs() < 1e-12);
/// ```
pub fn sample_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64
}

/// Square root of [`sample_variance`].
pub fn sample_std_dev(values: &[f64]) -> f64 {
    sample_variance(values).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(sample_variance(&[5.0; 10]), 0.0);
    }

    #[test]
    fn variance_known_value() {
        // Var of {2, 4, 4, 4, 5, 5, 7, 9} with n-1 denominator is 32/7.
        let v = sample_variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_is_sqrt_of_variance() {
        let data = [1.0, 3.0, 5.0];
        assert!((sample_std_dev(&data) - sample_variance(&data).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn single_sample_variance_is_zero() {
        assert_eq!(sample_variance(&[42.0]), 0.0);
    }
}
