//! Preset system descriptions matching the paper's two evaluation robots.
//!
//! All numeric choices (noise magnitudes, geometry, control period) are
//! recorded in `DESIGN.md` §6; the defaults here are shared by the
//! examples, the integration tests and every benchmark harness so that
//! all reported numbers come from one configuration.

use std::sync::Arc;

use roboads_linalg::Matrix;

use crate::dynamics::{Bicycle, DifferentialDrive, DynamicsModel};
use crate::environment::{Aabb, Arena};
use crate::sensors::{InertialNav, Ips, SensorModel, WallLidar, WheelEncoderOdometry};
use crate::system::RobotSystem;

/// Control period for both robots, seconds (10 Hz control iterations).
pub const CONTROL_PERIOD: f64 = 0.1;

/// Khepera sensor suite index: indoor positioning system.
pub const KHEPERA_IPS: usize = 0;
/// Khepera sensor suite index: wheel-encoder odometry.
pub const KHEPERA_WHEEL_ENCODER: usize = 1;
/// Khepera sensor suite index: wall-extraction LiDAR.
pub const KHEPERA_LIDAR: usize = 2;

/// Tamiya sensor suite index: indoor positioning system.
pub const TAMIYA_IPS: usize = 0;
/// Tamiya sensor suite index: IMU inertial navigation.
pub const TAMIYA_IMU: usize = 1;
/// Tamiya sensor suite index: wall-extraction LiDAR.
pub const TAMIYA_LIDAR: usize = 2;

/// The 4 m × 4 m Vicon-tracked arena with two box obstacles used by all
/// evaluation missions.
pub fn evaluation_arena() -> Arena {
    Arena::new(4.0, 4.0)
        .expect("static dimensions")
        .with_obstacle(Aabb::new(1.2, 1.4, 1.8, 2.1).expect("static box"))
        .expect("inside arena")
        .with_obstacle(Aabb::new(2.4, 2.5, 3.0, 3.1).expect("static box"))
        .expect("inside arena")
}

/// Per-step process noise covariance `Q` shared by both robots:
/// (2 mm, 2 mm, 2 mrad) standard deviations.
pub fn default_process_noise() -> Matrix {
    Matrix::from_diagonal(&[0.002 * 0.002, 0.002 * 0.002, 0.002 * 0.002])
}

/// The Khepera III differential-drive model at the evaluation control
/// rate (wheel base 88.5 mm).
pub fn khepera_dynamics() -> DifferentialDrive {
    DifferentialDrive::new(0.0885, CONTROL_PERIOD).expect("static parameters")
}

/// The Khepera III system: differential drive with IPS (index 0),
/// wheel-encoder odometry (index 1) and wall LiDAR (index 2).
///
/// Sensor indices are ordered so that `sensor i` corresponds to the
/// paper's Table III sensor modes `S_{i+1}`.
pub fn khepera_system() -> RobotSystem {
    khepera_system_in(evaluation_arena())
}

/// [`khepera_system`] with a custom arena (the LiDAR wall model depends
/// on it).
pub fn khepera_system_in(arena: Arena) -> RobotSystem {
    let dynamics: Arc<dyn DynamicsModel> = Arc::new(khepera_dynamics());
    let ips: Arc<dyn SensorModel> = Arc::new(Ips::new(0.004, 0.003).expect("static noise"));
    let encoder: Arc<dyn SensorModel> =
        Arc::new(WheelEncoderOdometry::khepera().expect("static geometry"));
    let lidar: Arc<dyn SensorModel> =
        Arc::new(WallLidar::new(arena, 0.015, 0.02).expect("static noise"));
    RobotSystem::new(dynamics, default_process_noise(), vec![ips, encoder, lidar])
        .expect("static configuration is valid")
}

/// The Tamiya TT-02 bicycle model at the evaluation control rate
/// (wheelbase 257 mm, steering stop ±0.45 rad).
pub fn tamiya_dynamics() -> Bicycle {
    Bicycle::new(0.257, 0.45, CONTROL_PERIOD).expect("static parameters")
}

/// The Tamiya TT-02 system: bicycle dynamics with IPS (index 0), IMU
/// inertial navigation (index 1) and wall LiDAR (index 2).
pub fn tamiya_system() -> RobotSystem {
    tamiya_system_in(evaluation_arena())
}

/// [`tamiya_system`] with a custom arena.
pub fn tamiya_system_in(arena: Arena) -> RobotSystem {
    let dynamics: Arc<dyn DynamicsModel> = Arc::new(tamiya_dynamics());
    let ips: Arc<dyn SensorModel> = Arc::new(Ips::new(0.004, 0.003).expect("static noise"));
    let imu: Arc<dyn SensorModel> = Arc::new(InertialNav::new(0.008, 0.002).expect("static noise"));
    let lidar: Arc<dyn SensorModel> =
        Arc::new(WallLidar::new(arena, 0.015, 0.02).expect("static noise"));
    RobotSystem::new(dynamics, default_process_noise(), vec![ips, imu, lidar])
        .expect("static configuration is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_linalg::Vector;

    #[test]
    fn khepera_preset_is_well_formed() {
        let sys = khepera_system();
        assert_eq!(sys.state_dim(), 3);
        assert_eq!(sys.input_dim(), 2);
        assert_eq!(sys.sensor_count(), 3);
        assert_eq!(sys.sensor_name(KHEPERA_IPS), "ips");
        assert_eq!(sys.sensor_name(KHEPERA_WHEEL_ENCODER), "wheel-encoder");
        assert_eq!(sys.sensor_name(KHEPERA_LIDAR), "lidar");
        assert!(sys.process_noise().cholesky().is_ok());
    }

    #[test]
    fn tamiya_preset_is_well_formed() {
        let sys = tamiya_system();
        assert_eq!(sys.dynamics().name(), "bicycle");
        assert_eq!(sys.sensor_name(TAMIYA_IMU), "imu");
        assert_eq!(sys.total_measurement_dim(), 10);
    }

    #[test]
    fn arena_has_room_for_missions() {
        let arena = evaluation_arena();
        assert_eq!(arena.width(), 4.0);
        assert_eq!(arena.obstacles().len(), 2);
        // Both standard mission endpoints are free.
        assert!(arena.is_free(0.5, 0.5, 0.1));
        assert!(arena.is_free(3.5, 3.5, 0.1));
    }

    #[test]
    fn every_preset_sensor_is_observable_alone() {
        let x = Vector::from_slice(&[0.5, 0.5, 0.3]);
        for sys in [khepera_system(), tamiya_system()] {
            let u = Vector::from_slice(&[0.05, 0.05]);
            for i in 0..sys.sensor_count() {
                assert!(
                    crate::observability::is_observable(&sys, &[i], &x, &u).unwrap(),
                    "{} sensor {i}",
                    sys.dynamics().name()
                );
            }
        }
    }
}
