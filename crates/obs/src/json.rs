//! Hand-rolled JSON encoding.
//!
//! The observability layer exports JSONL records and summary documents
//! without any external serialization crate (the tier-1 build must
//! resolve offline). Only what the sinks need is implemented: object
//! assembly, string escaping per RFC 8259, and `f64` formatting that
//! maps non-finite values to `null` (JSON has no NaN/Infinity).

/// Escapes `s` into `buf` as a JSON string body (no surrounding quotes).
pub fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

/// Writes `v` into `buf` as a JSON number, or `null` if non-finite.
pub fn write_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` keeps round-trip precision ("0.1", not "0.100000...")
        // and always includes a decimal point or exponent for floats.
        buf.push_str(&format!("{v:?}"));
    } else {
        buf.push_str("null");
    }
}

/// Incremental JSON object builder.
///
/// ```
/// use roboads_obs::json::JsonObject;
///
/// let mut o = JsonObject::new();
/// o.field_str("name", "engine.step");
/// o.field_u64("count", 3);
/// o.field_f64("p50", 0.5);
/// assert_eq!(o.finish(), r#"{"name":"engine.step","count":3,"p50":0.5}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, name);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn field_str(&mut self, name: &str, v: &str) {
        self.key(name);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
    }

    /// Adds a float field (`null` when non-finite).
    pub fn field_f64(&mut self, name: &str, v: f64) {
        self.key(name);
        write_f64(&mut self.buf, v);
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.key(name);
        self.buf.push_str(&v.to_string());
    }

    /// Adds a signed integer field.
    pub fn field_i64(&mut self, name: &str, v: i64) {
        self.key(name);
        self.buf.push_str(&v.to_string());
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, name: &str, v: bool) {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Adds a pre-encoded JSON value verbatim (nested object/array).
    pub fn field_raw(&mut self, name: &str, json: &str) {
        self.key(name);
        self.buf.push_str(json);
    }

    /// Closes the object and returns the encoded string.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Encodes a sequence of pre-encoded JSON values as an array.
pub fn array_of(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_controls_and_unicode() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}π");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001π");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObject::new();
        o.field_f64("nan", f64::NAN);
        o.field_f64("inf", f64::INFINITY);
        o.field_f64("x", 1.5);
        assert_eq!(o.finish(), r#"{"nan":null,"inf":null,"x":1.5}"#);
    }

    #[test]
    fn arrays_and_nesting() {
        let inner = {
            let mut o = JsonObject::new();
            o.field_u64("k", 1);
            o.finish()
        };
        let mut outer = JsonObject::new();
        outer.field_raw("rows", &array_of([inner]));
        assert_eq!(outer.finish(), r#"{"rows":[{"k":1}]}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
