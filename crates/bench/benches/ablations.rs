//! Ablations of the design choices `DESIGN.md` calls out, plus the §VI
//! switching-attacker resilience probe.
//!
//! Each ablation removes one mechanism and measures what the paper (or
//! our derivation notes) claims it provides:
//!
//! * **input compensation** (NUISE step 2 / challenge 2) — without it,
//!   actuator misbehavior biases the state prediction and floods the
//!   sensor tests with false positives;
//! * **parsimony prior** (DESIGN.md §2e) — without it, an absorbed
//!   sensor corruption (the encoder tick bias lies in `range(C₂G)`)
//!   competes as a phantom-actuator hypothesis and misidentification
//!   rises in the 2-of-3-corrupted scenarios;
//! * **probability mixing** (§2f; the paper's ε floor plays the same
//!   role) — without it, recovery after an attack ends is slowed or
//!   lost (scenario #10's LiDAR returns to normal mid-run);
//! * **sliding windows** (§IV-D) — without them (1/1), transient bumps
//!   are reported as misbehaviors.
//!
//! Run with: `cargo bench -p roboads-bench --bench ablations`

use roboads_core::RoboAdsConfig;
use roboads_sim::{Scenario, SimOutcome, SimulationBuilder};

const SEEDS: [u64; 3] = [11, 23, 37];

fn run(scenario: &Scenario, config: &RoboAdsConfig, seed: u64) -> SimOutcome {
    SimulationBuilder::khepera()
        .scenario(scenario.clone())
        .config(config.clone())
        .seed(seed)
        .run()
        .expect("ablation run")
}

fn averaged<F: Fn(&SimOutcome) -> f64>(
    scenario: &Scenario,
    config: &RoboAdsConfig,
    metric: F,
) -> f64 {
    let sum: f64 = SEEDS
        .iter()
        .map(|&s| metric(&run(scenario, config, s)))
        .sum();
    sum / SEEDS.len() as f64
}

fn main() {
    let defaults = RoboAdsConfig::paper_defaults();

    // --- Ablation 1: input compensation (challenge 2). ---
    // Under a pure actuator attack the uncompensated filter mispredicts
    // and blames the sensors.
    let scenario = Scenario::wheel_logic_bomb();
    let s_fpr_on = averaged(&scenario, &defaults, |o| o.eval.sensor_fpr());
    let s_fpr_off = averaged(&scenario, &defaults.clone().without_compensation(), |o| {
        o.eval.sensor_fpr()
    });
    let a_fnr_on = averaged(&scenario, &defaults, |o| o.eval.actuator_fnr());
    let a_fnr_off = averaged(&scenario, &defaults.clone().without_compensation(), |o| {
        o.eval.actuator_fnr()
    });
    println!("ablation: input compensation (scenario #1, wheel logic bomb)");
    println!(
        "  with compensation    : sensor FPR {:.2}%  actuator FNR {:.2}%",
        s_fpr_on * 100.0,
        a_fnr_on * 100.0
    );
    println!(
        "  without compensation : sensor FPR {:.2}%  actuator FNR {:.2}%",
        s_fpr_off * 100.0,
        a_fnr_off * 100.0
    );
    println!(
        "  claim (challenge 2): uncompensated estimation floods the sensor tests -> {}",
        if s_fpr_off > 5.0 * s_fpr_on.max(1e-3) {
            "holds"
        } else {
            "VIOLATED"
        }
    );

    // --- Ablation 2: parsimony prior. ---
    let scenario = Scenario::ips_and_encoder_logic_bomb();
    let fpr_with = averaged(&scenario, &defaults, |o| o.eval.sensor_fpr());
    let fpr_without = averaged(&scenario, &defaults.clone().with_parsimony_rho(1.0), |o| {
        o.eval.sensor_fpr()
    });
    println!("\nablation: parsimony prior (scenario #11, IPS + encoder, only LiDAR clean)");
    println!("  rho = 0.05 : sensor FPR {:.2}%", fpr_with * 100.0);
    println!("  rho = 1.0  : sensor FPR {:.2}%", fpr_without * 100.0);
    println!(
        "  claim (DESIGN.md §2e): the prior suppresses phantom-actuator hypotheses -> {}",
        if fpr_without > 2.0 * fpr_with.max(1e-3) {
            "holds"
        } else {
            "VIOLATED"
        }
    );

    // --- Ablation 3: probability mixing / recovery. ---
    // Scenario #10 ends with the LiDAR returning to normal; the detector
    // must hand the condition back from S5 to S1.
    let scenario = Scenario::ips_spoofing_and_lidar_dos();
    let rec = |o: &SimOutcome| {
        o.eval
            .sensor_transitions
            .iter()
            .filter(|t| t.condition == "S1")
            .map(|t| t.delay.unwrap_or(8.0)) // a miss counts as the rest of the run
            .next()
            .unwrap_or(8.0)
    };
    let rec_with = averaged(&scenario, &defaults, rec);
    let rec_without = averaged(&scenario, &defaults.clone().with_mode_mixing(0.0), rec);
    println!("\nablation: probability mixing (scenario #10 recovery S5 -> S1)");
    println!("  mixing 0.02 : recovery in {rec_with:.2} s");
    println!("  mixing 0    : recovery in {rec_without:.2} s");
    println!(
        "  claim (§2f): the transition prior speeds post-attack recovery -> {}",
        if rec_without >= rec_with {
            "holds"
        } else {
            "VIOLATED (floor alone sufficed here)"
        }
    );

    // --- Ablation 4: sliding windows vs transient faults. ---
    let scenario = Scenario::clean().with_transient_bumps(17, 0.05);
    let fpr_22 = averaged(&scenario, &defaults, |o| o.eval.sensor_fpr());
    let fpr_11 = averaged(&scenario, &defaults.clone().with_sensor_window(1, 1), |o| {
        o.eval.sensor_fpr()
    });
    println!("\nablation: sliding window under transient bumps (clean mission + bumps)");
    println!("  c/w = 2/2 : sensor FPR {:.2}%", fpr_22 * 100.0);
    println!("  c/w = 1/1 : sensor FPR {:.2}%", fpr_11 * 100.0);
    println!(
        "  claim (§IV-D): the window absorbs transient faults -> {}",
        if fpr_11 > 3.0 * fpr_22.max(1e-3) {
            "holds"
        } else {
            "VIOLATED"
        }
    );

    // --- Extension: sliding window vs CUSUM on the recorded statistic
    //     stream (same runs, two offline confirmations). ---
    {
        use roboads_stats::{ChiSquareTest, Cusum, SlidingWindow};
        let scenario = Scenario::ips_logic_bomb().with_transient_bumps(17, 0.05);
        let outcome = run(&scenario, &defaults, 11);
        let stats: Vec<f64> = outcome
            .trace
            .records()
            .iter()
            .map(|r| r.report.sensor_anomaly.statistic)
            .collect();
        let onset = 40usize;
        let threshold = ChiSquareTest::new(7, 0.005).expect("test").threshold();

        let mut window = SlidingWindow::new(2, 2).expect("window");
        let mut cusum = Cusum::new(threshold * 0.75, threshold * 2.0).expect("cusum");
        let (mut w_delay, mut c_delay) = (None, None);
        let (mut w_fp, mut c_fp) = (0, 0);
        for (k, &s) in stats.iter().enumerate() {
            let w_fired = window.push(s > threshold);
            let c_fired = cusum.push(s);
            if k < onset {
                w_fp += usize::from(w_fired);
                c_fp += usize::from(c_fired);
                if c_fired {
                    cusum.reset();
                }
            } else {
                if w_fired && w_delay.is_none() {
                    w_delay = Some(k - onset);
                }
                if c_fired && c_delay.is_none() {
                    c_delay = Some(k - onset);
                }
            }
        }
        println!("\nextension: window (2/2) vs CUSUM confirmation on the same statistic stream");
        println!(
            "  window : delay {:?} iterations, pre-attack alarms {w_fp}",
            w_delay
        );
        println!(
            "  cusum  : delay {:?} iterations, pre-attack alarms {c_fp}",
            c_delay
        );
        println!("  (both confirm within a few iterations; CUSUM trades an extra tuning knob for\n   sensitivity to small persistent shifts)");
    }

    // --- §VI probe: switching attacker. ---
    let scenario = Scenario::switching_attacker();
    let fpr = averaged(&scenario, &defaults, |o| o.eval.sensor_fpr());
    let fnr = averaged(&scenario, &defaults, |o| o.eval.sensor_fnr());
    let outcome = run(&scenario, &defaults, 11);
    println!("\n§VI probe: attacker rotates its target every 2 s (IPS -> encoder -> LiDAR)");
    println!(
        "  detected sequence (seed 11): {}",
        outcome.eval.detected_sensor_sequence.join(" -> ")
    );
    println!("  sensor FPR {:.2}%  FNR {:.2}%", fpr * 100.0, fnr * 100.0);
    println!(
        "  (the paper lists resilience to such attacks as unexplored future work; \
         the mode-switch prior keeps the detector tracking, at degraded rates)"
    );
}
