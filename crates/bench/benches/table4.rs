//! Table IV — actuator anomaly-vector variance under different sensor
//! settings, plus the §V-E sensor-quality sweep.
//!
//! The paper reports the variance of the actuator anomaly estimates
//! `d̂^a` on (v_L, v_R) when the reference set is a single sensor versus
//! all three (Table IV, ×10⁻⁵): IPS 2.39/1.94, wheel encoder 2.76/2.04,
//! LiDAR 21.7/20.3, all-3 2.32/1.88 — i.e. LiDAR an order of magnitude
//! worse and fusion of all three strictly best. §V-E adds that better
//! sensor quality strictly reduces the estimation variance.
//!
//! Run with: `cargo bench -p roboads-bench --bench table4`

use std::sync::Arc;

use roboads_core::{ModeSet, RoboAdsConfig};
use roboads_linalg::Vector;
use roboads_models::sensors::{Ips, SensorModel, WallLidar, WheelEncoderOdometry};
use roboads_models::{presets, RobotSystem};
use roboads_sim::{Scenario, SimulationBuilder};
use roboads_stats::sample_variance;

/// Runs a clean mission with the given single reference group and
/// returns the empirical variance of the per-iteration actuator anomaly
/// estimates on each input channel.
fn actuator_variance(system: &RobotSystem, group: Vec<usize>, seeds: &[u64]) -> Vec<f64> {
    let mode_set = ModeSet::from_reference_groups(system, &[group]);
    let mut channels: Vec<Vec<f64>> = vec![Vec::new(); system.input_dim()];
    for &seed in seeds {
        let outcome = SimulationBuilder::khepera()
            .system(system.clone())
            .scenario(Scenario::clean())
            .config(RoboAdsConfig::paper_defaults())
            .mode_set(mode_set.clone())
            .seed(seed)
            .run()
            .expect("clean run");
        for r in outcome.trace.records() {
            let d: &Vector = &r.report.actuator_anomaly.estimate;
            for (c, channel) in channels.iter_mut().enumerate() {
                channel.push(d[c]);
            }
        }
    }
    channels.iter().map(|c| sample_variance(c)).collect()
}

/// Builds a Khepera system with every sensor's noise scaled by `factor`.
fn khepera_with_quality(factor: f64) -> RobotSystem {
    let arena = presets::evaluation_arena();
    let ips: Arc<dyn SensorModel> =
        Arc::new(Ips::new(0.004 * factor, 0.006 * factor).expect("scaled noise"));
    let encoder: Arc<dyn SensorModel> = Arc::new(
        WheelEncoderOdometry::khepera()
            .expect("geometry")
            .with_quality_factor(factor)
            .expect("scaled noise"),
    );
    let lidar: Arc<dyn SensorModel> =
        Arc::new(WallLidar::new(arena, 0.015 * factor, 0.02 * factor).expect("scaled noise"));
    RobotSystem::new(
        Arc::new(presets::khepera_dynamics()),
        presets::default_process_noise(),
        vec![ips, encoder, lidar],
    )
    .expect("valid system")
}

fn main() {
    let seeds = [11u64, 23, 37];
    let system = presets::khepera_system();

    println!("Table IV — actuator anomaly variance by reference-sensor setting (x1e-5)");
    println!(
        "{:<18} {:>12} {:>12}   paper (x1e-5)",
        "Sensor setting", "Var(vL)", "Var(vR)"
    );
    let settings: [(&str, Vec<usize>, &str); 4] = [
        ("IPS", vec![0], "2.39 / 1.94"),
        ("Wheel encoder", vec![1], "2.76 / 2.04"),
        ("LiDAR", vec![2], "21.7 / 20.3"),
        ("All 3 sensors", vec![0, 1, 2], "2.32 / 1.88"),
    ];
    let mut all3 = Vec::new();
    let mut singles: Vec<Vec<f64>> = Vec::new();
    for (name, group, paper) in settings {
        let var = actuator_variance(&system, group.clone(), &seeds);
        println!(
            "{:<18} {:>12.2} {:>12.2}   {}",
            name,
            var[0] * 1e5,
            var[1] * 1e5,
            paper
        );
        if group.len() == 3 {
            all3 = var;
        } else {
            singles.push(var);
        }
    }
    let best_single: f64 = singles.iter().map(|v| v[0]).fold(f64::INFINITY, f64::min);
    println!(
        "\nfusion check: all-3 variance {:.2}e-5 <= best single {:.2}e-5 -> {}",
        all3[0] * 1e5,
        best_single * 1e5,
        if all3[0] <= best_single * 1.05 {
            "holds"
        } else {
            "VIOLATED"
        }
    );

    println!("\n§V-E — sensor quality sweep (all-3 reference, noise scaled by factor)");
    println!(
        "{:>8} {:>14} {:>14}",
        "factor", "Var(vL) x1e-5", "Var(vR) x1e-5"
    );
    let mut prev = 0.0;
    let mut monotone = true;
    for factor in [0.5, 1.0, 2.0, 4.0] {
        let sys = khepera_with_quality(factor);
        let var = actuator_variance(&sys, vec![0, 1, 2], &seeds[..2]);
        println!("{factor:>8} {:>14.2} {:>14.2}", var[0] * 1e5, var[1] * 1e5);
        if var[0] < prev {
            monotone = false;
        }
        prev = var[0];
    }
    println!(
        "variance strictly increases with noise -> {}",
        if monotone { "holds" } else { "VIOLATED" }
    );
}
