//! Counters, gauges and log-linear histograms.
//!
//! ## The no-alloc record-path invariant
//!
//! Instrument *registration* (`MetricsRegistry::counter` & co.) may
//! allocate and takes a registry lock; it happens once, at detector
//! construction. Instrument *recording* (`Counter::incr`,
//! `Histogram::record`, `Gauge::set`) happens every control iteration on
//! the estimation hot path and therefore performs **no allocation and no
//! locking** — every record is a handful of relaxed/CAS atomic
//! operations on pre-sized storage. Handles are `Arc`-backed and cheap
//! to clone, so callers cache them in their own structs and never touch
//! the registry map again.
//!
//! ## Histogram design
//!
//! Fixed log-linear buckets (the HDR-histogram idea, sized for `f64`
//! telemetry): the positive axis from 2⁻³⁰ (≈ 1 ns when recording
//! seconds) to 2²⁰ (≈ 10⁶) is split into octaves, each octave into
//! [`SUBBUCKETS`] linear sub-buckets, giving a guaranteed relative error
//! of at most 1/[`SUBBUCKETS`] per recorded value. Values at or below
//! zero land in a dedicated underflow bucket, values beyond the top in
//! an overflow bucket, and non-finite values are *counted* (numerical
//! health is this layer's whole point) but excluded from quantiles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::JsonObject;

/// Sub-buckets per octave; relative quantile error is bounded by its
/// reciprocal (≈ 6.25%).
pub const SUBBUCKETS: usize = 16;
const SUB_BITS: u32 = 4; // log2(SUBBUCKETS)
const MIN_EXP: i32 = -30;
const MAX_EXP: i32 = 20;
/// Underflow + log-linear span + overflow.
const BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUBBUCKETS + 2;
const OVERFLOW: usize = BUCKETS - 1;

fn bucket_index(v: f64) -> usize {
    let floor = (MIN_EXP as f64).exp2();
    if v < floor {
        // Zero, negatives and subnormal-small values: underflow bucket.
        return 0;
    }
    if v >= (MAX_EXP as f64).exp2() {
        return OVERFLOW;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
    1 + ((exp - MIN_EXP) as usize) * SUBBUCKETS + sub
}

/// `[lo, hi)` value range of bucket `i`.
fn bucket_bounds(i: usize) -> (f64, f64) {
    if i == 0 {
        return (0.0, (MIN_EXP as f64).exp2());
    }
    if i >= OVERFLOW {
        return ((MAX_EXP as f64).exp2(), f64::INFINITY);
    }
    let j = i - 1;
    let exp = MIN_EXP + (j / SUBBUCKETS) as i32;
    let base = (exp as f64).exp2();
    let step = base / SUBBUCKETS as f64;
    let lo = base + step * (j % SUBBUCKETS) as f64;
    (lo, lo + step)
}

fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + v;
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn atomic_f64_extreme(cell: &AtomicU64, v: f64, want_max: bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let cur_v = f64::from_bits(cur);
        let replace = if want_max { v > cur_v } else { v < cur_v };
        if !replace {
            return;
        }
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A monotone event counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins float gauge. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    nonfinite: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket log-linear histogram of `f64` samples.
///
/// Recording is lock-free and allocation-free; see the module docs for
/// the bucket layout and error bound. Cloning shares the storage.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, || AtomicU64::new(0));
        Histogram(Arc::new(HistogramCore {
            buckets,
            count: AtomicU64::new(0),
            nonfinite: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }))
    }
}

impl Histogram {
    /// Creates an empty histogram (identical to `default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. NaN and ±∞ increment the non-finite counter
    /// (they signal numerical trouble, the very thing this layer is
    /// watching for) but do not enter the distribution.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            self.0.nonfinite.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.0.sum, v);
        atomic_f64_extreme(&self.0.min, v, false);
        atomic_f64_extreme(&self.0.max, v, true);
    }

    /// Number of finite samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Number of non-finite samples rejected.
    pub fn nonfinite(&self) -> u64 {
        self.0.nonfinite.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the containing bucket, clamped to the exact
    /// observed min/max. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let min = f64::from_bits(self.0.min.load(Ordering::Relaxed));
        let max = f64::from_bits(self.0.max.load(Ordering::Relaxed));
        // The extremes are tracked exactly — don't approximate them.
        if q == 0.0 {
            return Some(min);
        }
        if q == 1.0 {
            return Some(max);
        }
        // 1-based rank of the order statistic we are after.
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                let frac = (rank - cum) as f64 / c as f64;
                let hi = if hi.is_finite() { hi } else { max };
                let est = lo + (hi - lo) * frac;
                return Some(est.clamp(min, max));
            }
            cum += c;
        }
        Some(max)
    }

    /// Mean of the recorded samples (exact, from the running sum).
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        Some(f64::from_bits(self.0.sum.load(Ordering::Relaxed)) / n as f64)
    }

    /// Point-in-time summary with the standard quantiles.
    pub fn summary(&self) -> HistogramSummary {
        let n = self.count();
        HistogramSummary {
            count: n,
            nonfinite: self.nonfinite(),
            mean: self.mean().unwrap_or(f64::NAN),
            min: if n == 0 {
                f64::NAN
            } else {
                f64::from_bits(self.0.min.load(Ordering::Relaxed))
            },
            max: if n == 0 {
                f64::NAN
            } else {
                f64::from_bits(self.0.max.load(Ordering::Relaxed))
            },
            p50: self.quantile(0.50).unwrap_or(f64::NAN),
            p95: self.quantile(0.95).unwrap_or(f64::NAN),
            p99: self.quantile(0.99).unwrap_or(f64::NAN),
        }
    }
}

/// Point-in-time digest of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Finite samples recorded.
    pub count: u64,
    /// Non-finite samples rejected (NaN/±∞ — numerical-health signal).
    pub nonfinite: u64,
    /// Exact mean (NaN when empty).
    pub mean: f64,
    /// Exact minimum (NaN when empty).
    pub min: f64,
    /// Exact maximum (NaN when empty).
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    /// The summary of a histogram that never recorded anything.
    pub fn empty() -> Self {
        HistogramSummary {
            count: 0,
            nonfinite: 0,
            mean: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
            p50: f64::NAN,
            p95: f64::NAN,
            p99: f64::NAN,
        }
    }

    /// Encodes the summary as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("count", self.count);
        o.field_u64("nonfinite", self.nonfinite);
        o.field_f64("mean", self.mean);
        o.field_f64("min", self.min);
        o.field_f64("max", self.max);
        o.field_f64("p50", self.p50);
        o.field_f64("p95", self.p95);
        o.field_f64("p99", self.p99);
        o.finish()
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of instruments.
///
/// Get-or-create accessors hand out shared handles; see the module docs
/// for the registration-vs-record cost split. Names are ordinary string
/// keys (`BTreeMap`, so snapshots iterate deterministically); callers on
/// the hot path cache the returned handles instead of re-looking-up.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Instrument>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different instrument
    /// kind — that is a programming error worth failing loudly on.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter::default()))
        {
            Instrument::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the gauge named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics on instrument-kind conflict, as [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge::default()))
        {
            Instrument::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the histogram named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics on instrument-kind conflict, as [`MetricsRegistry::counter`].
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Histogram::default()))
        {
            Instrument::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Current value of a counter, `None` if absent or not a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let map = self.inner.lock().expect("metrics registry poisoned");
        match map.get(name) {
            Some(Instrument::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Summary of a histogram, `None` if absent or not a histogram.
    pub fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        let map = self.inner.lock().expect("metrics registry poisoned");
        match map.get(name) {
            Some(Instrument::Histogram(h)) => Some(h.summary()),
            _ => None,
        }
    }

    /// Point-in-time snapshot of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Instrument::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Instrument::Histogram(h) => snap.histograms.push((name.clone(), h.summary())),
            }
        }
        snap
    }
}

/// A point-in-time copy of a registry's contents.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Encodes the snapshot as one JSON object with `counters`,
    /// `gauges` and `histograms` sub-objects. Each section is sorted by
    /// instrument name regardless of insertion order, so two snapshots
    /// of the same state always serialize identically (diffable runs).
    pub fn to_json(&self) -> String {
        fn sorted<T>(items: &[(String, T)]) -> Vec<&(String, T)> {
            let mut refs: Vec<_> = items.iter().collect();
            refs.sort_by(|a, b| a.0.cmp(&b.0));
            refs
        }
        let mut counters = JsonObject::new();
        for (name, v) in sorted(&self.counters) {
            counters.field_u64(name, *v);
        }
        let mut gauges = JsonObject::new();
        for (name, v) in sorted(&self.gauges) {
            gauges.field_f64(name, *v);
        }
        let mut hists = JsonObject::new();
        for (name, s) in sorted(&self.histograms) {
            hists.field_raw(name, &s.to_json());
        }
        let mut o = JsonObject::new();
        o.field_raw("counters", &counters.finish());
        o.field_raw("gauges", &gauges.finish());
        o.field_raw("histograms", &hists.finish());
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_state_across_clones() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.incr();
        b.add(2);
        assert_eq!(reg.counter_value("x"), Some(3));

        let g = reg.gauge("g");
        g.set(2.5);
        assert_eq!(reg.gauge("g").get(), 2.5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn bucket_mapping_is_monotone_and_within_bounds() {
        let mut prev = 0usize;
        let mut v = 1e-10f64;
        while v < 1e7 {
            let i = bucket_index(v);
            assert!(i >= prev, "bucket index must be monotone in v (v={v})");
            let (lo, hi) = bucket_bounds(i);
            if i != 0 && i != OVERFLOW {
                assert!(lo <= v && v < hi, "v={v} not in [{lo},{hi})");
                // Relative bucket width bounds the quantile error.
                assert!((hi - lo) / lo <= 1.0 / SUBBUCKETS as f64 + 1e-12);
            }
            prev = i;
            v *= 1.07;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(1e30), OVERFLOW);
    }

    #[test]
    fn quantiles_track_a_uniform_grid_within_bucket_error() {
        let h = Histogram::new();
        // 0.001, 0.002, ..., 1.000: exact q-quantile is ~q.
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0);
        }
        for (q, exact) in [(0.5, 0.5), (0.95, 0.95), (0.99, 0.99)] {
            let est = h.quantile(q).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.07, "q={q}: est {est} vs exact {exact} (rel {rel})");
        }
        assert_eq!(h.quantile(0.0).unwrap(), 0.001);
        assert_eq!(h.quantile(1.0).unwrap(), 1.0);
    }

    #[test]
    fn quantiles_track_an_exponential_sample() {
        // Deterministic inverse-CDF sampling of Exp(1): quantiles are
        // known in closed form, and the distribution spans several
        // octaves — the log-linear layout's home turf.
        let h = Histogram::new();
        let n = 5000;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            h.record(-(1.0 - u).ln());
        }
        for q in [0.5, 0.95, 0.99] {
            let exact = -(1.0f64 - q).ln();
            let est = h.quantile(q).unwrap();
            assert!(
                ((est - exact) / exact).abs() < 0.07,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn mean_min_max_are_exact() {
        let h = Histogram::new();
        for v in [0.1, 0.2, 0.3, 10.0] {
            h.record(v);
        }
        assert!((h.mean().unwrap() - 2.65).abs() < 1e-12);
        let s = h.summary();
        assert_eq!(s.min, 0.1);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn nonfinite_samples_are_counted_not_mixed_in() {
        let h = Histogram::new();
        h.record(1.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 1);
        assert_eq!(h.nonfinite(), 2);
        assert_eq!(h.quantile(0.5), Some(1.0));
    }

    #[test]
    fn empty_histogram_summary_is_well_formed() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert!(s.p50.is_nan());
        // JSON maps the NaNs to null.
        assert!(s.to_json().contains("\"p50\":null"));
    }

    #[test]
    fn snapshot_to_json_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(1.5);
        reg.histogram("h").record(0.25);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"counters\":{\"c\":7}"));
        assert!(json.contains("\"gauges\":{\"g\":1.5}"));
        assert!(json.contains("\"h\":{\"count\":1"));
    }

    #[test]
    fn snapshot_to_json_sorts_every_section_by_name() {
        // Construct an intentionally unsorted snapshot by hand — the
        // encoder, not the producer, owns the ordering guarantee.
        let snap = MetricsSnapshot {
            counters: vec![("z".into(), 1), ("a".into(), 2), ("m".into(), 3)],
            gauges: vec![("beta".into(), 2.0), ("alpha".into(), 1.0)],
            histograms: vec![
                ("late".into(), HistogramSummary::empty()),
                ("early".into(), HistogramSummary::empty()),
            ],
        };
        let json = snap.to_json();
        assert!(json.contains(r#""counters":{"a":2,"m":3,"z":1}"#), "{json}");
        assert!(
            json.contains(r#""gauges":{"alpha":1.0,"beta":2.0}"#),
            "{json}"
        );
        let early = json.find("\"early\"").unwrap();
        let late = json.find("\"late\"").unwrap();
        assert!(early < late, "{json}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        let c = reg.counter("n");
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..10_000 {
                        h.record((t * 10_000 + i) as f64 * 1e-6);
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(c.get(), 40_000);
    }
}
