//! Lossless encode/decode primitives shared by every bitwise-faithful
//! serialization path in the workspace: the incident-capsule JSONL
//! writer (`roboads_core::recorder`), the versioned detector snapshot
//! format (`roboads_core::snapshot`) and the binary frame codec
//! (`roboads_wire`).
//!
//! Two families live here:
//!
//! * **Bit-equality helpers** ([`feq`], [`slice_feq`]) — the workspace's
//!   one definition of "bitwise identical" for `f64`: exact bit pattern,
//!   with every NaN payload considered equal to every other (replay and
//!   restore must treat a NaN-producing run as reproducible).
//! * **Binary primitives** — little-endian put/take for the integer and
//!   float shapes the snapshot and frame formats are built from, with a
//!   bounds-checked cursor reader ([`ByteReader`]) that returns typed
//!   errors ([`ByteError`]) instead of panicking, and length-guarded
//!   vector reads that never allocate more than the input can back
//!   (a corrupt or hostile length prefix must not over-allocate).
//!
//! Floats always travel as `f64::to_bits` so `-0.0`, subnormals and NaN
//! payloads survive a round trip exactly — the same discipline as
//! [`crate::json::write_f64_lossless`], without JSON's NaN workarounds.

use crate::json::JsonObject;

/// Bit-exact float equality with NaN ≡ NaN (any payload).
///
/// `-0.0 != 0.0` under this relation — a replayed or restored detector
/// must reproduce the *representation*, not just the value.
pub fn feq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

/// [`feq`] over whole slices (lengths must match too).
pub fn slice_feq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| feq(x, y))
}

/// Copies `src` into `dst`, reusing `dst`'s buffer when the lengths
/// match (the warm path of every refill-style record loop).
pub fn refill(dst: &mut Vec<f64>, src: &[f64]) {
    dst.clear();
    dst.extend_from_slice(src);
}

// --- JSON composition helpers (capsule JSONL writer) -----------------

/// Adds a lossless float field (see [`crate::json::write_f64_lossless`])
/// to a [`JsonObject`].
pub fn lossless_field(o: &mut JsonObject, key: &str, v: f64) {
    let mut buf = String::new();
    crate::json::write_f64_lossless(&mut buf, v);
    o.field_raw(key, &buf);
}

/// Encodes a float slice as a JSON array of lossless values.
pub fn lossless_array(values: &[f64]) -> String {
    let mut buf = String::from("[");
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        crate::json::write_f64_lossless(&mut buf, v);
    }
    buf.push(']');
    buf
}

/// Encodes a usize slice as a JSON array of integers.
pub fn usize_array(values: &[usize]) -> String {
    let mut buf = String::from("[");
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&v.to_string());
    }
    buf.push(']');
    buf
}

// --- Binary primitives (snapshot + frame codec) ----------------------

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its exact bit pattern, little-endian.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a `bool` as one byte (0/1).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends a length-prefixed (`u32`) float slice, each value as bits.
pub fn put_f64_slice(out: &mut Vec<u8>, values: &[f64]) {
    put_u32(out, values.len() as u32);
    for &v in values {
        put_f64(out, v);
    }
}

/// Appends a length-prefixed (`u32`) bool slice, one byte each.
pub fn put_bool_slice(out: &mut Vec<u8>, values: &[bool]) {
    put_u32(out, values.len() as u32);
    for &v in values {
        put_bool(out, v);
    }
}

/// A decode failure: byte offset and a static reason. Decoders built on
/// [`ByteReader`] surface this instead of panicking or over-reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteError {
    /// Cursor position where the failure was detected.
    pub at: usize,
    /// What was wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for ByteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "binary decode error at byte {}: {}",
            self.at, self.reason
        )
    }
}

impl std::error::Error for ByteError {}

/// Bounds-checked cursor over a byte buffer. Every read is validated
/// against the remaining input; running out returns a typed
/// [`ByteError`] — never a panic, never a read past the slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts a cursor at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed the whole buffer.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn err(&self, reason: &'static str) -> ByteError {
        ByteError {
            at: self.pos,
            reason,
        }
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`ByteError`] when fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], ByteError> {
        if self.remaining() < n {
            return Err(self.err("truncated input"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes a `u8`.
    ///
    /// # Errors
    ///
    /// [`ByteError`] on truncated input.
    pub fn u8(&mut self) -> Result<u8, ByteError> {
        Ok(self.bytes(1)?[0])
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`ByteError`] on truncated input.
    pub fn u32(&mut self) -> Result<u32, ByteError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`ByteError`] on truncated input.
    pub fn u64(&mut self) -> Result<u64, ByteError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Takes an `f64` written as its bit pattern.
    ///
    /// # Errors
    ///
    /// [`ByteError`] on truncated input.
    pub fn f64(&mut self) -> Result<f64, ByteError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Takes a one-byte `bool`; any value other than 0/1 is corrupt.
    ///
    /// # Errors
    ///
    /// [`ByteError`] on truncated input or a non-0/1 byte.
    pub fn bool(&mut self) -> Result<bool, ByteError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ByteError {
                at: self.pos - 1,
                reason: "malformed bool",
            }),
        }
    }

    /// Takes a length-prefixed float slice written by [`put_f64_slice`].
    ///
    /// The declared length is validated against the bytes actually
    /// remaining *before* any allocation, so a corrupt or hostile
    /// prefix cannot over-allocate.
    ///
    /// # Errors
    ///
    /// [`ByteError`] on truncated input or a length the remaining bytes
    /// cannot back.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, ByteError> {
        let n = self.u32()? as usize;
        if self.remaining() / 8 < n {
            return Err(self.err("float array length exceeds input"));
        }
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a length-prefixed float slice into `dst` (same validation
    /// as [`ByteReader::f64_vec`], reusing `dst`'s buffer).
    ///
    /// # Errors
    ///
    /// As [`ByteReader::f64_vec`].
    pub fn f64_into(&mut self, dst: &mut [f64]) -> Result<(), ByteError> {
        let n = self.u32()? as usize;
        if n != dst.len() {
            return Err(self.err("float array length mismatch"));
        }
        if self.remaining() / 8 < n {
            return Err(self.err("float array length exceeds input"));
        }
        for slot in dst {
            *slot = self.f64()?;
        }
        Ok(())
    }

    /// Takes a length-prefixed bool slice written by [`put_bool_slice`].
    ///
    /// # Errors
    ///
    /// As [`ByteReader::f64_vec`], plus malformed bool bytes.
    pub fn bool_vec(&mut self) -> Result<Vec<bool>, ByteError> {
        let n = self.u32()? as usize;
        if self.remaining() < n {
            return Err(self.err("bool array length exceeds input"));
        }
        (0..n).map(|_| self.bool()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feq_distinguishes_negative_zero_and_unifies_nan() {
        assert!(feq(1.5, 1.5));
        assert!(!feq(0.0, -0.0));
        assert!(feq(f64::NAN, f64::from_bits(0x7ff8_dead_beef_0000)));
        assert!(!feq(f64::NAN, f64::INFINITY));
        assert!(slice_feq(&[1.0, f64::NAN], &[1.0, f64::NAN]));
        assert!(!slice_feq(&[1.0], &[1.0, 2.0]));
    }

    #[test]
    fn primitives_round_trip_bitwise() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_bool(&mut buf, true);
        let floats = [0.1, -0.0, 5e-324, f64::NAN, f64::NEG_INFINITY, f64::MAX];
        put_f64_slice(&mut buf, &floats);
        put_bool_slice(&mut buf, &[true, false, true]);

        let mut rd = ByteReader::new(&buf);
        assert_eq!(rd.u8().unwrap(), 0xAB);
        assert_eq!(rd.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(rd.u64().unwrap(), u64::MAX - 7);
        assert!(rd.bool().unwrap());
        assert!(slice_feq(&rd.f64_vec().unwrap(), &floats));
        assert_eq!(rd.bool_vec().unwrap(), vec![true, false, true]);
        assert!(rd.is_empty());
    }

    #[test]
    fn truncated_reads_return_typed_errors() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        let mut rd = ByteReader::new(&buf[..5]);
        let err = rd.u64().unwrap_err();
        assert_eq!(err.reason, "truncated input");
        assert_eq!(err.at, 0);
    }

    #[test]
    fn hostile_length_prefix_cannot_over_allocate() {
        // A 4 GiB float-count prefix with 4 bytes of payload behind it
        // must be rejected before any allocation happens.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        buf.extend_from_slice(&[0u8; 4]);
        let mut rd = ByteReader::new(&buf);
        let err = rd.f64_vec().unwrap_err();
        assert_eq!(err.reason, "float array length exceeds input");
        let mut rd = ByteReader::new(&buf);
        assert!(rd.bool_vec().is_err());
    }

    #[test]
    fn malformed_bool_is_corrupt_not_panicking() {
        let buf = [7u8];
        let mut rd = ByteReader::new(&buf);
        assert_eq!(rd.bool().unwrap_err().reason, "malformed bool");
    }

    #[test]
    fn f64_into_validates_shape() {
        let mut buf = Vec::new();
        put_f64_slice(&mut buf, &[1.0, 2.0]);
        let mut dst = [0.0; 3];
        let mut rd = ByteReader::new(&buf);
        assert_eq!(
            rd.f64_into(&mut dst).unwrap_err().reason,
            "float array length mismatch"
        );
        let mut dst = [0.0; 2];
        let mut rd = ByteReader::new(&buf);
        rd.f64_into(&mut dst).unwrap();
        assert_eq!(dst, [1.0, 2.0]);
    }

    #[test]
    fn json_helpers_compose_lossless_fields() {
        let mut o = JsonObject::new();
        lossless_field(&mut o, "x", f64::NAN);
        o.field_raw("a", &lossless_array(&[-0.0, 1.5]));
        o.field_raw("i", &usize_array(&[3, 1]));
        assert_eq!(o.finish(), r#"{"x":"NaN","a":[-0.0,1.5],"i":[3,1]}"#);
    }
}
