//! Property suite — gated behind the `proptest-suites` feature because
//! the tier-1 build must resolve offline with no external packages
//! (vendor proptest and re-add the dev-dependency to enable).
#![cfg(feature = "proptest-suites")]

//! Property-based tests for the linear-algebra substrate.
//!
//! Strategy: generate random well-conditioned matrices (or random factors
//! that guarantee SPD-ness) and check the algebraic identities that the
//! estimator relies on.

use proptest::prelude::*;
use roboads_linalg::{Matrix, Vector};

/// Strategy: an `n × n` matrix with entries in [-5, 5].
fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).expect("sized data"))
}

/// Strategy: an SPD matrix built as `B·Bᵀ + εI` from a random factor `B`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n).prop_map(move |b| &(&b * &b.transpose()) + &(Matrix::identity(n) * 0.5))
}

fn vector(n: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-5.0f64..5.0, n).prop_map(Vector::from)
}

proptest! {
    #[test]
    fn transpose_reverses_products(a in square_matrix(3), b in square_matrix(3)) {
        let lhs = (&a * &b).transpose();
        let rhs = &b.transpose() * &a.transpose();
        prop_assert!((&lhs - &rhs).max_abs() < 1e-9);
    }

    #[test]
    fn matmul_is_associative(a in square_matrix(3), b in square_matrix(3), c in square_matrix(3)) {
        let lhs = &(&a * &b) * &c;
        let rhs = &a * &(&b * &c);
        prop_assert!((&lhs - &rhs).max_abs() < 1e-8);
    }

    #[test]
    fn matmul_distributes_over_addition(a in square_matrix(3), b in square_matrix(3), c in square_matrix(3)) {
        let lhs = &a * &(&b + &c);
        let rhs = &(&a * &b) + &(&a * &c);
        prop_assert!((&lhs - &rhs).max_abs() < 1e-9);
    }

    #[test]
    fn lu_solve_residual_is_small(a in spd_matrix(4), b in vector(4)) {
        let x = a.lu().unwrap().solve(&b).unwrap();
        let r = &(&a * &x) - &b;
        prop_assert!(r.norm() < 1e-8 * (1.0 + b.norm()));
    }

    #[test]
    fn inverse_round_trips(a in spd_matrix(4)) {
        let inv = a.inverse().unwrap();
        let eye = &a * &inv;
        prop_assert!((&eye - &Matrix::identity(4)).max_abs() < 1e-7);
    }

    #[test]
    fn cholesky_reconstructs(a in spd_matrix(4)) {
        let l = a.cholesky().unwrap().l().clone();
        let rec = &l * &l.transpose();
        prop_assert!((&rec - &a).max_abs() < 1e-8 * (1.0 + a.max_abs()));
    }

    #[test]
    fn cholesky_and_lu_determinants_agree(a in spd_matrix(3)) {
        let lnd = a.cholesky().unwrap().ln_determinant();
        let det = a.determinant().unwrap();
        prop_assert!(det > 0.0);
        prop_assert!((lnd - det.ln()).abs() < 1e-7);
    }

    #[test]
    fn eigen_reconstructs_symmetric(a in square_matrix(4)) {
        let sym = (&a + &a.transpose()) * 0.5;
        let eig = sym.symmetric_eigen().unwrap();
        let rec = eig.spectral_map(|l| l);
        prop_assert!((&rec - &sym).max_abs() < 1e-8 * (1.0 + sym.max_abs()));
    }

    #[test]
    fn eigenvalue_sum_is_trace(a in square_matrix(4)) {
        let sym = (&a + &a.transpose()) * 0.5;
        let eig = sym.symmetric_eigen().unwrap();
        let sum: f64 = eig.eigenvalues().as_slice().iter().sum();
        prop_assert!((sum - sym.trace()).abs() < 1e-8 * (1.0 + sym.trace().abs()));
    }

    #[test]
    fn pseudo_inverse_satisfies_moore_penrose(a in square_matrix(3)) {
        // Make a possibly-singular symmetric matrix by zeroing a direction.
        let sym = (&a + &a.transpose()) * 0.5;
        let p = sym.pseudo_inverse().unwrap();
        let apa = &(&sym * &p) * &sym;
        prop_assert!((&apa - &sym).max_abs() < 1e-6 * (1.0 + sym.max_abs()));
        let pap = &(&p * &sym) * &p;
        prop_assert!((&pap - &p).max_abs() < 1e-6 * (1.0 + p.max_abs()));
    }

    #[test]
    fn rank_of_outer_product_is_at_most_factor_rank(v in vector(4)) {
        let m = v.to_column_matrix();
        let outer = &m * &m.transpose();
        let r = outer.rank().unwrap();
        prop_assert!(r <= 1);
        if v.norm() > 1e-6 {
            prop_assert_eq!(r, 1);
        }
    }

    #[test]
    fn congruence_preserves_psd(a in square_matrix(3), p in spd_matrix(3)) {
        let c = a.congruence(&p).unwrap();
        prop_assert!(c.is_positive_semi_definite(1e-7 * (1.0 + c.max_abs())).unwrap());
    }

    #[test]
    fn quadratic_form_nonnegative_for_psd(p in spd_matrix(3), v in vector(3)) {
        prop_assert!(v.quadratic_form(&p).unwrap() >= -1e-9);
    }

    #[test]
    fn vstack_hstack_round_trip(a in square_matrix(3)) {
        let top = a.block(0, 0, 1, 3);
        let bottom = a.block(1, 0, 2, 3);
        prop_assert_eq!(top.vstack(&bottom).unwrap(), a.clone());
        let left = a.block(0, 0, 3, 2);
        let right = a.block(0, 2, 3, 1);
        prop_assert_eq!(left.hstack(&right).unwrap(), a);
    }
}
