//! Cross-thread-count determinism of the multi-mode engine.
//!
//! The parallel NUISE fan-out must be *bitwise* identical to the
//! sequential path — every mode runs in its own pre-assigned workspace
//! and output slot, and results are consumed strictly in mode order, so
//! no floating-point operation is reordered (see `DESIGN.md`, threading
//! model). This test drives the full 7-hypothesis Khepera bank through
//! a Table II-style scenario (clean phase, then an IPS spoof, then a
//! LiDAR DoS on top) and compares entire [`EngineOutput`] sequences
//! with exact equality.

use roboads_core::{EngineOutput, ModeSet, MultiModeEngine, RoboAdsConfig};
use roboads_linalg::Vector;
use roboads_models::{presets, RobotSystem};

const STEPS: usize = 25;

fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
    (0..system.sensor_count())
        .map(|i| system.sensor(i).unwrap().measure(x))
        .collect()
}

fn run(threads: usize) -> (Vec<EngineOutput>, Vector, Vec<f64>) {
    let system = presets::khepera_system();
    let modes = ModeSet::complete(&system);
    assert_eq!(modes.len(), 7, "complete Khepera bank");
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut engine = MultiModeEngine::new(
        system.clone(),
        modes,
        x0.clone(),
        &RoboAdsConfig::paper_defaults().with_threads(threads),
    )
    .unwrap();
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut x_true = x0;
    let mut outputs = Vec::with_capacity(STEPS);
    for k in 0..STEPS {
        x_true = system.dynamics().step(&x_true, &u);
        let mut readings = clean_readings(&system, &x_true);
        if k >= 10 {
            readings[0][0] += 0.08; // IPS spoof
        }
        if k >= 18 {
            readings[2] = Vector::zeros(4); // LiDAR DoS on top
        }
        outputs.push(engine.step(&u, &readings).unwrap());
    }
    (
        outputs,
        engine.state_estimate().clone(),
        engine.probabilities().to_vec(),
    )
}

#[test]
fn parallel_fan_out_is_bitwise_identical_to_sequential() {
    let (seq_outputs, seq_state, seq_probs) = run(1);
    for threads in [2, 4] {
        let (par_outputs, par_state, par_probs) = run(threads);
        assert_eq!(seq_outputs.len(), par_outputs.len());
        for (k, (a, b)) in seq_outputs.iter().zip(&par_outputs).enumerate() {
            // Exact structural equality: every estimate, covariance,
            // likelihood and probability, bit for bit.
            assert_eq!(a, b, "threads={threads} diverged at step {k}");
        }
        assert_eq!(seq_state, par_state, "threads={threads} final state");
        assert_eq!(
            seq_probs, par_probs,
            "threads={threads} final probabilities"
        );
    }
}

#[test]
fn parallel_runs_are_reproducible_across_invocations() {
    // The same parallel configuration run twice must also agree with
    // itself — no dependence on scheduling or pool warm-up order.
    let (a, _, _) = run(4);
    let (b, _, _) = run(4);
    assert_eq!(a, b);
}
