use roboads_stats::StdRng;

use roboads_linalg::Vector;
use roboads_models::sensors::WheelEncoderOdometry;
use roboads_models::RobotSystem;
use roboads_stats::MultivariateNormal;

use crate::misbehavior::{Misbehavior, Target};
use crate::Result;

/// One sensing workflow (paper Figure 1): the sensor model, its noise
/// stream, and any misbehaviors injected into it.
///
/// Each call to [`SensingWorkflow::sense`] produces the planner-visible
/// reading `h(x) + ξ + d^s` and the ground-truth anomaly `d^s` for
/// evaluation.
#[derive(Debug)]
pub struct SensingWorkflow {
    sensor_index: usize,
    noise: MultivariateNormal,
    misbehaviors: Vec<Misbehavior>,
    encoder_geometry: Option<WheelEncoderOdometry>,
    last_output: Option<Vector>,
}

impl SensingWorkflow {
    /// Builds the workflow for sensor `sensor_index` of the system,
    /// attaching the misbehaviors that target it.
    ///
    /// # Errors
    ///
    /// Propagates noise-model construction failures.
    pub fn new(
        system: &RobotSystem,
        sensor_index: usize,
        misbehaviors: &[Misbehavior],
        encoder_geometry: Option<WheelEncoderOdometry>,
    ) -> Result<Self> {
        let sensor = system.sensor(sensor_index)?;
        let noise = MultivariateNormal::zero_mean(sensor.noise_covariance())?;
        let mine: Vec<Misbehavior> = misbehaviors
            .iter()
            .filter(|m| m.target() == Target::Sensor(sensor_index))
            .cloned()
            .collect();
        Ok(SensingWorkflow {
            sensor_index,
            noise,
            misbehaviors: mine,
            encoder_geometry,
            last_output: None,
        })
    }

    /// The sensor suite index this workflow serves.
    pub fn sensor_index(&self) -> usize {
        self.sensor_index
    }

    /// Produces the planner-visible reading at iteration `k` for true
    /// state `x_true`. Returns `(reading, injected_anomaly)` where the
    /// anomaly is the ground-truth `d^s` for evaluation.
    ///
    /// # Errors
    ///
    /// Propagates corruption-shape errors.
    pub fn sense(
        &mut self,
        system: &RobotSystem,
        k: usize,
        x_true: &Vector,
        rng: &mut StdRng,
    ) -> Result<(Vector, Vector)> {
        let sensor = system.sensor(self.sensor_index)?;
        let clean = &sensor.measure(x_true) + &self.noise.sample(rng);
        let mut reading = clean.clone();
        for m in &self.misbehaviors {
            reading = m.apply(
                k,
                &reading,
                self.last_output.as_ref(),
                x_true[2.min(x_true.len() - 1)],
                self.encoder_geometry.as_ref(),
            )?;
        }
        let anomaly = &reading - &clean;
        self.last_output = Some(reading.clone());
        Ok((reading, anomaly))
    }

    /// Whether any misbehavior targeting this workflow is active at `k`.
    pub fn under_attack(&self, k: usize) -> bool {
        self.misbehaviors.iter().any(|m| m.is_active(k))
    }
}

/// The actuation workflows: planned commands in, executed commands out,
/// with actuator misbehaviors injected in between.
#[derive(Debug)]
pub struct ActuationWorkflow {
    misbehaviors: Vec<Misbehavior>,
    last_output: Option<Vector>,
}

impl ActuationWorkflow {
    /// Builds the workflow, attaching the misbehaviors that target the
    /// actuators.
    pub fn new(misbehaviors: &[Misbehavior]) -> Self {
        ActuationWorkflow {
            misbehaviors: misbehaviors
                .iter()
                .filter(|m| m.target() == Target::Actuators)
                .cloned()
                .collect(),
            last_output: None,
        }
    }

    /// Executes the planned commands at iteration `k`; returns
    /// `(executed, injected_anomaly)` where the anomaly is the
    /// ground-truth `d^a`.
    ///
    /// # Errors
    ///
    /// Propagates corruption-shape errors.
    pub fn execute(&mut self, k: usize, planned: &Vector) -> Result<(Vector, Vector)> {
        let mut executed = planned.clone();
        for m in &self.misbehaviors {
            executed = m.apply(k, &executed, self.last_output.as_ref(), 0.0, None)?;
        }
        let anomaly = &executed - planned;
        self.last_output = Some(executed.clone());
        Ok((executed, anomaly))
    }

    /// Whether any actuator misbehavior is active at `k`.
    pub fn under_attack(&self, k: usize) -> bool {
        self.misbehaviors.iter().any(|m| m.is_active(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::misbehavior::Corruption;
    use roboads_models::presets;
    use roboads_stats::SeedableRng;

    #[test]
    fn clean_workflow_reading_tracks_measurement() {
        let system = presets::khepera_system();
        let mut wf = SensingWorkflow::new(&system, 0, &[], None).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let x = Vector::from_slice(&[1.0, 2.0, 0.3]);
        let (reading, anomaly) = wf.sense(&system, 0, &x, &mut rng).unwrap();
        assert_eq!(anomaly, Vector::zeros(3));
        // Reading is within a few standard deviations of the truth.
        assert!((reading[0] - 1.0).abs() < 0.05);
        assert!(!wf.under_attack(0));
        assert_eq!(wf.sensor_index(), 0);
    }

    #[test]
    fn attacked_workflow_reports_ground_truth_anomaly() {
        let system = presets::khepera_system();
        let attack = Misbehavior::new(
            "bias",
            Target::Sensor(0),
            Corruption::Bias(Vector::from_slice(&[0.07, 0.0, 0.0])),
            5,
            None,
        );
        let mut wf = SensingWorkflow::new(&system, 0, &[attack], None).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let x = Vector::from_slice(&[1.0, 2.0, 0.3]);
        let (_, d0) = wf.sense(&system, 0, &x, &mut rng).unwrap();
        assert_eq!(d0, Vector::zeros(3));
        let (_, d5) = wf.sense(&system, 5, &x, &mut rng).unwrap();
        assert!((d5[0] - 0.07).abs() < 1e-12);
        assert!(wf.under_attack(5));
    }

    #[test]
    fn misbehaviors_for_other_sensors_are_ignored() {
        let system = presets::khepera_system();
        let attack = Misbehavior::new(
            "other",
            Target::Sensor(1),
            Corruption::Bias(Vector::zeros(3)),
            0,
            None,
        );
        let wf = SensingWorkflow::new(&system, 0, &[attack], None).unwrap();
        assert!(!wf.under_attack(0));
    }

    #[test]
    fn actuation_workflow_injects_command_bias() {
        let attack = Misbehavior::new(
            "logic-bomb",
            Target::Actuators,
            Corruption::Bias(Vector::from_slice(&[-0.04, 0.04])),
            3,
            Some(6),
        );
        let mut wf = ActuationWorkflow::new(&[attack]);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let (e0, d0) = wf.execute(0, &u).unwrap();
        assert_eq!(e0, u);
        assert_eq!(d0, Vector::zeros(2));
        let (e3, d3) = wf.execute(3, &u).unwrap();
        assert!((e3[0] - 0.02).abs() < 1e-12);
        assert!((d3[1] - 0.04).abs() < 1e-12);
        let (_, d6) = wf.execute(6, &u).unwrap();
        assert_eq!(d6, Vector::zeros(2));
    }

    #[test]
    fn frozen_sensor_repeats_its_previous_output() {
        let system = presets::khepera_system();
        let attack = Misbehavior::new("freeze", Target::Sensor(0), Corruption::Freeze, 1, None);
        let mut wf = SensingWorkflow::new(&system, 0, &[attack], None).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let x0 = Vector::from_slice(&[1.0, 2.0, 0.3]);
        let (r0, _) = wf.sense(&system, 0, &x0, &mut rng).unwrap();
        // Robot moves on; frozen workflow keeps reporting the old value.
        let x1 = Vector::from_slice(&[1.5, 2.5, 0.4]);
        let (r1, d1) = wf.sense(&system, 1, &x1, &mut rng).unwrap();
        assert_eq!(r1, r0);
        assert!(d1.max_abs() > 0.1);
    }
}
