use roboads_linalg::{Matrix, Vector};

use crate::environment::Arena;
use crate::sensors::SensorModel;
use crate::{ModelError, Result};

/// LiDAR sensing workflow: a 240° scan reduced by a wall-extraction
/// utility process to `(d_west, d_south, d_east, θ)`.
///
/// The Khepera III carries a Hokuyo-class laser range finder; the paper's
/// sensing workflow processes the raw scan into "distances to three walls
/// and θ" (Figure 6, plot 3: components `d_L^{s,1..3}` and `θ`). In a
/// rectangular arena of width `W` the extracted planner-visible reading
/// is smooth in the state:
///
/// ```text
/// h_LiDAR(x) = (x, y, W − x, θ)
/// ```
///
/// (perpendicular distance to the west, south and east walls, plus the
/// scan-matching heading). The raw 240° scan itself is available through
/// [`WallLidar::simulate_scan`] so the simulation substrate can attack
/// the workflow *before* wall extraction (scenario #6's DoS zeroes the
/// raw scan; scenario #7's blocking corrupts individual beams).
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_models::sensors::WallLidar;
/// use roboads_models::{Arena, SensorModel};
///
/// # fn main() -> Result<(), roboads_models::ModelError> {
/// let lidar = WallLidar::new(Arena::new(4.0, 4.0)?, 0.015, 0.02)?;
/// let z = lidar.measure(&Vector::from_slice(&[1.0, 2.5, 0.3]));
/// assert_eq!(z.as_slice(), &[1.0, 2.5, 3.0, 0.3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WallLidar {
    arena: Arena,
    range_std: f64,
    heading_std: f64,
}

/// Number of beams in the simulated raw scan (240° field of view).
pub const SCAN_BEAMS: usize = 241;

/// Field of view of the simulated scan, radians (±120°).
pub const SCAN_FOV: f64 = 240.0 * std::f64::consts::PI / 180.0;

impl WallLidar {
    /// Creates a wall-extraction LiDAR for the given arena with range (m)
    /// and heading (rad) noise standard deviations.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive noise.
    pub fn new(arena: Arena, range_std: f64, heading_std: f64) -> Result<Self> {
        for (name, v) in [("range_std", range_std), ("heading_std", heading_std)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ModelError::InvalidParameter {
                    name,
                    value: format!("{v}"),
                });
            }
        }
        Ok(WallLidar {
            arena,
            range_std,
            heading_std,
        })
    }

    /// The arena the sensor operates in.
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// Range noise standard deviation (m).
    pub fn range_std(&self) -> f64 {
        self.range_std
    }

    /// A copy with scaled noise (§V-E quality sweep).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive factors.
    pub fn with_quality_factor(&self, factor: f64) -> Result<Self> {
        WallLidar::new(
            self.arena.clone(),
            self.range_std * factor,
            self.heading_std * factor,
        )
    }

    /// Simulates the raw 240° scan (noiseless): [`SCAN_BEAMS`] ranges,
    /// beam `i` at robot-frame angle `−120° + i·1°`. Returns `None` when
    /// the pose is outside the arena (no return signal).
    pub fn simulate_scan(&self, x: &Vector) -> Option<Vec<f64>> {
        let theta = x[2];
        let mut scan = Vec::with_capacity(SCAN_BEAMS);
        for i in 0..SCAN_BEAMS {
            let beam = -SCAN_FOV / 2.0 + SCAN_FOV * i as f64 / (SCAN_BEAMS - 1) as f64;
            let hit = self.arena.raycast(x[0], x[1], theta + beam)?;
            scan.push(hit.distance);
        }
        Some(scan)
    }
}

impl SensorModel for WallLidar {
    fn dim(&self) -> usize {
        4
    }

    fn name(&self) -> &str {
        "lidar"
    }

    fn measure(&self, x: &Vector) -> Vector {
        assert!(x.len() >= 3, "lidar expects a pose state");
        Vector::from_slice(&[x[0], x[1], self.arena.width() - x[0], x[2]])
    }

    fn jacobian(&self, _x: &Vector) -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0],
            &[-1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0],
        ])
        .expect("static shape")
    }

    fn noise_covariance(&self) -> Matrix {
        let r2 = self.range_std * self.range_std;
        Matrix::from_diagonal(&[r2, r2, r2, self.heading_std * self.heading_std])
    }

    fn angular_components(&self) -> &[usize] {
        &[3]
    }

    fn measure_into(&self, x: &Vector, out: &mut [f64]) {
        assert!(x.len() >= 3, "lidar expects a pose state");
        out[0] = x[0];
        out[1] = x[1];
        out[2] = self.arena.width() - x[0];
        out[3] = x[2];
    }

    fn jacobian_into(&self, _x: &Vector, out: &mut Matrix, row_offset: usize) {
        const ROWS: [[f64; 3]; 4] = [
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [-1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        for (i, row) in ROWS.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                out[(row_offset + i, j)] = *v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::Aabb;
    use crate::sensors::test_support::{
        assert_noise_covariance_valid, assert_sensor_into_variants_match,
        assert_sensor_jacobian_matches,
    };

    #[test]
    fn into_variants_match() {
        let lidar = WallLidar::new(Arena::new(4.0, 4.0).unwrap(), 0.015, 0.02).unwrap();
        assert_sensor_into_variants_match(&lidar, &Vector::from_slice(&[0.5, 0.6, 0.7]));
    }

    fn lidar() -> WallLidar {
        WallLidar::new(Arena::new(4.0, 4.0).unwrap(), 0.015, 0.02).unwrap()
    }

    #[test]
    fn extracted_distances_are_wall_distances() {
        let l = lidar();
        let z = l.measure(&Vector::from_slice(&[1.5, 0.5, -0.3]));
        assert_eq!(z.as_slice(), &[1.5, 0.5, 2.5, -0.3]);
    }

    #[test]
    fn jacobian_and_noise() {
        let l = lidar();
        assert_sensor_jacobian_matches(&l, &Vector::from_slice(&[2.0, 2.0, 0.7]), 1e-6);
        assert_noise_covariance_valid(&l);
        assert_eq!(l.angular_components(), &[3]);
    }

    #[test]
    fn raw_scan_geometry() {
        let l = lidar();
        // Robot at center facing east: center beam hits east wall (2 m).
        let scan = l
            .simulate_scan(&Vector::from_slice(&[2.0, 2.0, 0.0]))
            .unwrap();
        assert_eq!(scan.len(), SCAN_BEAMS);
        let center = scan[SCAN_BEAMS / 2];
        assert!((center - 2.0).abs() < 1e-9);
        // All ranges positive and bounded by the arena diagonal.
        let diag = (32.0f64).sqrt();
        assert!(scan.iter().all(|&d| d > 0.0 && d <= diag + 1e-9));
    }

    #[test]
    fn scan_sees_obstacles() {
        let arena = Arena::new(4.0, 4.0)
            .unwrap()
            .with_obstacle(Aabb::new(2.5, 1.8, 3.0, 2.2).unwrap())
            .unwrap();
        let l = WallLidar::new(arena, 0.015, 0.02).unwrap();
        let scan = l
            .simulate_scan(&Vector::from_slice(&[1.0, 2.0, 0.0]))
            .unwrap();
        let center = scan[SCAN_BEAMS / 2];
        assert!((center - 1.5).abs() < 1e-9, "beam should stop at obstacle");
    }

    #[test]
    fn scan_outside_arena_is_none() {
        let l = lidar();
        assert!(l
            .simulate_scan(&Vector::from_slice(&[-1.0, 0.0, 0.0]))
            .is_none());
    }

    #[test]
    fn quality_factor_and_validation() {
        let l = lidar();
        let worse = l.with_quality_factor(3.0).unwrap();
        assert!(worse.range_std() > l.range_std());
        assert!(WallLidar::new(Arena::new(4.0, 4.0).unwrap(), 0.0, 0.02).is_err());
    }
}
