use crate::{Result, StatsError};

/// One-sided CUSUM change detector on a statistic stream.
///
/// The paper confirms alarms with `c`-of-`w` sliding windows (§IV-D); a
/// cumulative-sum detector is the classical alternative, accumulating
/// evidence `S_k = max(0, S_{k−1} + (x_k − reference))` and alarming when
/// `S_k > threshold`. Compared to windows it reacts faster to small
/// persistent shifts (evidence accumulates without expiring) at the cost
/// of a tunable drift parameter. The `ablations` bench harness compares
/// both on the recorded χ² statistic streams.
///
/// # Example
///
/// ```
/// use roboads_stats::Cusum;
///
/// // In control around 3 (χ²(3) mean); alarm on persistent elevation.
/// let mut cusum = Cusum::new(5.0, 20.0).unwrap();
/// for _ in 0..100 {
///     assert!(!cusum.push(3.0)); // below the reference: no accumulation
/// }
/// let mut fired = false;
/// for _ in 0..10 {
///     fired = cusum.push(9.0); // persistent +4 over the reference
/// }
/// assert!(fired);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cusum {
    reference: f64,
    threshold: f64,
    statistic: f64,
}

impl Cusum {
    /// Creates a detector with the given reference (drift) level and
    /// alarm threshold.
    ///
    /// The reference should sit between the in-control mean of the
    /// monitored statistic and the smallest shift worth detecting; the
    /// threshold trades detection delay against false-alarm rate.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for non-finite values or
    /// a non-positive threshold.
    pub fn new(reference: f64, threshold: f64) -> Result<Self> {
        if !reference.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "reference",
                value: format!("{reference}"),
            });
        }
        if !(threshold.is_finite() && threshold > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "threshold",
                value: format!("{threshold}"),
            });
        }
        Ok(Cusum {
            reference,
            threshold,
            statistic: 0.0,
        })
    }

    /// Folds one observation; returns whether the accumulated evidence
    /// exceeds the threshold. Non-finite observations saturate the
    /// statistic (a broken stream must alarm, not pass).
    pub fn push(&mut self, value: f64) -> bool {
        if !value.is_finite() {
            self.statistic = self.threshold + 1.0;
            return true;
        }
        self.statistic = (self.statistic + value - self.reference).max(0.0);
        self.statistic > self.threshold
    }

    /// Current accumulated evidence.
    pub fn statistic(&self) -> f64 {
        self.statistic
    }

    /// The alarm threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Clears the accumulated evidence (after handling an alarm).
    pub fn reset(&mut self) {
        self.statistic = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{SeedableRng, StdRng};
    use crate::ChiSquared;
    use crate::GaussianSampler;

    #[test]
    fn in_control_stream_never_accumulates() {
        let mut c = Cusum::new(5.0, 10.0).unwrap();
        for i in 0..1000 {
            assert!(!c.push(3.0 + (i % 3) as f64 * 0.5));
        }
        assert_eq!(c.statistic(), 0.0);
    }

    #[test]
    fn persistent_shift_fires_with_accumulating_evidence() {
        let mut c = Cusum::new(5.0, 20.0).unwrap();
        let mut fired_at = None;
        for k in 0..50 {
            if c.push(9.0) && fired_at.is_none() {
                fired_at = Some(k);
            }
        }
        // 4 per step over the reference → fires after ~5 observations.
        assert_eq!(fired_at, Some(5));
    }

    #[test]
    fn single_spike_is_absorbed() {
        let mut c = Cusum::new(5.0, 20.0).unwrap();
        assert!(!c.push(15.0)); // +10 of evidence, below threshold
        for _ in 0..20 {
            assert!(!c.push(3.0)); // decays back to zero
        }
        assert_eq!(c.statistic(), 0.0);
    }

    #[test]
    fn smaller_shift_takes_longer_than_larger_shift() {
        let delay = |shift: f64| {
            let mut c = Cusum::new(5.0, 20.0).unwrap();
            (0..1000).find(|_| c.push(5.0 + shift)).unwrap()
        };
        assert!(delay(1.0) > delay(4.0));
    }

    #[test]
    fn calibrated_on_chi_square_noise_stays_quiet() {
        // Feed genuine χ²(3) noise (mean 3): reference 6 ≈ mean + 3σ/2.
        let chi = ChiSquared::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = GaussianSampler::new();
        let mut c = Cusum::new(6.0, 25.0).unwrap();
        let mut alarms = 0;
        for _ in 0..5000 {
            // χ²(3) = sum of three squared standard normals.
            let x = (0..3).map(|_| g.sample(&mut rng).powi(2)).sum::<f64>();
            let _ = chi.cdf(x).unwrap();
            if c.push(x) {
                alarms += 1;
                c.reset();
            }
        }
        assert!(alarms <= 2, "false alarms: {alarms}");
    }

    #[test]
    fn non_finite_observation_alarms() {
        let mut c = Cusum::new(5.0, 20.0).unwrap();
        assert!(c.push(f64::NAN));
        c.reset();
        assert_eq!(c.statistic(), 0.0);
    }

    /// Reset-after-alarm semantics: once the alarm is handled and the
    /// detector reset, prior evidence is gone — the same shift must
    /// re-accumulate from zero and fire with the same delay as a fresh
    /// detector, not instantly.
    #[test]
    fn reset_after_alarm_restarts_evidence_from_zero() {
        let first_fire = |c: &mut Cusum| (0..1000).find(|_| c.push(9.0)).unwrap();
        let mut c = Cusum::new(5.0, 20.0).unwrap();
        let cold = first_fire(&mut c);
        assert!(c.statistic() > c.threshold());
        c.reset();
        assert_eq!(c.statistic(), 0.0);
        let warm = first_fire(&mut c);
        assert_eq!(cold, warm, "reset must erase all accumulated evidence");
    }

    /// Saturation-then-reset: a non-finite observation pins the
    /// statistic just above the threshold, every further observation
    /// keeps alarming from that saturated state, and a reset fully
    /// recovers the detector — in-control data stays quiet afterwards.
    #[test]
    fn saturation_then_reset_recovers_cleanly() {
        let mut c = Cusum::new(5.0, 20.0).unwrap();
        assert!(c.push(f64::INFINITY));
        assert_eq!(c.statistic(), c.threshold() + 1.0);
        // The saturated state keeps the alarm latched even for
        // in-control observations (evidence 21 − 2 = 19 < threshold
        // would clear it only after decay; a fresh non-finite re-pins).
        assert!(c.push(f64::NEG_INFINITY));
        assert!(c.push(f64::NAN));
        assert_eq!(c.statistic(), c.threshold() + 1.0);
        c.reset();
        assert_eq!(c.statistic(), 0.0);
        for _ in 0..100 {
            assert!(!c.push(3.0), "reset detector must be quiet in-control");
        }
    }

    #[test]
    fn validation_and_accessors() {
        assert!(Cusum::new(f64::NAN, 10.0).is_err());
        assert!(Cusum::new(5.0, 0.0).is_err());
        let c = Cusum::new(5.0, 10.0).unwrap();
        assert_eq!(c.threshold(), 10.0);
    }
}
