use roboads_linalg::Vector;
use roboads_models::sensors::WheelEncoderOdometry;

use crate::{Result, SimError};

/// Where a misbehavior acts: one sensing workflow or the actuation
/// workflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Target {
    /// A sensing workflow, by sensor suite index.
    Sensor(usize),
    /// The actuation workflows (control command vector).
    Actuators,
}

/// The data corruption a misbehavior applies to the workflow value.
///
/// Misbehaviors are modeled exactly as in §III-B of the paper: additive
/// corruptions `d^s` / `d^a` on the planner-visible reading or the
/// executed command — but *generated* at the workflow step where each
/// Table-II scenario physically acts (tick counters, raw commands, …).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Corruption {
    /// Adds a constant vector (logic bombs, spoofing shifts).
    Bias(Vector),
    /// Multiplies each component (physical jamming: a stuck wheel is a
    /// zero scale on its command channel).
    Scale(Vec<f64>),
    /// Replaces the value outright (DoS: an unpowered LiDAR reports 0 m
    /// in each direction).
    ReplaceWith(Vector),
    /// Repeats the last clean value (frozen/jammed sensor output).
    Freeze,
    /// Wheel-encoder tick-counter bias, applied inside the odometry
    /// utility process (scenario #5's "increment 100 steps on left
    /// wheel encoder"). Converted to pose space using the encoder
    /// geometry and the current heading.
    EncoderTickBias {
        /// Per-reading tick bias on the left wheel.
        left: f64,
        /// Per-reading tick bias on the right wheel.
        right: f64,
    },
}

/// One attack or failure: a corruption applied to a target during an
/// iteration window.
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_sim::{Corruption, Misbehavior, Target};
///
/// // Scenario #4: IPS spoofing, −0.1 m on X, from iteration 40 onward.
/// let m = Misbehavior::new(
///     "ips-spoofing",
///     Target::Sensor(0),
///     Corruption::Bias(Vector::from_slice(&[-0.1, 0.0, 0.0])),
///     40,
///     None,
/// );
/// assert!(!m.is_active(39));
/// assert!(m.is_active(40));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Misbehavior {
    name: String,
    target: Target,
    corruption: Corruption,
    /// First active iteration (inclusive).
    start: usize,
    /// First inactive iteration again (exclusive); `None` = until the end.
    end: Option<usize>,
    /// Transient faults (bumps, uneven ground) corrupt data like attacks
    /// do but are *not* misbehaviors the detector must report — the
    /// sliding window exists to tolerate them (§IV-D). Ground truth
    /// excludes them.
    transient: bool,
}

impl Misbehavior {
    /// Creates a misbehavior active on iterations `start..end` (`end =
    /// None` means until the end of the run).
    pub fn new(
        name: impl Into<String>,
        target: Target,
        corruption: Corruption,
        start: usize,
        end: Option<usize>,
    ) -> Self {
        Misbehavior {
            name: name.into(),
            target,
            corruption,
            start,
            end,
            transient: false,
        }
    }

    /// Creates a one-iteration transient fault at iteration `at` — a
    /// bump or glitch the detector should tolerate rather than report.
    pub fn transient_glitch(
        name: impl Into<String>,
        target: Target,
        corruption: Corruption,
        at: usize,
    ) -> Self {
        Misbehavior {
            name: name.into(),
            target,
            corruption,
            start: at,
            end: Some(at + 1),
            transient: true,
        }
    }

    /// Whether this is a transient fault rather than a reportable
    /// misbehavior.
    pub fn is_transient(&self) -> bool {
        self.transient
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attacked workflow.
    pub fn target(&self) -> Target {
        self.target
    }

    /// The corruption applied while active.
    pub fn corruption(&self) -> &Corruption {
        &self.corruption
    }

    /// First active iteration.
    pub fn start(&self) -> usize {
        self.start
    }

    /// End of the active window (exclusive), if bounded.
    pub fn end(&self) -> Option<usize> {
        self.end
    }

    /// Whether the misbehavior is active at iteration `k`.
    pub fn is_active(&self, k: usize) -> bool {
        k >= self.start && self.end.is_none_or(|e| k < e)
    }

    /// Applies the corruption to a workflow value at iteration `k`.
    ///
    /// * `clean` — the uncorrupted value (noisy reading or planned
    ///   command),
    /// * `last_output` — the workflow's previous emitted value (for
    ///   [`Corruption::Freeze`]),
    /// * `heading` — the true heading (for tick-space conversions),
    /// * `encoder` — the encoder geometry when the target is an encoder
    ///   workflow.
    ///
    /// Returns the corrupted value; inactive misbehaviors return the
    /// clean value unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when the corruption shape
    /// does not match the value, or a tick-space corruption targets a
    /// workflow without encoder geometry.
    pub fn apply(
        &self,
        k: usize,
        clean: &Vector,
        last_output: Option<&Vector>,
        heading: f64,
        encoder: Option<&WheelEncoderOdometry>,
    ) -> Result<Vector> {
        if !self.is_active(k) {
            return Ok(clean.clone());
        }
        match &self.corruption {
            Corruption::Bias(b) => {
                check_len(self.name(), b.len(), clean.len())?;
                Ok(clean + b)
            }
            Corruption::Scale(s) => {
                check_len(self.name(), s.len(), clean.len())?;
                Ok(Vector::from_fn(clean.len(), |i| clean[i] * s[i]))
            }
            Corruption::ReplaceWith(v) => {
                check_len(self.name(), v.len(), clean.len())?;
                Ok(v.clone())
            }
            Corruption::Freeze => Ok(last_output.cloned().unwrap_or_else(|| clean.clone())),
            Corruption::EncoderTickBias { left, right } => {
                let enc = encoder.ok_or(SimError::InvalidParameter {
                    name: "encoder_tick_bias",
                    value: "target workflow has no encoder geometry".into(),
                })?;
                let bias = enc.tick_bias_to_pose_bias(*left, *right, heading);
                check_len(self.name(), bias.len(), clean.len())?;
                Ok(clean + &bias)
            }
        }
    }
}

fn check_len(name: &str, got: usize, expected: usize) -> Result<()> {
    if got != expected {
        return Err(SimError::InvalidParameter {
            name: "corruption",
            value: format!("{name}: corruption dimension {got} vs value dimension {expected}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_window() {
        let m = Misbehavior::new(
            "x",
            Target::Actuators,
            Corruption::Bias(Vector::zeros(2)),
            10,
            Some(20),
        );
        assert!(!m.is_active(9));
        assert!(m.is_active(10));
        assert!(m.is_active(19));
        assert!(!m.is_active(20));
        assert_eq!(m.start(), 10);
        assert_eq!(m.end(), Some(20));
    }

    #[test]
    fn bias_applies_only_while_active() {
        let m = Misbehavior::new(
            "bias",
            Target::Sensor(0),
            Corruption::Bias(Vector::from_slice(&[0.1, 0.0])),
            5,
            None,
        );
        let clean = Vector::from_slice(&[1.0, 2.0]);
        assert_eq!(m.apply(0, &clean, None, 0.0, None).unwrap(), clean);
        let corrupted = m.apply(5, &clean, None, 0.0, None).unwrap();
        assert_eq!(corrupted.as_slice(), &[1.1, 2.0]);
    }

    #[test]
    fn scale_zeroes_a_jammed_wheel() {
        let m = Misbehavior::new(
            "jam",
            Target::Actuators,
            Corruption::Scale(vec![0.0, 1.0]),
            0,
            None,
        );
        let u = Vector::from_slice(&[0.06, 0.05]);
        let jammed = m.apply(0, &u, None, 0.0, None).unwrap();
        assert_eq!(jammed.as_slice(), &[0.0, 0.05]);
    }

    #[test]
    fn replace_models_dos() {
        let m = Misbehavior::new(
            "dos",
            Target::Sensor(2),
            Corruption::ReplaceWith(Vector::zeros(4)),
            0,
            None,
        );
        let clean = Vector::from_slice(&[1.0, 2.0, 3.0, 0.4]);
        assert_eq!(
            m.apply(0, &clean, None, 0.0, None).unwrap(),
            Vector::zeros(4)
        );
    }

    #[test]
    fn freeze_repeats_last_output() {
        let m = Misbehavior::new("freeze", Target::Sensor(0), Corruption::Freeze, 0, None);
        let clean = Vector::from_slice(&[5.0]);
        let last = Vector::from_slice(&[3.0]);
        assert_eq!(m.apply(0, &clean, Some(&last), 0.0, None).unwrap(), last);
        // Without history the first frozen output is the clean value.
        assert_eq!(m.apply(0, &clean, None, 0.0, None).unwrap(), clean);
    }

    #[test]
    fn encoder_tick_bias_converts_to_pose_space() {
        let enc = WheelEncoderOdometry::khepera().unwrap();
        let m = Misbehavior::new(
            "ticks",
            Target::Sensor(1),
            Corruption::EncoderTickBias {
                left: 100.0,
                right: 0.0,
            },
            0,
            None,
        );
        let clean = Vector::from_slice(&[1.0, 1.0, 0.0]);
        let corrupted = m.apply(0, &clean, None, 0.0, Some(&enc)).unwrap();
        assert!(corrupted[0] > 1.0); // forward shift
        assert!(corrupted[2] < 0.0); // clockwise heading shift
                                     // Without geometry it must error, not silently pass.
        assert!(m.apply(0, &clean, None, 0.0, None).is_err());
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let m = Misbehavior::new(
            "bad",
            Target::Sensor(0),
            Corruption::Bias(Vector::zeros(3)),
            0,
            None,
        );
        assert!(m.apply(0, &Vector::zeros(2), None, 0.0, None).is_err());
    }
}
