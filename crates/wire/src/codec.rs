//! Frame codec: typed frames ⇄ length-prefixed bytes, plus the
//! incremental [`FrameDecoder`] that tolerates arbitrary read
//! fragmentation.

use roboads_core::StampedFrame;
use roboads_obs::wire::{self, ByteError, ByteReader};

/// Protocol version carried by [`WireFrame::Hello`]; the service side
/// rejects mismatches before accepting any data frame.
pub const WIRE_VERSION: u32 = 1;

/// Maximum payload (kind byte + body) of one frame. Generous for any
/// real sensor suite (a reading is tens of floats) while bounding what
/// a corrupt or hostile length prefix can demand.
pub const MAX_FRAME: usize = 1 << 20;

/// Frame kind tags (the first payload byte).
const KIND_HELLO: u8 = 0;
const KIND_READING: u8 = 1;
const KIND_INPUT: u8 = 2;
const KIND_TICK_END: u8 = 3;
const KIND_BYE: u8 = 4;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// Stream opener: the producer's protocol version.
    Hello {
        /// Must equal [`WIRE_VERSION`].
        version: u32,
    },
    /// One robot's sensor reading for one tick (maps to
    /// [`roboads_core::ShardedFleet::offer`]).
    Reading {
        /// Global robot id.
        robot: u64,
        /// Sensing workflow index.
        sensor: u32,
        /// Tick stamp.
        tick: u64,
        /// Reading values (bit-exact).
        values: Vec<f64>,
    },
    /// One robot's planned actuator command for one tick (maps to
    /// [`roboads_core::ShardedFleet::offer_input`]).
    Input {
        /// Global robot id.
        robot: u64,
        /// Tick stamp.
        tick: u64,
        /// Command values (bit-exact).
        values: Vec<f64>,
    },
    /// Tick boundary: the service steps every shard.
    TickEnd {
        /// The tick that just closed.
        tick: u64,
    },
    /// Orderly end of stream.
    Bye,
}

impl WireFrame {
    /// Converts a data frame into the shard journal's unit; `None` for
    /// control frames (`Hello`/`TickEnd`/`Bye`).
    pub fn to_stamped(&self) -> Option<StampedFrame> {
        match self {
            WireFrame::Reading {
                robot,
                sensor,
                tick,
                values,
            } => Some(StampedFrame {
                robot: *robot,
                sensor: Some(*sensor),
                tick: *tick,
                values: values.clone(),
            }),
            WireFrame::Input {
                robot,
                tick,
                values,
            } => Some(StampedFrame {
                robot: *robot,
                sensor: None,
                tick: *tick,
                values: values.clone(),
            }),
            _ => None,
        }
    }

    /// Builds the data frame carrying `frame` over the wire.
    pub fn from_stamped(frame: &StampedFrame) -> WireFrame {
        match frame.sensor {
            Some(sensor) => WireFrame::Reading {
                robot: frame.robot,
                sensor,
                tick: frame.tick,
                values: frame.values.clone(),
            },
            None => WireFrame::Input {
                robot: frame.robot,
                tick: frame.tick,
                values: frame.values.clone(),
            },
        }
    }
}

/// Typed decode failure. Every malformed input maps here — the codec
/// never panics and never allocates more than the bytes actually
/// received.
#[derive(Debug)]
pub enum WireError {
    /// A length prefix demanded more than [`MAX_FRAME`] payload bytes.
    Oversized {
        /// The demanded payload length.
        len: usize,
    },
    /// An unknown frame-kind byte.
    UnknownKind {
        /// The offending kind tag.
        kind: u8,
    },
    /// A payload that does not parse as its kind's body (truncated
    /// body, trailing bytes, malformed field).
    Corrupt {
        /// Byte offset within the payload.
        at: usize,
        /// What failed.
        reason: &'static str,
    },
    /// The peer opened with an unsupported protocol version.
    Version {
        /// The version the peer sent.
        found: u32,
    },
    /// Underlying socket failure.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { len } => {
                write!(f, "frame payload of {len} bytes exceeds {MAX_FRAME}")
            }
            WireError::UnknownKind { kind } => write!(f, "unknown frame kind {kind}"),
            WireError::Corrupt { at, reason } => {
                write!(f, "corrupt frame payload at byte {at}: {reason}")
            }
            WireError::Version { found } => {
                write!(
                    f,
                    "unsupported wire version {found} (expected {WIRE_VERSION})"
                )
            }
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ByteError> for WireError {
    fn from(e: ByteError) -> Self {
        WireError::Corrupt {
            at: e.at,
            reason: e.reason,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Appends `frame` as one length-prefixed wire frame.
pub fn encode_frame(frame: &WireFrame, out: &mut Vec<u8>) {
    let prefix_at = out.len();
    wire::put_u32(out, 0); // length back-patched below
    match frame {
        WireFrame::Hello { version } => {
            wire::put_u8(out, KIND_HELLO);
            wire::put_u32(out, *version);
        }
        WireFrame::Reading {
            robot,
            sensor,
            tick,
            values,
        } => {
            wire::put_u8(out, KIND_READING);
            wire::put_u64(out, *robot);
            wire::put_u32(out, *sensor);
            wire::put_u64(out, *tick);
            wire::put_f64_slice(out, values);
        }
        WireFrame::Input {
            robot,
            tick,
            values,
        } => {
            wire::put_u8(out, KIND_INPUT);
            wire::put_u64(out, *robot);
            wire::put_u64(out, *tick);
            wire::put_f64_slice(out, values);
        }
        WireFrame::TickEnd { tick } => {
            wire::put_u8(out, KIND_TICK_END);
            wire::put_u64(out, *tick);
        }
        WireFrame::Bye => {
            wire::put_u8(out, KIND_BYE);
        }
    }
    let payload = (out.len() - prefix_at - 4) as u32;
    out[prefix_at..prefix_at + 4].copy_from_slice(&payload.to_le_bytes());
}

/// Decodes one complete payload (the bytes *after* the length prefix).
///
/// # Errors
///
/// [`WireError::UnknownKind`] or [`WireError::Corrupt`] (truncated
/// body, trailing bytes, malformed field).
pub fn decode_frame(payload: &[u8]) -> Result<WireFrame, WireError> {
    let mut rd = ByteReader::new(payload);
    let kind = rd.u8()?;
    let frame = match kind {
        KIND_HELLO => WireFrame::Hello { version: rd.u32()? },
        KIND_READING => WireFrame::Reading {
            robot: rd.u64()?,
            sensor: rd.u32()?,
            tick: rd.u64()?,
            values: rd.f64_vec()?,
        },
        KIND_INPUT => WireFrame::Input {
            robot: rd.u64()?,
            tick: rd.u64()?,
            values: rd.f64_vec()?,
        },
        KIND_TICK_END => WireFrame::TickEnd { tick: rd.u64()? },
        KIND_BYE => WireFrame::Bye,
        kind => return Err(WireError::UnknownKind { kind }),
    };
    if !rd.is_empty() {
        return Err(WireError::Corrupt {
            at: rd.position(),
            reason: "trailing bytes after frame body",
        });
    }
    Ok(frame)
}

/// Incremental decoder over an arbitrarily-fragmented byte stream.
///
/// Feed whatever the socket yields — single bytes, half frames, many
/// frames at once — and drain complete frames with
/// [`FrameDecoder::next_frame`]. Partial input is simply *pending*
/// (`Ok(None)`), never an error; errors are reserved for genuinely
/// malformed streams and are fatal to the decoder.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically so the
    /// buffer never grows past one frame plus one read's worth of
    /// bytes.
    pos: usize,
}

impl FrameDecoder {
    /// A fresh decoder with no buffered bytes.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Buffers more stream bytes. Rejects input early when a pending
    /// length prefix already demands more than [`MAX_FRAME`] — the
    /// buffer holds only received bytes, so a hostile prefix can never
    /// reserve memory it hasn't paid for.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
        if let Some(len) = self.pending_len() {
            if len > MAX_FRAME {
                return Err(WireError::Oversized { len });
            }
        }
        Ok(())
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn pending_len(&self) -> Option<usize> {
        let rest = &self.buf[self.pos..];
        if rest.len() < 4 {
            return None;
        }
        let mut prefix = [0u8; 4];
        prefix.copy_from_slice(&rest[..4]);
        Some(u32::from_le_bytes(prefix) as usize)
    }

    /// The next complete frame, or `Ok(None)` while one is still
    /// partial.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] on a hostile length prefix, else the
    /// payload's [`decode_frame`] error. Decode errors are fatal — a
    /// byte stream has no frame boundaries to resynchronize on.
    pub fn next_frame(&mut self) -> Result<Option<WireFrame>, WireError> {
        let Some(len) = self.pending_len() else {
            return Ok(None);
        };
        if len > MAX_FRAME {
            return Err(WireError::Oversized { len });
        }
        let rest = &self.buf[self.pos..];
        if rest.len() < 4 + len {
            return Ok(None);
        }
        let frame = decode_frame(&rest[4..4 + len])?;
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<WireFrame> {
        vec![
            WireFrame::Hello {
                version: WIRE_VERSION,
            },
            WireFrame::Input {
                robot: 7,
                tick: 3,
                values: vec![0.05, -0.125],
            },
            WireFrame::Reading {
                robot: 7,
                sensor: 2,
                tick: 3,
                values: vec![1.5, f64::NAN, -0.0, f64::MIN_POSITIVE],
            },
            WireFrame::TickEnd { tick: 3 },
            WireFrame::Bye,
        ]
    }

    /// Bit-level frame equality: `PartialEq` on `f64` treats NaN as
    /// unequal, but the wire contract is bitwise.
    fn frames_bitwise_eq(a: &WireFrame, b: &WireFrame) -> bool {
        fn bits(values: &[f64]) -> Vec<u64> {
            values.iter().map(|v| v.to_bits()).collect()
        }
        match (a, b) {
            (
                WireFrame::Reading {
                    robot: r1,
                    sensor: s1,
                    tick: t1,
                    values: v1,
                },
                WireFrame::Reading {
                    robot: r2,
                    sensor: s2,
                    tick: t2,
                    values: v2,
                },
            ) => r1 == r2 && s1 == s2 && t1 == t2 && bits(v1) == bits(v2),
            (
                WireFrame::Input {
                    robot: r1,
                    tick: t1,
                    values: v1,
                },
                WireFrame::Input {
                    robot: r2,
                    tick: t2,
                    values: v2,
                },
            ) => r1 == r2 && t1 == t2 && bits(v1) == bits(v2),
            _ => a == b,
        }
    }

    #[test]
    fn frames_roundtrip_bitwise() {
        for frame in sample_frames() {
            let mut bytes = Vec::new();
            encode_frame(&frame, &mut bytes);
            let decoded = decode_frame(&bytes[4..]).unwrap();
            assert!(
                frames_bitwise_eq(&frame, &decoded),
                "{frame:?} != {decoded:?}"
            );
        }
    }

    #[test]
    fn decoder_reassembles_byte_by_byte() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for frame in &frames {
            encode_frame(frame, &mut stream);
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for byte in stream {
            decoder.feed(&[byte]).unwrap();
            while let Some(frame) = decoder.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded.len(), frames.len());
        for (a, b) in frames.iter().zip(&decoded) {
            assert!(frames_bitwise_eq(a, b));
        }
        assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocation() {
        let mut decoder = FrameDecoder::new();
        let prefix = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(matches!(
            decoder.feed(&prefix),
            Err(WireError::Oversized { .. })
        ));
        // Only the four received bytes are buffered.
        assert_eq!(decoder.pending(), 4);
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_are_corrupt() {
        assert!(matches!(
            decode_frame(&[200]),
            Err(WireError::UnknownKind { kind: 200 })
        ));
        let mut bytes = Vec::new();
        encode_frame(&WireFrame::Bye, &mut bytes);
        let mut payload = bytes[4..].to_vec();
        payload.push(0);
        assert!(matches!(
            decode_frame(&payload),
            Err(WireError::Corrupt { .. })
        ));
        assert!(matches!(decode_frame(&[]), Err(WireError::Corrupt { .. })));
    }

    #[test]
    fn stamped_conversion_roundtrips() {
        let frames = sample_frames();
        for frame in &frames {
            match frame.to_stamped() {
                Some(stamped) => {
                    let back = WireFrame::from_stamped(&stamped);
                    assert!(frames_bitwise_eq(frame, &back));
                }
                None => assert!(matches!(
                    frame,
                    WireFrame::Hello { .. } | WireFrame::TickEnd { .. } | WireFrame::Bye
                )),
            }
        }
    }
}
