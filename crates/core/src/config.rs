use roboads_linalg::Vector;

use crate::{CoreError, Result};

/// Sliding-window decision parameters: `criteria` positives within the
/// last `window` iterations confirm an alarm (paper notation `c/w`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WindowConfig {
    /// Required number of positives `c`.
    pub criteria: usize,
    /// Window length `w`.
    pub window: usize,
}

impl WindowConfig {
    /// Creates a `c/w` window configuration.
    pub fn new(criteria: usize, window: usize) -> Self {
        WindowConfig { criteria, window }
    }
}

/// How the nonlinear model is linearized by the estimator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Linearization {
    /// Re-linearize at the current estimate every control iteration —
    /// the RoboADS approach.
    PerIteration,
    /// Linearize once at the given operating point and keep those
    /// Jacobians forever — the representative linear-system baseline of
    /// §V-G, which the paper shows degrades badly on nonlinear robots.
    FrozenAt {
        /// State linearization point.
        state: Vector,
        /// Input linearization point.
        input: Vector,
    },
}

/// Mode-bank activation schedule (DESIGN.md §17).
///
/// Algorithm 1 runs one NUISE per sensor-condition hypothesis every
/// iteration, so the bank cost grows with `2^p − 1` in sensor count
/// even when the robot is healthy and one nominal hypothesis has long
/// since won. [`ActivationPolicy::TopK`] makes the bank adaptive: in
/// the quiescent steady state only the `k` most probable modes advance
/// each tick (plus a round-robin audit of one dormant mode every
/// `audit_period` ticks), and the full bank re-activates edge-triggered
/// on consistency collapse, χ²-window activity, or an audited dormant
/// mode beating the selected mode by `wake_margin`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ActivationPolicy {
    /// Every mode advances every iteration — Algorithm 1 verbatim, and
    /// bitwise-identical to the engine before the policy existed.
    AlwaysFull,
    /// Lazy scheduling: advance the top-`k` modes while quiescent.
    TopK {
        /// Modes kept live while dormant scheduling is engaged (the
        /// selected mode and the most precise actuator source are
        /// always retained, so the effective floor is `max(k, 2)`-ish).
        k: usize,
        /// Audit one dormant mode every this many quiescent ticks.
        audit_period: usize,
        /// Wake the full bank when an audited dormant mode's parsimony
        /// weight exceeds `wake_margin ×` the selected mode's weight.
        wake_margin: f64,
    },
}

impl ActivationPolicy {
    /// The tuned lazy schedule: top-2 modes, audit every 4th tick, wake
    /// when an audited hypothesis reaches the selection-hysteresis
    /// margin (3×) over the incumbent.
    pub fn lazy_defaults() -> Self {
        ActivationPolicy::TopK {
            k: 2,
            audit_period: 4,
            wake_margin: 3.0,
        }
    }
}

/// Full RoboADS detector configuration.
///
/// The defaults follow the paper's tuned operating point (§V-F): sensor
/// tests at `α = 0.005` with a `2/2` window, actuator tests at `α = 0.05`
/// with a `3/6` window, and a mode-probability floor `ε = 10⁻⁶`.
///
/// # Example
///
/// ```
/// use roboads_core::RoboAdsConfig;
///
/// let config = RoboAdsConfig::paper_defaults();
/// assert_eq!(config.sensor_alpha, 0.005);
/// assert_eq!(config.actuator_window.criteria, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RoboAdsConfig {
    /// Significance level for the sensor-misbehavior χ² tests.
    pub sensor_alpha: f64,
    /// Significance level for the actuator-misbehavior χ² test.
    pub actuator_alpha: f64,
    /// Sliding window for sensor alarms.
    pub sensor_window: WindowConfig,
    /// Sliding window for actuator alarms.
    pub actuator_window: WindowConfig,
    /// Mode-probability floor `ε` (Algorithm 1 line 6). Keeps
    /// momentarily implausible hypotheses recoverable instead of locked
    /// out forever.
    pub mode_floor: f64,
    /// Initial state covariance diagonal value.
    pub initial_covariance: f64,
    /// Linearization strategy ([`Linearization::PerIteration`] for
    /// RoboADS proper).
    pub linearization: Linearization,
    /// Whether NUISE step 2 compensates the state prediction with the
    /// actuator anomaly estimate (`x̂ = f(x̂,u) + G·d̂ᵃ`). Disabling this
    /// reproduces the paper's "challenge 2" failure: under actuator
    /// misbehavior the state prediction and every sensor anomaly
    /// estimate become biased. Ablation knob; leave `true`.
    pub compensate_actuator_anomalies: bool,
    /// Per-implied-anomaly prior odds in the hypothesis comparison
    /// (DESIGN.md §2e). `1.0` disables the parsimony prior (ablation);
    /// the default 0.05 encodes the paper's "coordinated multi-workflow
    /// attacks are hard" threat model.
    pub parsimony_rho: f64,
    /// Per-iteration mixing of the mode probabilities toward uniform
    /// (the IMM transition prior; DESIGN.md §2f). `0.0` disables mixing
    /// (ablation).
    pub mode_mixing: f64,
    /// Worker threads for the per-mode NUISE fan-out. `None` (the
    /// default) lets the engine judge: banks whose estimated per-step
    /// work falls below the pool's measured dispatch cost — every
    /// built-in evaluation bank — run sequentially, and only genuinely
    /// heavy banks widen to the machine's available parallelism.
    /// `Some(n)` forces a width; `Some(1)` is the exact sequential
    /// path. The engine never spawns more workers than it has modes,
    /// and parallel output is bitwise identical to sequential (see
    /// `DESIGN.md`, threading model). For many-robot deployments
    /// prefer per-robot sequential engines batched by a
    /// `FleetEngine`, which parallelizes at robot grain instead.
    pub threads: Option<usize>,
    /// Lane width `K` of the fleet's SIMD-batched slab path: a
    /// `FleetEngine` whose robots share one system model and mode bank
    /// steps them `K` at a time through structure-of-arrays NUISE
    /// kernels (bitwise identical to per-robot stepping; see
    /// `DESIGN.md` §13). `None` (the default) uses the tuned width 8;
    /// `Some(1)` disables the slab path; otherwise must be 4 or 8 (the
    /// widths the kernels are compiled for). Ignored outside fleet
    /// batching.
    pub slab_lanes: Option<usize>,
    /// Mode-bank activation schedule. [`ActivationPolicy::AlwaysFull`]
    /// (the default) steps every hypothesis every iteration;
    /// [`ActivationPolicy::TopK`] parks improbable hypotheses while the
    /// robot is quiescent and re-activates the full bank edge-triggered
    /// (DESIGN.md §17).
    pub activation: ActivationPolicy,
}

impl RoboAdsConfig {
    /// The paper's tuned configuration (§V-F).
    pub fn paper_defaults() -> Self {
        RoboAdsConfig {
            sensor_alpha: 0.005,
            actuator_alpha: 0.05,
            sensor_window: WindowConfig::new(2, 2),
            actuator_window: WindowConfig::new(3, 6),
            mode_floor: 1e-6,
            initial_covariance: 1e-4,
            linearization: Linearization::PerIteration,
            compensate_actuator_anomalies: true,
            parsimony_rho: 0.05,
            mode_mixing: 0.02,
            threads: None,
            slab_lanes: None,
            activation: ActivationPolicy::AlwaysFull,
        }
    }

    /// Validates every parameter.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first invalid
    /// parameter.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("sensor_alpha", self.sensor_alpha),
            ("actuator_alpha", self.actuator_alpha),
        ] {
            if !(v.is_finite() && v > 0.0 && v < 1.0) {
                return Err(CoreError::InvalidConfig {
                    name,
                    value: format!("{v}"),
                });
            }
        }
        for (name, w) in [
            ("sensor_window", self.sensor_window),
            ("actuator_window", self.actuator_window),
        ] {
            if w.criteria == 0 || w.window == 0 || w.criteria > w.window {
                return Err(CoreError::InvalidConfig {
                    name,
                    value: format!("{}/{}", w.criteria, w.window),
                });
            }
        }
        if !(self.mode_floor.is_finite() && self.mode_floor > 0.0 && self.mode_floor < 1.0) {
            return Err(CoreError::InvalidConfig {
                name: "mode_floor",
                value: format!("{}", self.mode_floor),
            });
        }
        if !(self.initial_covariance.is_finite() && self.initial_covariance > 0.0) {
            return Err(CoreError::InvalidConfig {
                name: "initial_covariance",
                value: format!("{}", self.initial_covariance),
            });
        }
        if !(self.parsimony_rho.is_finite()
            && self.parsimony_rho > 0.0
            && self.parsimony_rho <= 1.0)
        {
            return Err(CoreError::InvalidConfig {
                name: "parsimony_rho",
                value: format!("{}", self.parsimony_rho),
            });
        }
        if !(self.mode_mixing.is_finite() && (0.0..1.0).contains(&self.mode_mixing)) {
            return Err(CoreError::InvalidConfig {
                name: "mode_mixing",
                value: format!("{}", self.mode_mixing),
            });
        }
        if self.threads == Some(0) {
            return Err(CoreError::InvalidConfig {
                name: "threads",
                value: "0".into(),
            });
        }
        if let Some(lanes) = self.slab_lanes {
            if !matches!(lanes, 1 | 4 | 8) {
                return Err(CoreError::InvalidConfig {
                    name: "slab_lanes",
                    value: format!("{lanes} (must be 1, 4 or 8)"),
                });
            }
        }
        if let ActivationPolicy::TopK {
            k,
            audit_period,
            wake_margin,
        } = self.activation
        {
            if k == 0 {
                return Err(CoreError::InvalidConfig {
                    name: "activation.k",
                    value: "0".into(),
                });
            }
            if audit_period == 0 {
                return Err(CoreError::InvalidConfig {
                    name: "activation.audit_period",
                    value: "0".into(),
                });
            }
            if !(wake_margin.is_finite() && wake_margin > 0.0) {
                return Err(CoreError::InvalidConfig {
                    name: "activation.wake_margin",
                    value: format!("{wake_margin}"),
                });
            }
        }
        Ok(())
    }

    /// Returns a copy with a different sensor significance level (used
    /// by the Fig. 7 ROC sweeps).
    pub fn with_sensor_alpha(mut self, alpha: f64) -> Self {
        self.sensor_alpha = alpha;
        self
    }

    /// Returns a copy with a different actuator significance level.
    pub fn with_actuator_alpha(mut self, alpha: f64) -> Self {
        self.actuator_alpha = alpha;
        self
    }

    /// Returns a copy with different sensor window parameters.
    pub fn with_sensor_window(mut self, criteria: usize, window: usize) -> Self {
        self.sensor_window = WindowConfig::new(criteria, window);
        self
    }

    /// Returns a copy with different actuator window parameters.
    pub fn with_actuator_window(mut self, criteria: usize, window: usize) -> Self {
        self.actuator_window = WindowConfig::new(criteria, window);
        self
    }

    /// Returns a copy with actuator-anomaly compensation disabled
    /// (ablation of NUISE step 2; see field docs).
    pub fn without_compensation(mut self) -> Self {
        self.compensate_actuator_anomalies = false;
        self
    }

    /// Returns a copy with a different parsimony prior (`1.0` disables).
    pub fn with_parsimony_rho(mut self, rho: f64) -> Self {
        self.parsimony_rho = rho;
        self
    }

    /// Returns a copy with a different probability mixing rate.
    pub fn with_mode_mixing(mut self, mixing: f64) -> Self {
        self.mode_mixing = mixing;
        self
    }

    /// Returns a copy pinning the NUISE fan-out to `threads` workers
    /// (`1` = sequential; must be nonzero).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Returns a copy pinning the fleet slab lane width (`1` disables
    /// the slab path; otherwise 4 or 8).
    pub fn with_slab_lanes(mut self, lanes: usize) -> Self {
        self.slab_lanes = Some(lanes);
        self
    }

    /// Returns a copy with a different mode-bank activation policy.
    pub fn with_activation(mut self, activation: ActivationPolicy) -> Self {
        self.activation = activation;
        self
    }
}

impl Default for RoboAdsConfig {
    fn default() -> Self {
        RoboAdsConfig::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_paper() {
        let c = RoboAdsConfig::paper_defaults();
        c.validate().unwrap();
        assert_eq!(c.sensor_window, WindowConfig::new(2, 2));
        assert_eq!(c.actuator_window, WindowConfig::new(3, 6));
        assert_eq!(c.actuator_alpha, 0.05);
        assert_eq!(c, RoboAdsConfig::default());
    }

    #[test]
    fn builders_produce_valid_variants() {
        let c = RoboAdsConfig::paper_defaults()
            .with_sensor_alpha(0.05)
            .with_actuator_alpha(0.5)
            .with_sensor_window(1, 1)
            .with_actuator_window(6, 6);
        c.validate().unwrap();
        assert_eq!(c.sensor_alpha, 0.05);
        assert_eq!(c.actuator_window, WindowConfig::new(6, 6));
    }

    #[test]
    fn ablation_knobs_validate() {
        let c = RoboAdsConfig::paper_defaults()
            .without_compensation()
            .with_parsimony_rho(1.0)
            .with_mode_mixing(0.0);
        c.validate().unwrap();
        assert!(!c.compensate_actuator_anomalies);
        assert!(RoboAdsConfig::paper_defaults()
            .with_parsimony_rho(0.0)
            .validate()
            .is_err());
        assert!(RoboAdsConfig::paper_defaults()
            .with_mode_mixing(1.0)
            .validate()
            .is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(RoboAdsConfig::paper_defaults()
            .with_sensor_alpha(0.0)
            .validate()
            .is_err());
        assert!(RoboAdsConfig::paper_defaults()
            .with_actuator_alpha(1.0)
            .validate()
            .is_err());
        assert!(RoboAdsConfig::paper_defaults()
            .with_sensor_window(3, 2)
            .validate()
            .is_err());
        let mut c = RoboAdsConfig::paper_defaults();
        c.mode_floor = 0.0;
        assert!(c.validate().is_err());
        let mut c = RoboAdsConfig::paper_defaults();
        c.initial_covariance = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn thread_knob_validates() {
        assert!(RoboAdsConfig::paper_defaults().threads.is_none());
        RoboAdsConfig::paper_defaults()
            .with_threads(1)
            .validate()
            .unwrap();
        RoboAdsConfig::paper_defaults()
            .with_threads(8)
            .validate()
            .unwrap();
        assert!(RoboAdsConfig::paper_defaults()
            .with_threads(0)
            .validate()
            .is_err());
    }

    #[test]
    fn activation_knob_validates() {
        assert_eq!(
            RoboAdsConfig::paper_defaults().activation,
            ActivationPolicy::AlwaysFull
        );
        RoboAdsConfig::paper_defaults()
            .with_activation(ActivationPolicy::lazy_defaults())
            .validate()
            .unwrap();
        for bad in [
            ActivationPolicy::TopK {
                k: 0,
                audit_period: 4,
                wake_margin: 3.0,
            },
            ActivationPolicy::TopK {
                k: 2,
                audit_period: 0,
                wake_margin: 3.0,
            },
            ActivationPolicy::TopK {
                k: 2,
                audit_period: 4,
                wake_margin: 0.0,
            },
            ActivationPolicy::TopK {
                k: 2,
                audit_period: 4,
                wake_margin: f64::NAN,
            },
        ] {
            assert!(
                RoboAdsConfig::paper_defaults()
                    .with_activation(bad)
                    .validate()
                    .is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn slab_lane_knob_validates() {
        assert!(RoboAdsConfig::paper_defaults().slab_lanes.is_none());
        for lanes in [1, 4, 8] {
            RoboAdsConfig::paper_defaults()
                .with_slab_lanes(lanes)
                .validate()
                .unwrap();
        }
        for lanes in [0, 2, 3, 16] {
            assert!(RoboAdsConfig::paper_defaults()
                .with_slab_lanes(lanes)
                .validate()
                .is_err());
        }
    }
}
