//! §V-D — the second robot: Tamiya TT-02 with distinct (bicycle)
//! dynamics and a different sensor suite (IPS + IMU inertial nav +
//! LiDAR).
//!
//! The paper reports, for the same mission and analogous attacks on the
//! Tamiya: average FPR/FNR of 2.77 % / 0.83 % and an average detection
//! delay of 0.33 s — demonstrating that RoboADS generalizes across
//! dynamic models without retuning.
//!
//! Run with: `cargo bench -p roboads-bench --bench tamiya`

use roboads_bench::{
    aggregate, delay, parallel_map, pct, run_tamiya, sweep_threads, DEFAULT_SEEDS,
};
use roboads_core::RoboAdsConfig;
use roboads_sim::Scenario;

fn main() {
    let config = RoboAdsConfig::paper_defaults();
    println!("Tamiya sensor indices: 0 = IPS, 1 = IMU inertial nav, 2 = LiDAR\n");
    println!(
        "{:<3} {:<28} {:<18} {:>9} {:>9} {:>18} {:>18}",
        "#", "Scenario", "Detection Result", "S-delay", "A-delay", "A: FPR/FNR", "S: FPR/FNR"
    );

    let rows = parallel_map(Scenario::all_tamiya(), sweep_threads(), |scenario| {
        let evals: Vec<_> = DEFAULT_SEEDS
            .iter()
            .map(|&seed| run_tamiya(&scenario, &config, seed).eval)
            .collect();
        aggregate(scenario.name(), scenario.number(), &evals)
    });

    let mut fpr_sum = 0.0;
    let mut fnr_sum = 0.0;
    let mut fnr_count = 0usize;
    let mut delays = Vec::new();
    for row in &rows {
        let sensor_truth = row.sensor.true_positives + row.sensor.false_negatives > 0;
        let actuator_truth = row.actuator.true_positives + row.actuator.false_negatives > 0;
        let result = if sensor_truth && actuator_truth {
            format!("{} / {}", row.sensor_sequence, row.actuator_sequence)
        } else if actuator_truth {
            row.actuator_sequence.clone()
        } else {
            row.sensor_sequence.clone()
        };
        println!(
            "{:<3} {:<28} {:<18} {:>9} {:>9} {:>18} {:>18}",
            row.number,
            row.name,
            result,
            delay(row.sensor_delay),
            delay(row.actuator_delay),
            format!(
                "{} / {}",
                pct(row.actuator.false_positive_rate(), true),
                pct(row.actuator.false_negative_rate(), actuator_truth)
            ),
            format!(
                "{} / {}",
                pct(row.sensor.false_positive_rate(), true),
                pct(row.sensor.false_negative_rate(), sensor_truth)
            ),
        );
        fpr_sum += row.sensor.false_positive_rate() + row.actuator.false_positive_rate();
        if sensor_truth {
            fnr_sum += row.sensor.false_negative_rate();
            fnr_count += 1;
        }
        if actuator_truth {
            fnr_sum += row.actuator.false_negative_rate();
            fnr_count += 1;
        }
        delays.extend(row.sensor_delay);
        delays.extend(row.actuator_delay);
    }
    println!(
        "\n— aggregates (paper §V-D: FPR 2.77 %, FNR 0.83 %, delay 0.33 s) —\n\
         average FPR {:.2}%  average FNR {:.2}%  mean delay {:.2}s",
        fpr_sum / (2 * rows.len()) as f64 * 100.0,
        fnr_sum / fnr_count.max(1) as f64 * 100.0,
        delays.iter().sum::<f64>() / delays.len().max(1) as f64
    );
}
