//! The flight-recorder ring primitive: a fixed-capacity slot ring whose
//! slots are pre-allocated once and mutated in place.
//!
//! `VecDeque`-style rings allocate on push (the evicted element is
//! dropped, the new one constructed); a detector's per-tick record path
//! cannot afford that. [`SlotRing`] instead owns `capacity` slots from
//! construction and hands the writer a `&mut` to the slot being
//! overwritten ([`SlotRing::push_with`]), so a slot whose `Vec` fields
//! were sized on the first lap is reused allocation-free on every lap
//! after — the same idea as the pipeline's pre-registered instruments.

/// Fixed-capacity ring over pre-allocated slots.
///
/// Logical order is oldest→newest; physically the ring wraps in place.
#[derive(Debug, Clone)]
pub struct SlotRing<T> {
    slots: Vec<T>,
    /// Index of the next slot to overwrite.
    head: usize,
    /// Number of live records (`<= slots.len()`).
    len: usize,
}

impl<T> SlotRing<T> {
    /// Builds a ring that reuses `slots` as its storage. The slots'
    /// contents are placeholders until overwritten; the ring starts
    /// logically empty.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity — a recorder with no memory is a bug at
    /// the call site, not a runtime condition.
    pub fn from_slots(slots: Vec<T>) -> Self {
        assert!(!slots.is_empty(), "SlotRing requires capacity >= 1");
        SlotRing {
            slots,
            head: 0,
            len: 0,
        }
    }

    /// Maximum number of live records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no record is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logically clears the ring. Slot storage (and any capacity inside
    /// the slots) is retained for reuse.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Appends a record by overwriting the oldest slot in place:
    /// `fill` receives the slot being recycled, still holding its
    /// previous contents (so `Vec` fields keep their capacity).
    pub fn push_with(&mut self, fill: impl FnOnce(&mut T)) {
        fill(&mut self.slots[self.head]);
        self.head = (self.head + 1) % self.slots.len();
        if self.len < self.slots.len() {
            self.len += 1;
        }
    }

    /// The `i`-th live record, oldest first.
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        let start = if self.len == self.slots.len() {
            self.head
        } else {
            0
        };
        Some(&self.slots[(start + i) % self.slots.len()])
    }

    /// The most recent record.
    pub fn latest(&self) -> Option<&T> {
        self.get(self.len.checked_sub(1)?)
    }

    /// Iterates the live records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len).map(move |i| self.get(i).expect("index in range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(capacity: usize) -> SlotRing<Vec<u64>> {
        SlotRing::from_slots(vec![Vec::new(); capacity])
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut r = ring(3);
        assert!(r.is_empty());
        for i in 0..5u64 {
            r.push_with(|slot| {
                slot.clear();
                slot.push(i);
            });
        }
        assert_eq!(r.len(), 3);
        let seen: Vec<u64> = r.iter().map(|s| s[0]).collect();
        assert_eq!(seen, vec![2, 3, 4]);
        assert_eq!(r.latest().unwrap()[0], 4);
        assert_eq!(r.get(0).unwrap()[0], 2);
        assert_eq!(r.get(3), None);
    }

    #[test]
    fn partial_fill_iterates_from_slot_zero() {
        let mut r = ring(4);
        for i in 0..2u64 {
            r.push_with(|slot| {
                slot.clear();
                slot.push(i);
            });
        }
        let seen: Vec<u64> = r.iter().map(|s| s[0]).collect();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn slot_capacity_survives_wraparound() {
        let mut r = ring(2);
        // First lap sizes the slots…
        for i in 0..2u64 {
            r.push_with(|slot| {
                slot.clear();
                slot.extend_from_slice(&[i; 8]);
            });
        }
        let caps: Vec<usize> = (0..2).map(|i| r.get(i).unwrap().capacity()).collect();
        // …later laps reuse that capacity (clear() keeps it).
        for i in 2..10u64 {
            r.push_with(|slot| {
                slot.clear();
                slot.extend_from_slice(&[i; 8]);
            });
        }
        for (i, cap) in caps.iter().enumerate() {
            assert!(r.get(i).unwrap().capacity() >= *cap);
        }
    }

    #[test]
    fn clear_retains_storage() {
        let mut r = ring(2);
        r.push_with(|slot| slot.push(1));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 2);
        r.push_with(|slot| {
            // The recycled slot still holds its previous contents.
            assert_eq!(slot.as_slice(), &[1]);
            slot.clear();
            slot.push(2);
        });
        assert_eq!(r.latest().unwrap()[0], 2);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_panics() {
        let _ = SlotRing::<u8>::from_slots(Vec::new());
    }
}
