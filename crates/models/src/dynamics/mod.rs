//! Kinematic models: the `f(x, u)` of the paper's system description.
//!
//! A [`DynamicsModel`] describes how control commands drive robot state
//! transitions over one control iteration, and exposes the linearizations
//! (`A = ∂f/∂x`, `G = ∂f/∂u`) that NUISE uses for covariance propagation
//! and actuator-anomaly estimation. The paper's two evaluation robots use
//! [`DifferentialDrive`] (Khepera III) and [`Bicycle`] (Tamiya TT-02); a
//! plain [`Unicycle`] is included for tests and user examples.

mod bicycle;
mod differential_drive;
mod omnidirectional;
mod unicycle;

pub use bicycle::Bicycle;
pub use differential_drive::DifferentialDrive;
pub use omnidirectional::Omnidirectional;
pub use unicycle::Unicycle;

use roboads_linalg::{Matrix, Vector};

use crate::jacobian::{numeric_jacobian, numeric_jacobian_wrt};

/// A discrete-time robot kinematic model `x_k = f(x_{k-1}, u_{k-1})`.
///
/// Implementations must be deterministic and free of internal state:
/// process noise is added by the caller (the simulator adds sampled
/// `ζ_{k-1}`, the estimator adds its covariance `Q`).
///
/// The trait provides numeric default Jacobians so a user-defined robot
/// only has to implement [`DynamicsModel::step`]; the built-in models
/// override both with analytic forms (verified against the numeric ones
/// in this crate's tests).
pub trait DynamicsModel: Send + Sync {
    /// Dimension of the state vector `x`.
    fn state_dim(&self) -> usize;

    /// Dimension of the control vector `u`.
    fn input_dim(&self) -> usize;

    /// Indices of state components that are angles (wrapped to
    /// `(−π, π]`). For the planar robots in this crate this is `[2]`.
    fn angular_state_components(&self) -> &[usize] {
        &[]
    }

    /// Human-readable model name, e.g. `"differential-drive"`.
    fn name(&self) -> &str;

    /// One control iteration: `x_k = f(x_{k-1}, u_{k-1})` (noiseless).
    ///
    /// Implementations must wrap angular state components.
    fn step(&self, x: &Vector, u: &Vector) -> Vector;

    /// State Jacobian `A = ∂f/∂x` evaluated at `(x, u)`.
    fn state_jacobian(&self, x: &Vector, u: &Vector) -> Matrix {
        let f = |xx: &Vector| self.step(xx, u);
        numeric_jacobian(&f, x, self.state_dim())
    }

    /// Input Jacobian `G = ∂f/∂u` evaluated at `(x, u)`.
    ///
    /// This matrix is the actuator-anomaly gain of NUISE: an additive
    /// corruption `d^a` on the executed commands shifts the state by
    /// `G·d^a` to first order.
    fn input_jacobian(&self, x: &Vector, u: &Vector) -> Matrix {
        let f = |xx: &Vector, uu: &Vector| self.step(xx, uu);
        numeric_jacobian_wrt(&f, x, u, self.state_dim())
    }

    /// Allocation-free [`DynamicsModel::step`]: writes `f(x, u)` into
    /// `out` (length `state_dim`).
    ///
    /// The default delegates to the allocating `step`, so user models
    /// keep working unchanged; the built-in models override it to write
    /// directly, which is what keeps the NUISE hot path heap-free.
    fn step_into(&self, x: &Vector, u: &Vector, out: &mut Vector) {
        out.copy_from(&self.step(x, u));
    }

    /// Allocation-free [`DynamicsModel::state_jacobian`]: writes `A`
    /// into `out` (shape `state_dim × state_dim`). Default delegates to
    /// the allocating version.
    fn state_jacobian_into(&self, x: &Vector, u: &Vector, out: &mut Matrix) {
        out.copy_from(&self.state_jacobian(x, u));
    }

    /// Allocation-free [`DynamicsModel::input_jacobian`]: writes `G`
    /// into `out` (shape `state_dim × input_dim`). Default delegates to
    /// the allocating version.
    fn input_jacobian_into(&self, x: &Vector, u: &Vector, out: &mut Matrix) {
        out.copy_from(&self.input_jacobian(x, u));
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Asserts that a model's analytic Jacobians match central-difference
    /// numeric Jacobians at the given evaluation point.
    pub fn assert_jacobians_match(model: &dyn DynamicsModel, x: &Vector, u: &Vector, tol: f64) {
        let a_analytic = model.state_jacobian(x, u);
        let f = |xx: &Vector| model.step(xx, u);
        let a_numeric = numeric_jacobian(&f, x, model.state_dim());
        assert!(
            (&a_analytic - &a_numeric).max_abs() < tol,
            "state jacobian mismatch for {}:\nanalytic {a_analytic:?}\nnumeric {a_numeric:?}",
            model.name()
        );

        let g_analytic = model.input_jacobian(x, u);
        let g = |xx: &Vector, uu: &Vector| model.step(xx, uu);
        let g_numeric = numeric_jacobian_wrt(&g, x, u, model.state_dim());
        assert!(
            (&g_analytic - &g_numeric).max_abs() < tol,
            "input jacobian mismatch for {}:\nanalytic {g_analytic:?}\nnumeric {g_numeric:?}",
            model.name()
        );
    }

    /// Asserts that the in-place `_into` variants are bitwise identical
    /// to the allocating methods (the NUISE determinism contract).
    pub fn assert_into_variants_match(model: &dyn DynamicsModel, x: &Vector, u: &Vector) {
        let n = model.state_dim();
        let q = model.input_dim();
        let mut step = Vector::zeros(n);
        model.step_into(x, u, &mut step);
        assert_eq!(step, model.step(x, u), "{} step_into", model.name());
        let mut a = Matrix::zeros(n, n);
        model.state_jacobian_into(x, u, &mut a);
        assert_eq!(
            a,
            model.state_jacobian(x, u),
            "{} state_jacobian_into",
            model.name()
        );
        let mut g = Matrix::zeros(n, q);
        model.input_jacobian_into(x, u, &mut g);
        assert_eq!(
            g,
            model.input_jacobian(x, u),
            "{} input_jacobian_into",
            model.name()
        );
    }
}
