//! Detection-probability campaign bench: the `eval_attack_prob`-style
//! sweep over the bus-attack taxonomy (`roboads_sim::attacks`).
//!
//! The grid is attack kind × base scenario × activation policy ×
//! magnitude, N seeded trials per cell (trial seeds are pure hashes of
//! the cell coordinates — results are bit-for-bit reproducible and
//! independent of the worker-thread schedule). Each attacked cell
//! reports detection probability and mean time-to-detection; each
//! (scenario × policy) additionally runs a clean baseline cell whose
//! false-positive rates bound the detections' worth.
//!
//! Results go to `BENCH_detect.json` at the workspace root. Set
//! `ROBOADS_BENCH_FAST=1` for the reduced CI grid, and
//! `ROBOADS_DETECT_GATE=1` to enforce the regression gates: a detection
//! floor at Table II magnitudes and a false-positive ceiling on the
//! clean baselines.
//!
//! Run with: `cargo bench -p roboads-bench --bench detect`

use roboads_bench::{parallel_map, sweep_threads};
use roboads_core::obs::json::{array_of, JsonObject};
use roboads_sim::{Campaign, CampaignPoint};

/// Detection-probability floor enforced over every attacked cell with
/// `magnitude ≥ GATE_MAGNITUDE` (Table II scale: 6000 speed units =
/// 0.04 m/s on the command channels, 0.07–0.1 m on the IPS).
const DETECTION_FLOOR: f64 = 0.9;
const GATE_MAGNITUDE: f64 = 0.04;
/// Ceiling on the per-run false-positive rate (sensor or actuator) of
/// the clean-scenario baseline cells. Burst-scenario baselines are
/// reported but not gated: their trailing recovery lag after the
/// scripted misbehavior window counts as false positives against the
/// ground truth even for a healthy detector.
const FP_CEILING: f64 = 0.05;

fn fast_mode() -> bool {
    std::env::var_os("ROBOADS_BENCH_FAST").is_some_and(|v| v != "0")
}

fn gate_mode() -> bool {
    std::env::var_os("ROBOADS_DETECT_GATE").is_some_and(|v| v != "0")
}

fn point_json(p: &CampaignPoint) -> String {
    let mut row = JsonObject::new();
    row.field_str("attack", &p.attack);
    row.field_str("scenario", &p.scenario);
    row.field_str("policy", &p.policy);
    row.field_f64("magnitude", p.magnitude);
    row.field_u64("onset", p.onset as u64);
    match p.duration {
        Some(d) => row.field_u64("duration", d as u64),
        None => row.field_raw("duration", "null"),
    }
    row.field_u64("trials", p.detection.trials);
    row.field_u64("detections", p.detection.detections);
    row.field_f64("detection_probability", p.detection.probability());
    match p.detection.mean_delay() {
        Some(d) => row.field_f64("mean_delay_s", d),
        None => row.field_raw("mean_delay_s", "null"),
    }
    row.field_f64("sensor_fpr", p.sensor_fpr);
    row.field_f64("actuator_fpr", p.actuator_fpr);
    row.finish()
}

fn main() {
    let fast = fast_mode();
    let campaign = if fast {
        Campaign::khepera().magnitudes(vec![0.04, 0.1]).trials(2)
    } else {
        Campaign::khepera().trials(5)
    };
    let cells = campaign.cells();
    println!(
        "attack campaign: {} cells ({} baselines){}",
        cells.len(),
        cells.iter().filter(|c| c.attack.is_none()).count(),
        if fast { "  [fast mode]" } else { "" }
    );

    // Cells are self-contained and seed-deterministic: farm them out.
    let points: Vec<CampaignPoint> = parallel_map(cells, sweep_threads(), |cell| {
        cell.run().expect("campaign trial failed")
    });
    let outcome = roboads_sim::CampaignOutcome {
        points: points.clone(),
    };

    println!(
        "\n{:<22} {:<24} {:<12} {:>6} {:>8} {:>10}",
        "attack", "scenario", "policy", "mag", "P(det)", "delay"
    );
    for p in &points {
        println!(
            "{:<22} {:<24} {:<12} {:>6.2} {:>8.2} {:>10}",
            p.attack,
            p.scenario,
            p.policy,
            p.magnitude,
            p.detection.probability(),
            p.detection
                .mean_delay()
                .map_or("-".to_string(), |d| format!("{:.2} s", d)),
        );
    }

    let floor = outcome.detection_floor(GATE_MAGNITUDE);
    let ceiling = outcome.false_positive_ceiling();
    let clean_ceiling = outcome.scenario_false_positive_ceiling("clean");
    println!(
        "\ndetection floor (mag >= {GATE_MAGNITUDE}): {}",
        floor.map_or("-".into(), |f| format!("{f:.3}"))
    );
    println!(
        "false-positive ceiling: {} (clean scenario: {})",
        ceiling.map_or("-".into(), |c| format!("{c:.4}")),
        clean_ceiling.map_or("-".into(), |c| format!("{c:.4}"))
    );

    let mut o = JsonObject::new();
    o.field_str("bench", "detect");
    o.field_bool("fast_mode", fast);
    o.field_f64("gate_detection_floor", DETECTION_FLOOR);
    o.field_f64("gate_magnitude", GATE_MAGNITUDE);
    o.field_f64("gate_fp_ceiling", FP_CEILING);
    match floor {
        Some(f) => o.field_f64("detection_floor", f),
        None => o.field_raw("detection_floor", "null"),
    }
    match ceiling {
        Some(c) => o.field_f64("false_positive_ceiling", c),
        None => o.field_raw("false_positive_ceiling", "null"),
    }
    match clean_ceiling {
        Some(c) => o.field_f64("clean_false_positive_ceiling", c),
        None => o.field_raw("clean_false_positive_ceiling", "null"),
    }
    o.field_raw("points", &array_of(points.iter().map(point_json)));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_detect.json");
    match std::fs::write(path, o.finish() + "\n") {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    if gate_mode() {
        let floor = floor.expect("gate mode needs attacked cells");
        let ceiling = clean_ceiling.expect("gate mode needs a clean baseline cell");
        assert!(
            floor >= DETECTION_FLOOR,
            "detection floor regression: {floor:.3} < {DETECTION_FLOOR} \
             at magnitude >= {GATE_MAGNITUDE}"
        );
        assert!(
            ceiling <= FP_CEILING,
            "clean false-positive ceiling regression: {ceiling:.4} > {FP_CEILING}"
        );
        println!("detect gates passed: floor {floor:.3} >= {DETECTION_FLOOR}, clean ceiling {ceiling:.4} <= {FP_CEILING}");
    }
}
