use crate::{LinalgError, Matrix, Result, Vector};

/// Householder QR decomposition `A = Q·R` of an `m × n` matrix with
/// `m ≥ n`.
///
/// Used for least-squares problems (e.g. calibrating sensor models from
/// logged data) and as a numerically stable alternative to the normal
/// equations the NUISE gain solves; the estimator itself keeps the
/// normal-equation form because its matrices are tiny and
/// well-conditioned, but downstream users get the robust tool.
///
/// # Example
///
/// ```
/// use roboads_linalg::{Matrix, Qr, Vector};
///
/// # fn main() -> Result<(), roboads_linalg::LinalgError> {
/// // Overdetermined line fit: y = a + b·t for t = 0, 1, 2.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let y = Vector::from_slice(&[1.0, 3.0, 5.0]);
/// let coeffs = Qr::new(&a)?.solve_least_squares(&y)?;
/// assert!((coeffs[0] - 1.0).abs() < 1e-10); // intercept
/// assert!((coeffs[1] - 2.0).abs() < 1e-10); // slope
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthonormal `m × n` factor (thin Q).
    q: Matrix,
    /// Upper-triangular `n × n` factor.
    r: Matrix,
}

/// Relative diagonal threshold below which `R` is declared
/// rank-deficient.
const RANK_TOL: f64 = 1e-12;

impl Qr {
    /// Decomposes a matrix with at least as many rows as columns.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty matrix and
    /// [`LinalgError::DimensionMismatch`] when `rows < cols`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                op: "qr",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        // Householder reflections applied to a working copy; Q built by
        // applying the reflections to the identity.
        let mut r = a.clone();
        let mut q_full = Matrix::identity(m);
        for k in 0..n {
            // Householder vector for column k below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if norm <= f64::MIN_POSITIVE {
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let mut v = Vector::zeros(m);
            for i in k..m {
                v[i] = r[(i, k)];
            }
            v[k] -= alpha;
            let v_norm2 = v.dot(&v);
            if v_norm2 <= f64::MIN_POSITIVE {
                continue;
            }
            // Apply H = I − 2vvᵀ/‖v‖² to R (columns k..n) and Q.
            for j in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i] * r[(i, j)];
                }
                let scale = 2.0 * dot / v_norm2;
                for i in k..m {
                    r[(i, j)] -= scale * v[i];
                }
            }
            for j in 0..m {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i] * q_full[(i, j)];
                }
                let scale = 2.0 * dot / v_norm2;
                for i in k..m {
                    q_full[(i, j)] -= scale * v[i];
                }
            }
        }
        // q_full currently holds Qᵀ; thin factors:
        let q = Matrix::from_fn(m, n, |i, j| q_full[(j, i)]);
        let r_thin = Matrix::from_fn(n, n, |i, j| if i <= j { r[(i, j)] } else { 0.0 });
        Ok(Qr { q, r: r_thin })
    }

    /// The thin orthonormal factor `Q` (`m × n`, `QᵀQ = I`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Whether `R` has a (numerically) zero diagonal entry.
    pub fn is_rank_deficient(&self) -> bool {
        let scale = self.r.max_abs().max(f64::MIN_POSITIVE);
        (0..self.r.rows()).any(|i| self.r[(i, i)].abs() <= RANK_TOL * scale)
    }

    /// Solves the least-squares problem `min ‖A·x − b‖` via
    /// `R·x = Qᵀ·b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for a wrong-length
    /// `b` and [`LinalgError::Singular`] when `A` is rank deficient.
    pub fn solve_least_squares(&self, b: &Vector) -> Result<Vector> {
        let (m, n) = self.q.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        if self.is_rank_deficient() {
            return Err(LinalgError::Singular);
        }
        let mut y = &self.q.transpose() * b;
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let rij = self.r[(i, j)];
                y[i] -= rij * y[j];
            }
            y[i] /= self.r[(i, i)];
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstructs_and_q_is_orthonormal() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        let rec = qr.q() * qr.r();
        assert!((&rec - &a).max_abs() < 1e-12);
        let qtq = &qr.q().transpose() * qr.q();
        assert!((&qtq - &Matrix::identity(2)).max_abs() < 1e-12);
        // R upper triangular.
        assert_eq!(qr.r()[(1, 0)], 0.0);
    }

    #[test]
    fn square_solve_matches_lu() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = Vector::from_slice(&[3.0, 5.0]);
        let x_qr = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        let x_lu = a.lu().unwrap().solve(&b).unwrap();
        assert!((&x_qr - &x_lu).norm() < 1e-12);
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_the_column_space() {
        let a = Matrix::from_rows(&[&[1.0, 0.5], &[1.0, 1.5], &[1.0, 2.5], &[1.0, 3.5]]).unwrap();
        let b = Vector::from_slice(&[1.0, 2.2, 2.8, 4.3]);
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        let residual = &(&a * &x) - &b;
        let projected = &a.transpose() * &residual;
        assert!(projected.max_abs() < 1e-10, "AᵀR = {projected:?}");
    }

    #[test]
    fn rank_deficiency_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        assert!(qr.is_rank_deficient());
        assert_eq!(
            qr.solve_least_squares(&Vector::zeros(3)).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn shape_validation() {
        assert!(matches!(
            Qr::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
        assert!(matches!(
            Qr::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let qr = Qr::new(&Matrix::identity(2)).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&Vector::zeros(3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn tall_random_matrix_round_trip() {
        // Deterministic pseudo-random entries.
        let a = Matrix::from_fn(8, 4, |i, j| ((i * 31 + j * 17 + 7) % 13) as f64 - 6.0);
        let qr = Qr::new(&a).unwrap();
        assert!((&(qr.q() * qr.r()) - &a).max_abs() < 1e-11);
    }
}
