//! Fleet-scale scenario replay: M independent closed-loop robot worlds
//! whose detectors advance through **one [`FleetEngine`] batch per
//! control tick**.
//!
//! Every robot owns the same closed loop as [`crate::SimulationBuilder`]
//! — tracker, actuation and sensing workflows, communication bus,
//! physics platform, noise stream — but replays a *phase-shifted* copy
//! of the scenario (robot `i`'s misbehaviors trigger `i × phase`
//! iterations later) with its own seed, so a fleet mid-run holds robots
//! in every stage of the attack timeline at once. That is the workload
//! the fleet engine is for: N detector steps amortized over one
//! dispatch, while each robot's arithmetic stays bitwise identical to a
//! standalone run (see `DESIGN.md` §12).

use roboads_control::{BicycleTracker, DifferentialDriveTracker, Mission, TrackingController};
use roboads_core::{
    CoreError, DeadlinePolicy, FleetEngine, FleetHealth, FleetIngest, IncidentCapsule, ModeSet,
    RecorderConfig, RoboAds, RoboAdsConfig, RobotInput,
};
use roboads_linalg::Vector;
use roboads_models::sensors::WheelEncoderOdometry;
use roboads_models::{presets, Pose2};
use roboads_obs::Telemetry;
use roboads_stats::{SeedableRng, StdRng};

use crate::attacks::{build_attacks, AttackSpec, BusAttack};
use crate::bus::{Bus, Frame, COMMAND_ID, SENSOR_ID_BASE};
use crate::eval::{evaluate, EvalResult};
use crate::misbehavior::Misbehavior;
use crate::platform::RobotPlatform;
use crate::runner::RobotKind;
use crate::scenario::Scenario;
use crate::trace::{Trace, TraceRecord};
use crate::workflow::{ActuationWorkflow, SensingWorkflow};
use crate::{Result, SimError};

/// A monitor-side transport fault: what happens to one robot's frames
/// on their way from its bus to the fleet monitor's ingest front-end.
/// The robot's *local* closed loop (controller, physics, noise stream)
/// is untouched — only the monitor's copy of the data misbehaves, so a
/// faulted robot's world evolves exactly as in a fault-free run and
/// every other robot's detection is provably unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Frames are lost on the wire: nothing reaches the ingest window.
    Drop,
    /// Frames arrive one tick late: delivered with last tick's stamp,
    /// so the stamp-checking ingest rejects them
    /// (`ingest.frames_rejected`) and the window stays incomplete.
    Delay,
}

/// The result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Number of robots stepped each tick.
    pub robots: usize,
    /// Control iterations executed.
    pub steps: usize,
    /// Robot-grain worker threads used by the fleet engine.
    pub threads: usize,
    /// Per-robot traces, in robot order.
    pub traces: Vec<Trace>,
    /// Per-robot evaluations against each robot's *own* (phase-shifted)
    /// ground truth.
    pub evals: Vec<EvalResult>,
    /// Incident capsules sealed across the fleet, in robot order (empty
    /// unless [`FleetSimulationBuilder::recorder`] was configured).
    pub capsules: Vec<IncidentCapsule>,
    /// The live health board after the final tick (present when
    /// [`FleetSimulationBuilder::health`] was enabled).
    pub health: Option<FleetHealth>,
}

/// Builder for a fleet run: M phase-offset copies of one scenario,
/// batched through a [`FleetEngine`].
///
/// # Example
///
/// ```
/// use roboads_sim::{FleetSimulationBuilder, Scenario};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let outcome = FleetSimulationBuilder::khepera()
///     .scenario(Scenario::ips_spoofing())
///     .robots(3)
///     .phase(5)
///     .duration(80)
///     .run()?;
/// assert_eq!(outcome.robots, 3);
/// // Every robot detects its own (shifted) attack.
/// assert!(outcome.evals.iter().all(|e| e.sensor_delay().is_some()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FleetSimulationBuilder {
    kind: RobotKind,
    scenario: Scenario,
    robots: usize,
    phase: usize,
    seed: u64,
    threads: usize,
    signature_groups: usize,
    duration: Option<usize>,
    config: RoboAdsConfig,
    telemetry: Option<Telemetry>,
    ingest: Option<DeadlinePolicy>,
    faults: Vec<(usize, std::ops::Range<usize>, FrameFault)>,
    attacks: Vec<AttackSpec>,
    recorder: Option<RecorderConfig>,
    health: bool,
}

/// One robot's closed-loop world: everything a standalone run owns
/// except the detector, which lives in the fleet engine's slab.
struct RobotWorld {
    tracker: Box<dyn TrackingController>,
    sensing: Vec<SensingWorkflow>,
    actuation: ActuationWorkflow,
    platform: RobotPlatform,
    bus: Bus,
    rng: StdRng,
    controller_pose: Pose2,
    scenario: Scenario,
    trace: Trace,
    // Current-tick staging, referenced by the batch's `RobotInput`s.
    u_planned: Vector,
    u_executed: Vector,
    d_a_true: Vector,
    readings: Vec<Vector>,
    d_s_true: Vec<Vector>,
    // Bus-level attacks on this robot's bus, with the attacker's own
    // RNG stream, plus the monitor's hold-last fallback for frames the
    // attacks destroyed.
    attacks: Vec<Box<dyn BusAttack>>,
    attack_rng: StdRng,
    held_readings: Vec<Vector>,
    held_command: Vector,
}

/// `scenario` with every misbehavior window shifted `offset` iterations
/// later (duration unchanged; windows sliding past the end simply never
/// fire — a large fleet's tail robots stay clean, which is fine: they
/// exercise the false-positive floor).
fn phase_shifted(scenario: &Scenario, offset: usize) -> Scenario {
    let misbehaviors: Vec<Misbehavior> = scenario
        .misbehaviors()
        .iter()
        .map(|m| {
            if m.is_transient() {
                Misbehavior::transient_glitch(
                    m.name().to_string(),
                    m.target(),
                    m.corruption().clone(),
                    m.start() + offset,
                )
            } else {
                Misbehavior::new(
                    m.name().to_string(),
                    m.target(),
                    m.corruption().clone(),
                    m.start() + offset,
                    m.end().map(|e| e + offset),
                )
            }
        })
        .collect();
    Scenario::new(
        scenario.number(),
        format!("{}+{}", scenario.name(), offset),
        scenario.description().to_string(),
        misbehaviors,
        scenario.duration(),
    )
}

impl FleetSimulationBuilder {
    /// Starts a Khepera fleet with paper-default configuration, one
    /// robot, no phase offset and the sequential (single-thread)
    /// scheduler.
    pub fn khepera() -> Self {
        FleetSimulationBuilder {
            kind: RobotKind::Khepera,
            scenario: Scenario::clean(),
            robots: 1,
            phase: 0,
            seed: 0,
            threads: 1,
            signature_groups: 1,
            duration: None,
            config: RoboAdsConfig::paper_defaults(),
            telemetry: None,
            ingest: None,
            faults: Vec::new(),
            attacks: Vec::new(),
            recorder: None,
            health: false,
        }
    }

    /// Starts a Tamiya fleet.
    pub fn tamiya() -> Self {
        let mut b = FleetSimulationBuilder::khepera();
        b.kind = RobotKind::Tamiya;
        b
    }

    /// Sets the base scenario every robot replays (phase-shifted).
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the fleet size.
    pub fn robots(mut self, robots: usize) -> Self {
        self.robots = robots.max(1);
        self
    }

    /// Sets the per-robot phase offset: robot `i`'s misbehaviors start
    /// `i × phase` iterations after the base scenario's.
    pub fn phase(mut self, phase: usize) -> Self {
        self.phase = phase;
        self
    }

    /// Sets the base random seed; robot `i` draws from seed `base + i`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fleet engine's robot-grain thread count (default 1).
    /// Results are bitwise independent of this choice.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Splits the fleet across `groups` **model-signature groups**
    /// (default 1, fully homogeneous): robot `i`'s detector is built
    /// from signature group `i % groups`'s own, separately instantiated
    /// copy of the platform's preset system. The copies are numerically
    /// identical — every robot's physics, readings and reports are
    /// bitwise unchanged — but pointer-distinct, so the fleet engine
    /// partitions them into separate slab groups: this is the
    /// mixed-fleet shape (per-robot firmware builds, per-unit model
    /// provisioning) the heterogeneous slab grouping exists for.
    /// Results are bitwise independent of this choice.
    pub fn signature_groups(mut self, groups: usize) -> Self {
        self.signature_groups = groups.max(1);
        self
    }

    /// Overrides the run length in iterations (default: the scenario's).
    pub fn duration(mut self, iterations: usize) -> Self {
        self.duration = Some(iterations);
        self
    }

    /// Overrides the detector configuration. `threads: None` is pinned
    /// to the sequential intra-step path (fleet robots parallelize at
    /// robot grain, never inside a step).
    pub fn config(mut self, config: RoboAdsConfig) -> Self {
        self.config = config;
        self
    }

    /// Supplies the telemetry context fanned out to every robot's
    /// detector; fleet spans carry the 1-based robot id (see
    /// `roboads_obs::current_robot`).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Switches the monitor to **async ingestion**: instead of handing
    /// the fleet engine an aligned dense batch, each robot's decoded
    /// bus frames are offered to a [`FleetIngest`] front-end
    /// (tick-stamped, in arrival order) and the tick boundary swaps the
    /// published batch into [`FleetEngine::step_batch_masked`]. With
    /// every frame on time this is bitwise identical to the sync path;
    /// a robot whose frames miss the deadline (see
    /// [`FleetSimulationBuilder::frame_fault`]) resolves per `policy`
    /// while the rest of the fleet is untouched.
    pub fn ingest(mut self, policy: DeadlinePolicy) -> Self {
        self.ingest = Some(policy);
        self
    }

    /// Injects a monitor-side transport fault: robot `robot`'s frames
    /// suffer `fault` during the iterations in `window`. Only
    /// meaningful in [`FleetSimulationBuilder::ingest`] mode — the sync
    /// path has no transport to misbehave. The robot's own closed loop
    /// is unaffected (see [`FrameFault`]).
    pub fn frame_fault(
        mut self,
        robot: usize,
        window: std::ops::Range<usize>,
        fault: FrameFault,
    ) -> Self {
        self.faults.push((robot, window, fault));
        self
    }

    /// Registers a bus-level attack ([`crate::attacks`]) applied to
    /// **every** robot's bus at the monitor seam — after its workflows
    /// publish, before the monitor decodes. Robot `i`'s attacker draws
    /// from a stream derived from seed `base + i`, so a fleet mid-run
    /// holds robots at every stage of the attacked timeline without the
    /// attacks coupling robots together. Frames an attack destroys fall
    /// back to the last consumed value (hold-last), so a trashed robot
    /// keeps stepping rather than panicking the run.
    pub fn bus_attack(mut self, spec: AttackSpec) -> Self {
        self.attacks.push(spec);
        self
    }

    /// Attaches a flight recorder to every robot's detector: confirmed
    /// alarms seal [`IncidentCapsule`]s collected (in robot order) into
    /// [`FleetOutcome::capsules`].
    pub fn recorder(mut self, config: RecorderConfig) -> Self {
        self.recorder = Some(config);
        self
    }

    /// Maintains a live [`FleetHealth`] board across the run — one
    /// `observe` per completed tick, folding in per-robot detector
    /// verdicts, ingest slot freshness and capsule counts — returned in
    /// [`FleetOutcome::health`].
    pub fn health(mut self, yes: bool) -> Self {
        self.health = yes;
        self
    }

    /// Executes the fleet run: one `step_batch` per control iteration.
    ///
    /// # Errors
    ///
    /// Propagates planning, detector-construction and stepping failures
    /// (a failing robot aborts the run; per-robot fault isolation is the
    /// engine-level [`FleetEngine::result`] API).
    pub fn run(self) -> Result<FleetOutcome> {
        let system = match self.kind {
            RobotKind::Khepera => presets::khepera_system(),
            RobotKind::Tamiya => presets::tamiya_system(),
        };
        let arena = presets::evaluation_arena();
        let mission = Mission::evaluation_default();
        let path = mission.plan(&arena, 0.08)?;
        let (sx, sy) = path.waypoints()[0];
        let (lx, ly) = path.lookahead_point(sx, sy, 0.25);
        let theta0 = (ly - sy).atan2(lx - sx);
        let x0 = Vector::from_slice(&[sx, sy, theta0]);

        // Pin the intra-step path to sequential up front so fleet
        // construction cannot depend on the machine's core count.
        let mut config = self.config.clone();
        if config.threads.is_none() {
            config.threads = Some(1);
        }

        let duration = self.duration.unwrap_or_else(|| self.scenario.duration());
        let dt = presets::CONTROL_PERIOD;
        // One system instance per signature group. Group 0 reuses the
        // worlds' system; further groups get fresh (pointer-distinct,
        // numerically identical) preset instantiations, which is exactly
        // what makes the fleet engine partition them apart.
        let detector_systems: Vec<_> = (0..self.signature_groups)
            .map(|g| {
                if g == 0 {
                    system.clone()
                } else {
                    match self.kind {
                        RobotKind::Khepera => presets::khepera_system(),
                        RobotKind::Tamiya => presets::tamiya_system(),
                    }
                }
            })
            .collect();
        let mut worlds = Vec::with_capacity(self.robots);
        let mut detectors = Vec::with_capacity(self.robots);
        for robot in 0..self.robots {
            let scenario = phase_shifted(&self.scenario, robot * self.phase);
            let misbehaviors = scenario.misbehaviors().to_vec();
            let sensing: Vec<SensingWorkflow> = (0..system.sensor_count())
                .map(|i| {
                    let geometry = (system.sensor_name(i) == "wheel-encoder")
                        .then(WheelEncoderOdometry::khepera)
                        .transpose()
                        .map_err(SimError::from)?;
                    SensingWorkflow::new(&system, i, &misbehaviors, geometry)
                })
                .collect::<Result<_>>()?;
            let tracker: Box<dyn TrackingController> = match self.kind {
                RobotKind::Khepera => Box::new(DifferentialDriveTracker::new(
                    path.clone(),
                    presets::khepera_dynamics().wheel_base(),
                    presets::CONTROL_PERIOD,
                )?),
                RobotKind::Tamiya => Box::new(BicycleTracker::new(
                    path.clone(),
                    presets::tamiya_dynamics().max_steer(),
                    presets::CONTROL_PERIOD,
                )?),
            };
            let group_system = &detector_systems[robot % detector_systems.len()];
            detectors.push(RoboAds::new(
                group_system.clone(),
                config.clone(),
                x0.clone(),
                ModeSet::one_reference_per_sensor(group_system),
            )?);
            let (attacks, attack_rng) = build_attacks(&self.attacks, self.seed + robot as u64);
            let held_readings: Vec<Vector> = (0..system.sensor_count())
                .map(|i| Ok(Vector::zeros(system.sensor(i)?.dim())))
                .collect::<Result<_>>()?;
            worlds.push(RobotWorld {
                tracker,
                sensing,
                actuation: ActuationWorkflow::new(&misbehaviors),
                platform: RobotPlatform::new(&system, x0.clone())?,
                bus: Bus::new(),
                rng: StdRng::seed_from_u64(self.seed + robot as u64),
                controller_pose: Pose2::from_vector(&x0).expect("pose state"),
                trace: Trace::new(dt, scenario.name()),
                scenario,
                u_planned: Vector::zeros(system.input_dim()),
                u_executed: Vector::zeros(system.input_dim()),
                d_a_true: Vector::zeros(system.input_dim()),
                readings: Vec::new(),
                d_s_true: Vec::new(),
                attacks,
                attack_rng,
                held_readings,
                held_command: Vector::zeros(system.input_dim()),
            });
        }

        let mut fleet = FleetEngine::new(detectors, self.threads);
        if let Some(t) = &self.telemetry {
            fleet.set_telemetry(t.clone());
        }
        if let Some(config) = self.recorder {
            fleet.attach_recorder(config);
        }
        let mut health = self.health.then(|| {
            let mut board = FleetHealth::new(self.robots);
            if let Some(t) = &self.telemetry {
                board.set_telemetry(t.clone());
            }
            board
        });
        let mut ingest = self.ingest.map(|policy| {
            let mut ingest = FleetIngest::for_fleet(&fleet).with_policy(policy);
            if let Some(t) = &self.telemetry {
                ingest.set_telemetry(t.clone());
            }
            ingest
        });

        for k in 0..duration {
            // Advance every world: plan, actuate, move, sense — data
            // round-trips through each robot's own communication bus,
            // exactly as in the standalone runner.
            for w in &mut worlds {
                w.u_planned = w.tracker.command(&w.controller_pose);
                let (u_executed, d_a_true) = w.actuation.execute(k, &w.u_planned)?;
                w.u_executed = u_executed;
                w.d_a_true = d_a_true;
                w.platform.step(&system, &w.u_executed, &mut w.rng);
                w.bus.clear();
                w.bus.begin_tick(k as u64);
                w.bus
                    .publish(Frame::encode(COMMAND_ID, "planner", &w.u_planned));
                w.d_s_true.clear();
                for wf in &mut w.sensing {
                    let (reading, anomaly) =
                        wf.sense(&system, k, w.platform.state(), &mut w.rng)?;
                    w.bus.publish(Frame::encode(
                        SENSOR_ID_BASE + wf.sensor_index() as u16,
                        system.sensor_name(wf.sensor_index()),
                        &reading,
                    ));
                    w.d_s_true.push(anomaly);
                }
                // Bus-level attacks perturb frames at the monitor seam,
                // exactly as in the standalone runner.
                for attack in &mut w.attacks {
                    attack.apply(k, &mut w.bus, &mut w.attack_rng);
                }
                // The monitor consumes the staleness-aware fresh view;
                // an id whose frame was trashed or replayed stale holds
                // the last consumed value instead of panicking.
                w.readings.clear();
                for i in 0..system.sensor_count() {
                    if let Some(frame) = w.bus.latest_fresh(SENSOR_ID_BASE + i as u16) {
                        w.held_readings[i] = frame.decode();
                    }
                    w.readings.push(w.held_readings[i].clone());
                }
                if let Some(frame) = w.bus.latest_fresh(COMMAND_ID) {
                    w.held_command = frame.decode();
                }
                w.u_planned = w.held_command.clone();
            }

            match &mut ingest {
                // Sync monitor: one aligned dense batch for the fleet,
                // stamped with the worlds' shared bus tick.
                None => {
                    let inputs: Vec<RobotInput> = worlds
                        .iter()
                        .map(|w| RobotInput {
                            u_prev: &w.u_planned,
                            readings: &w.readings,
                        })
                        .collect();
                    fleet.set_tick_stamp(k as u64);
                    fleet.step_batch(&inputs)?;
                }
                // Async monitor: the same decoded frames are offered to
                // the ingest front-end as tick-stamped arrivals, and the
                // tick boundary publishes whatever completed. Transport
                // faults perturb only the monitor's copy — each world's
                // closed loop above is already done for this tick.
                Some(ingest) => {
                    for (robot, w) in worlds.iter().enumerate() {
                        let fault = self
                            .faults
                            .iter()
                            .find(|(r, window, _)| *r == robot && window.contains(&k))
                            .map(|(_, _, fault)| *fault);
                        let stamp = match fault {
                            // Lost on the wire: nothing to offer.
                            Some(FrameFault::Drop) => continue,
                            // Delivered a tick late: stamped for the
                            // window that already swapped, so the ingest
                            // rejects it. Tick 0 has no previous window —
                            // the frame is still in flight.
                            Some(FrameFault::Delay) => match (k as u64).checked_sub(1) {
                                Some(previous) => previous,
                                None => continue,
                            },
                            None => w.bus.tick(),
                        };
                        ingest.offer_input_stamped(robot, &w.u_planned, stamp)?;
                        for (s, reading) in w.readings.iter().enumerate() {
                            ingest.offer_stamped(robot, s, reading, stamp)?;
                        }
                    }
                    let summary = ingest.swap();
                    fleet.set_tick_stamp(summary.tick);
                    let inputs: Vec<Option<RobotInput>> =
                        (0..worlds.len()).map(|r| ingest.input(r)).collect();
                    if fleet.step_batch_masked(&inputs).is_err() {
                        // A missed deadline is the faulted robot's
                        // per-tick verdict, carried in its `result`;
                        // anything else is a real failure.
                        for robot in 0..worlds.len() {
                            if let Err(e) = fleet.result(robot) {
                                if !matches!(e, CoreError::MissedDeadline { .. }) {
                                    return Err(e.clone().into());
                                }
                            }
                        }
                    }
                }
            }

            if let Some(board) = &mut health {
                board.observe(&fleet, ingest.as_ref());
            }

            for (robot, w) in worlds.iter_mut().enumerate() {
                w.controller_pose =
                    Pose2::from_vector(&w.readings[0]).expect("IPS readings carry a pose");
                w.trace.push(TraceRecord {
                    k,
                    time: (k + 1) as f64 * dt,
                    true_state: w.platform.state().clone(),
                    planned_command: w.u_planned.clone(),
                    executed_command: w.u_executed.clone(),
                    true_actuator_anomaly: w.d_a_true.clone(),
                    readings: w.readings.clone(),
                    true_sensor_anomalies: w.d_s_true.clone(),
                    report: fleet.report(robot).clone(),
                });
            }
        }

        fleet.finish_recorders();
        let capsules = fleet.take_capsules();

        let mut traces = Vec::with_capacity(self.robots);
        let mut evals = Vec::with_capacity(self.robots);
        for w in worlds {
            evals.push(evaluate(&w.trace, &w.scenario.ground_truth()));
            traces.push(w.trace);
        }
        Ok(FleetOutcome {
            robots: self.robots,
            steps: duration,
            threads: self.threads,
            traces,
            evals,
            capsules,
            health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::SimulationBuilder;

    #[test]
    fn robot_zero_matches_a_standalone_run_bitwise() {
        // Phase offsets only shift robots 1.. — robot 0 replays the base
        // scenario from the base seed, so its trace must be *identical*
        // to the single-robot runner's (same bus round-trip, same rng
        // stream, and the fleet engine's per-robot path is bitwise the
        // standalone detector's).
        let fleet = FleetSimulationBuilder::khepera()
            .scenario(Scenario::ips_spoofing())
            .robots(3)
            .phase(7)
            .seed(11)
            .duration(70)
            .run()
            .unwrap();
        let solo = SimulationBuilder::khepera()
            .scenario(Scenario::ips_spoofing())
            .seed(11)
            .duration(70)
            .run()
            .unwrap();
        let a = &fleet.traces[0].records()[69];
        let b = &solo.trace.records()[69];
        assert_eq!(a.true_state, b.true_state);
        assert_eq!(a.readings, b.readings);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn phase_offsets_shift_each_robots_detection() {
        let outcome = FleetSimulationBuilder::khepera()
            .scenario(Scenario::ips_spoofing())
            .robots(3)
            .phase(10)
            .seed(5)
            .duration(100)
            .run()
            .unwrap();
        // Every robot detects its own shifted attack with a small,
        // comparable delay relative to its own onset.
        for (robot, eval) in outcome.evals.iter().enumerate() {
            let delay = eval
                .sensor_delay()
                .unwrap_or_else(|| panic!("robot {robot} should detect"));
            assert!(delay < 1.0, "robot {robot} delay {delay}");
        }
    }

    #[test]
    fn thread_count_does_not_change_fleet_results() {
        let run = |threads| {
            FleetSimulationBuilder::khepera()
                .scenario(Scenario::wheel_logic_bomb())
                .robots(4)
                .phase(3)
                .seed(2)
                .threads(threads)
                .duration(60)
                .run()
                .unwrap()
        };
        let seq = run(1);
        let par = run(3);
        for robot in 0..4 {
            for (a, b) in seq.traces[robot]
                .records()
                .iter()
                .zip(par.traces[robot].records())
            {
                assert_eq!(a.report, b.report, "robot {robot} step {}", a.k);
            }
        }
    }

    /// The tentpole equality proof: with every frame on time, the async
    /// ingest monitor is *bitwise* invisible — every robot's full report
    /// stream equals the sync path's.
    #[test]
    fn async_ingest_with_on_time_frames_matches_sync_mode_bitwise() {
        let build = || {
            FleetSimulationBuilder::khepera()
                .scenario(Scenario::ips_spoofing())
                .robots(3)
                .phase(7)
                .seed(11)
                .duration(60)
        };
        let sync = build().run().unwrap();
        let async_run = build().ingest(DeadlinePolicy::MarkMissing).run().unwrap();
        for robot in 0..3 {
            for (a, b) in sync.traces[robot]
                .records()
                .iter()
                .zip(async_run.traces[robot].records())
            {
                assert_eq!(a.report, b.report, "robot {robot} step {}", a.k);
                assert_eq!(a.readings, b.readings);
            }
        }
    }

    /// A robot whose frames are dropped (or delayed past the deadline)
    /// on the monitor side stalls only its own detector: its reports
    /// freeze through the window, every other robot's stream stays
    /// bitwise identical to the fault-free run, and a delayed frame is
    /// rejected and counted rather than consumed a tick late.
    #[test]
    fn monitor_side_faults_isolate_the_faulted_robot() {
        use roboads_obs::RingBufferSink;
        use std::sync::Arc;
        const FAULTED: usize = 1;
        let build = || {
            FleetSimulationBuilder::khepera()
                .scenario(Scenario::ips_spoofing())
                .robots(3)
                .phase(7)
                .seed(11)
                .duration(40)
                .ingest(DeadlinePolicy::MarkMissing)
        };
        let clean = build().run().unwrap();
        for (fault, rejected) in [(FrameFault::Drop, 0), (FrameFault::Delay, 4 * 2)] {
            let ring = Arc::new(RingBufferSink::new(4096));
            let telemetry = Telemetry::new(ring.clone());
            let faulted = build()
                .frame_fault(FAULTED, 20..24, fault)
                .telemetry(telemetry.clone())
                .run()
                .unwrap();
            for robot in [0, 2] {
                for (a, b) in clean.traces[robot]
                    .records()
                    .iter()
                    .zip(faulted.traces[robot].records())
                {
                    assert_eq!(a.report, b.report, "robot {robot} perturbed at {}", a.k);
                }
            }
            let records = faulted.traces[FAULTED].records();
            for k in 20..24 {
                assert_eq!(
                    records[k].report, records[19].report,
                    "{fault:?}: faulted robot's report not frozen at {k}"
                );
            }
            // Before the window the faulted robot matches the clean run;
            // its world (ground truth, readings) is never perturbed.
            assert_eq!(
                records[19].report,
                clean.traces[FAULTED].records()[19].report
            );
            for (a, b) in clean.traces[FAULTED].records().iter().zip(records) {
                assert_eq!(a.readings, b.readings);
                assert_eq!(a.true_state, b.true_state);
            }
            // 4 ticks × (1 command + sensor frames) late offers — only
            // in Delay mode, where frames arrive stamped a tick old.
            let m = telemetry.metrics();
            let expected = if fault == FrameFault::Delay {
                // command + 3 sensors per tick, 4 ticks
                4 * 4
            } else {
                rejected
            };
            assert_eq!(m.counter_value("ingest.frames_rejected"), Some(expected));
            assert_eq!(
                m.counter_value("ingest.robots_missing"),
                Some(4),
                "{fault:?}: the faulted robot misses exactly its window"
            );
        }
    }

    #[test]
    fn hold_last_keeps_the_faulted_robot_stepping() {
        const FAULTED: usize = 2;
        let outcome = FleetSimulationBuilder::khepera()
            .scenario(Scenario::clean())
            .robots(3)
            .seed(4)
            .duration(30)
            .ingest(DeadlinePolicy::HoldLast)
            .frame_fault(FAULTED, 15..17, FrameFault::Drop)
            .run()
            .unwrap();
        let records = outcome.traces[FAULTED].records();
        // Held ticks still produce *new* reports (the detector stepped,
        // on last tick's readings) — unlike MarkMissing's frozen ones.
        assert_ne!(records[15].report, records[14].report);
        assert_eq!(
            records[15].report.iteration,
            records[14].report.iteration + 1
        );
    }

    /// A mixed-signature fleet (per-robot system instances dealt across
    /// groups) must produce bitwise the same traces as the homogeneous
    /// fleet — the per-group slab partition is invisible — while the
    /// health board shows the fleet actually split into slab groups.
    #[test]
    fn signature_groups_are_bitwise_invisible_and_visible_on_the_board() {
        let run = |groups| {
            FleetSimulationBuilder::khepera()
                .scenario(Scenario::ips_spoofing())
                .robots(16)
                .phase(3)
                .seed(9)
                .duration(40)
                .signature_groups(groups)
                .health(true)
                .run()
                .unwrap()
        };
        let homogeneous = run(1);
        let mixed = run(2);
        for robot in 0..16 {
            for (a, b) in homogeneous.traces[robot]
                .records()
                .iter()
                .zip(mixed.traces[robot].records())
            {
                assert_eq!(a.report, b.report, "robot {robot} step {}", a.k);
            }
        }
        // 16 robots in two 8-robot groups: both fill an 8-lane tile.
        let board = mixed.health.as_ref().unwrap();
        assert_eq!(board.slab_groups(), 2);
        assert_eq!(board.slab_robots(), 16);
        assert_eq!(board.scalar_robots(), 0);
        let solo = homogeneous.health.as_ref().unwrap();
        assert_eq!(solo.slab_groups(), 1);
        assert_eq!(solo.slab_robots(), 16);
    }

    /// Bus-level attacks work on the fleet builder too: every robot's
    /// bus is attacked (with per-robot attacker streams), a trashed
    /// fleet completes without panics, and every robot indicts the
    /// frozen sensor.
    #[test]
    fn fleet_wide_frame_trash_holds_and_detects_per_robot() {
        use crate::attacks::{AttackKind, AttackSpec};
        let outcome = FleetSimulationBuilder::khepera()
            .scenario(Scenario::clean())
            .robots(3)
            .seed(5)
            .duration(120)
            .bus_attack(AttackSpec::new(
                AttackKind::FrameTrash,
                0,
                0.0,
                60,
                Some(40),
            ))
            .run()
            .unwrap();
        for (robot, trace) in outcome.traces.iter().enumerate() {
            let records = trace.records();
            assert_eq!(
                records[80].readings[0], records[59].readings[0],
                "robot {robot}: IPS not held"
            );
            assert!(
                records[60..100]
                    .iter()
                    .any(|r| r.report.misbehaving_sensors.contains(&0)),
                "robot {robot}: frozen IPS not identified"
            );
        }
    }

    /// Registering no attack leaves the fleet bitwise identical to the
    /// pre-seam code path — and a MITM attack on the fleet perturbs
    /// detection the same way the standalone seam does (robot 0 shares
    /// the standalone run's seed and trajectory).
    #[test]
    fn fleet_mitm_matches_the_standalone_seam_bitwise() {
        use crate::attacks::{AttackKind, AttackSpec};
        let spec = AttackSpec::new(AttackKind::MitmRewrite, 0, 0.1, 50, Some(30));
        let fleet = FleetSimulationBuilder::khepera()
            .scenario(Scenario::clean())
            .robots(2)
            .seed(11)
            .duration(90)
            .bus_attack(spec.clone())
            .run()
            .unwrap();
        let solo = SimulationBuilder::khepera()
            .scenario(Scenario::clean())
            .seed(11)
            .duration(90)
            .bus_attack(spec)
            .run()
            .unwrap();
        for (a, b) in fleet.traces[0].records().iter().zip(solo.trace.records()) {
            assert_eq!(a.readings, b.readings, "step {}", a.k);
            assert_eq!(a.report, b.report, "step {}", a.k);
        }
    }

    #[test]
    fn fleet_spans_carry_robot_attribution() {
        use roboads_obs::RingBufferSink;
        use std::sync::Arc;
        let ring = Arc::new(RingBufferSink::new(100_000));
        FleetSimulationBuilder::khepera()
            .scenario(Scenario::clean())
            .robots(3)
            .duration(5)
            .telemetry(Telemetry::new(ring.clone()))
            .run()
            .unwrap();
        let spans = ring.spans();
        let mut seen: Vec<u32> = spans
            .iter()
            .filter(|s| s.name == "engine.step")
            .map(|s| s.robot)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![1, 2, 3], "each robot's steps are attributed");
    }
}
