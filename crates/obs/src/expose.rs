//! Prometheus-style text exposition for metrics snapshots.
//!
//! ## Naming conventions
//!
//! Dotted internal metric names (`sim.step_latency_s`) are sanitized to
//! the exposition charset `[a-zA-Z0-9_:]` (`sim_step_latency_s`); a
//! leading digit gains a `_` prefix. Per-robot series carry a
//! `robot="<index>"` label rather than a per-robot metric name, so a
//! fleet of any size stays one time series family per quantity.
//! Histogram summaries expand to `<name>_count`, `<name>_sum`,
//! `<name>_min`, `<name>_max` plus `<name>{quantile="…"}` samples
//! (Prometheus summary convention). Non-finite values are rendered with
//! the exposition literals `NaN`, `+Inf` and `-Inf`.

use crate::metrics::MetricsSnapshot;

/// Rewrites `name` into the Prometheus metric-name charset: characters
/// outside `[a-zA-Z0-9_:]` become `_`, and a leading digit is prefixed
/// with `_`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

fn render_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        out.push_str(&format!("{v:?}"));
    }
}

/// Incremental builder for one exposition document.
#[derive(Debug, Default)]
pub struct PrometheusText {
    out: String,
}

impl PrometheusText {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `# HELP` line. `name` is sanitized; `help` newlines
    /// are flattened to spaces (the format is line-oriented).
    pub fn help(&mut self, name: &str, help: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(&sanitize(name));
        self.out.push(' ');
        for c in help.chars() {
            self.out.push(if c == '\n' || c == '\r' { ' ' } else { c });
        }
        self.out.push('\n');
    }

    /// Appends a `# TYPE` line (`counter`, `gauge`, `summary`, …).
    pub fn type_(&mut self, name: &str, kind: &str) {
        self.out.push_str("# TYPE ");
        self.out.push_str(&sanitize(name));
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Appends one sample line: `name{labels} value`. Label values are
    /// escaped per the exposition format (`\\`, `\"`, `\n`).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(&sanitize(name));
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(&sanitize(k));
                self.out.push_str("=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        _ => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        render_value(&mut self.out, value);
        self.out.push('\n');
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders a whole [`MetricsSnapshot`] as exposition text: counters as
/// `counter`, gauges as `gauge`, histogram summaries as `summary`
/// families (count/sum/min/max + quantile samples).
pub fn render_snapshot(snap: &MetricsSnapshot) -> String {
    let mut p = PrometheusText::new();
    for (name, v) in &snap.counters {
        p.type_(name, "counter");
        p.sample(name, &[], *v as f64);
    }
    for (name, v) in &snap.gauges {
        p.type_(name, "gauge");
        p.sample(name, &[], *v);
    }
    for (name, s) in &snap.histograms {
        p.type_(name, "summary");
        p.sample(&format!("{name}_count"), &[], s.count as f64);
        // The registry tracks the exact mean, not the raw sum — recover
        // the sum so `_sum / _count` works the standard way.
        let sum = if s.count == 0 {
            0.0
        } else {
            s.mean * s.count as f64
        };
        p.sample(&format!("{name}_sum"), &[], sum);
        p.sample(&format!("{name}_min"), &[], s.min);
        p.sample(&format!("{name}_max"), &[], s.max);
        for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
            p.sample(name, &[("quantile", q)], v);
        }
    }
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn sanitize_rewrites_invalid_chars_and_leading_digits() {
        assert_eq!(sanitize("sim.step_latency_s"), "sim_step_latency_s");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("2fast"), "_2fast");
        assert_eq!(sanitize("ok:name_9"), "ok:name_9");
    }

    #[test]
    fn samples_render_labels_escapes_and_nonfinite_literals() {
        let mut p = PrometheusText::new();
        p.sample("m", &[("robot", "3"), ("label", "a\"b\\c\nd")], 1.5);
        p.sample("nan", &[], f64::NAN);
        p.sample("inf", &[], f64::INFINITY);
        p.sample("ninf", &[], f64::NEG_INFINITY);
        let text = p.finish();
        assert!(
            text.contains(r#"m{robot="3",label="a\"b\\c\nd"} 1.5"#),
            "{text}"
        );
        assert!(text.contains("nan NaN\n"), "{text}");
        assert!(text.contains("inf +Inf\n"), "{text}");
        assert!(text.contains("ninf -Inf\n"), "{text}");
    }

    #[test]
    fn snapshot_renders_counter_gauge_and_summary_families() {
        let reg = MetricsRegistry::new();
        reg.counter("fleet.ticks").add(7);
        reg.gauge("fleet.alarm_rate").set(0.25);
        let h = reg.histogram("sim.step_latency_s");
        for i in 1..=100 {
            h.record(i as f64 * 1e-4);
        }
        let text = render_snapshot(&reg.snapshot());
        assert!(
            text.contains("# TYPE fleet_ticks counter\nfleet_ticks 7.0\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE fleet_alarm_rate gauge\nfleet_alarm_rate 0.25\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE sim_step_latency_s summary\n"),
            "{text}"
        );
        assert!(text.contains("sim_step_latency_s_count 100.0\n"), "{text}");
        assert!(text.contains("sim_step_latency_s_min 0.0001\n"), "{text}");
        assert!(
            text.contains(r#"sim_step_latency_s{quantile="0.5"}"#),
            "{text}"
        );
        assert!(
            text.contains(r#"sim_step_latency_s{quantile="0.99"}"#),
            "{text}"
        );
    }

    #[test]
    fn empty_histogram_renders_nan_quantiles_and_zero_sum() {
        let reg = MetricsRegistry::new();
        reg.histogram("h");
        let text = render_snapshot(&reg.snapshot());
        assert!(text.contains("h_count 0.0\n"), "{text}");
        assert!(text.contains("h_sum 0.0\n"), "{text}");
        assert!(text.contains(r#"h{quantile="0.5"} NaN"#), "{text}");
    }
}
