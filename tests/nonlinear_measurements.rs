//! The paper's headline capability is *fully nonlinear* systems. The
//! built-in evaluation sensors happen to be affine in the state, so this
//! suite drives the detector with a genuinely nonlinear measurement
//! model — beacon ranging, `h_i(x) = ‖(x,y) − b_i‖` — and checks that
//! per-iteration re-linearization handles it end to end.

use std::sync::Arc;

use roboads::stats::{SeedableRng, StdRng};

use roboads::core::{ModeSet, RoboAds, RoboAdsConfig};
use roboads::linalg::{Matrix, Vector};
use roboads::models::dynamics::Unicycle;
use roboads::models::sensors::{BeaconRange, Ips, SensorModel};
use roboads::models::{DynamicsModel, RobotSystem};
use roboads::stats::MultivariateNormal;

/// Unicycle with an IPS (full pose) and a 3-anchor beacon ranging
/// system (nonlinear in x, blind to θ).
fn beacon_system() -> RobotSystem {
    let dynamics: Arc<dyn DynamicsModel> = Arc::new(Unicycle::new(0.1).unwrap());
    let ips: Arc<dyn SensorModel> = Arc::new(Ips::new(0.01, 0.01).unwrap());
    let beacons: Arc<dyn SensorModel> =
        Arc::new(BeaconRange::new(vec![(0.0, 0.0), (6.0, 0.0), (3.0, 6.0)], 0.02).unwrap());
    RobotSystem::new(
        dynamics,
        Matrix::from_diagonal(&[1e-5, 1e-5, 1e-5]),
        vec![ips, beacons],
    )
    .unwrap()
}

/// Drives an arc and feeds noisy readings, optionally attacking one
/// workflow; returns the per-iteration identified sensor sets.
fn drive(
    system: &RobotSystem,
    ads: &mut RoboAds,
    attack: impl Fn(usize, &mut Vec<Vector>),
    iterations: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let process = MultivariateNormal::zero_mean(system.process_noise().clone()).unwrap();
    let mut x_true = Vector::from_slice(&[2.0, 1.0, 0.5]);
    let u = Vector::from_slice(&[0.3, 0.2]);
    let mut detected = Vec::new();
    for k in 0..iterations {
        x_true = &system.dynamics().step(&x_true, &u) + &process.sample(&mut rng);
        let mut readings: Vec<Vector> = (0..system.sensor_count())
            .map(|i| {
                let s = system.sensor(i).unwrap();
                let noise = MultivariateNormal::zero_mean(s.noise_covariance()).unwrap();
                &s.measure(&x_true) + &noise.sample(&mut rng)
            })
            .collect();
        attack(k, &mut readings);
        detected.push(ads.step(&u, &readings).unwrap().misbehaving_sensors);
    }
    detected
}

/// Mode set: beacons cannot reference alone (θ-blind), so they are
/// grouped with the IPS; the IPS can stand alone.
fn modes(system: &RobotSystem) -> ModeSet {
    ModeSet::from_reference_groups(system, &[vec![0], vec![0, 1]])
}

#[test]
fn clean_nonlinear_run_is_quiet() {
    let system = beacon_system();
    let mut ads = RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults(),
        Vector::from_slice(&[2.0, 1.0, 0.5]),
        modes(&system),
    )
    .unwrap();
    let detected = drive(&system, &mut ads, |_, _| {}, 100, 5);
    let positives = detected.iter().filter(|d| !d.is_empty()).count();
    assert!(positives <= 2, "clean run flagged {positives} iterations");
}

#[test]
fn spoofed_beacon_workflow_is_identified_through_the_nonlinearity() {
    let system = beacon_system();
    let mut ads = RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults(),
        Vector::from_slice(&[2.0, 1.0, 0.5]),
        modes(&system),
    )
    .unwrap();
    // Spoof one anchor's range by 0.3 m from k = 40 on.
    let detected = drive(
        &system,
        &mut ads,
        |k, readings| {
            if k >= 40 {
                readings[1][0] += 0.3;
            }
        },
        100,
        5,
    );
    // Identified within half a second and held.
    assert!(
        detected[45..].iter().all(|d| d == &vec![1]),
        "{:?}",
        &detected[40..50]
    );
    assert!(detected[..40].iter().all(|d| d.is_empty()));
}

#[test]
fn beacons_alone_cannot_reference_and_validation_says_why() {
    let system = beacon_system();
    let bad = ModeSet::from_reference_groups(&system, &[vec![1]]);
    let err = RoboAds::new(
        system,
        RoboAdsConfig::paper_defaults(),
        Vector::from_slice(&[2.0, 1.0, 0.5]),
        bad,
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("cannot reconstruct the state") || msg.contains("actuator channels"),
        "unexpected: {msg}"
    );
}

#[test]
fn beacon_geometry_matters_for_observability() {
    // Collinear anchors leave a mirror ambiguity: position becomes
    // unobservable along the reflection, which the observability check
    // must catch when the beacons are asked to reference with a
    // heading-only companion.
    use roboads::models::observability::observability_rank;
    use roboads::models::sensors::Magnetometer;

    let dynamics: Arc<dyn DynamicsModel> = Arc::new(Unicycle::new(0.1).unwrap());
    let collinear: Arc<dyn SensorModel> =
        Arc::new(BeaconRange::new(vec![(0.0, 0.0), (3.0, 0.0), (6.0, 0.0)], 0.02).unwrap());
    let mag: Arc<dyn SensorModel> = Arc::new(Magnetometer::new(0.01).unwrap());
    let system = RobotSystem::new(
        dynamics,
        Matrix::from_diagonal(&[1e-5, 1e-5, 1e-5]),
        vec![collinear, mag],
    )
    .unwrap();
    // On the beacon line itself the Jacobian rows are parallel (±x̂):
    // rank drops.
    let on_line = Vector::from_slice(&[2.0, 0.0, 0.3]);
    let u = Vector::from_slice(&[0.0, 0.0]);
    let rank = observability_rank(&system, &[0, 1], &on_line, &u).unwrap();
    assert!(
        rank < 3,
        "collinear geometry should lose a direction, rank {rank}"
    );
    // Off the line the triangulation works.
    let off_line = Vector::from_slice(&[2.0, 2.0, 0.3]);
    let rank = observability_rank(&system, &[0, 1], &off_line, &u).unwrap();
    assert_eq!(rank, 3);
}
