//! The second evaluation robot (§V-D): the Tamiya TT-02 Ackermann car
//! with bicycle dynamics and an IPS + IMU + LiDAR suite, running the
//! same mission under a steering take-over and an IMU logic bomb.
//!
//! The point of §V-D is generalizability: nothing about the detector is
//! retuned — the same `RoboAdsConfig::paper_defaults()` drives a robot
//! with a completely different kinematic function.
//!
//! ```text
//! cargo run --release --example tamiya_mission
//! ```

use roboads::sim::{Scenario, SimulationBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for scenario in [
        Scenario::tamiya_steering_takeover(),
        Scenario::tamiya_imu_logic_bomb(),
    ] {
        let name = scenario.name().to_string();
        let description = scenario.description().to_string();
        let outcome = SimulationBuilder::tamiya()
            .scenario(scenario)
            .seed(5)
            .run()?;
        println!("{name}: {description}");
        println!(
            "  sensor sequence {} / actuator sequence {}",
            outcome.eval.detected_sensor_sequence.join(" -> "),
            outcome.eval.detected_actuator_sequence.join(" -> "),
        );
        match (outcome.eval.sensor_delay(), outcome.eval.actuator_delay()) {
            (Some(d), _) => println!("  sensor misbehavior confirmed {d:.2} s after trigger"),
            (_, Some(d)) => println!("  actuator misbehavior confirmed {d:.2} s after trigger"),
            _ => println!("  nothing detected"),
        }
        println!(
            "  rates: S {:.2}%/{:.2}%  A {:.2}%/{:.2}%  (FPR/FNR)\n",
            outcome.eval.sensor_fpr() * 100.0,
            outcome.eval.sensor_fnr() * 100.0,
            outcome.eval.actuator_fpr() * 100.0,
            outcome.eval.actuator_fnr() * 100.0,
        );
    }
    Ok(())
}
