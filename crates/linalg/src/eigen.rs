use crate::{LinalgError, Matrix, Result, Vector};

/// Eigendecomposition `A = V·Λ·Vᵀ` of a symmetric matrix, computed by the
/// cyclic Jacobi rotation method.
///
/// The Jacobi method is slow for large matrices but extremely robust and
/// accurate for the small (≤ ~20×20) symmetric covariance matrices the
/// RoboADS estimator works with — and it yields the spectral data the
/// mode-likelihood computation needs: [`Matrix::pseudo_inverse`],
/// [`Matrix::pseudo_determinant`] and [`Matrix::rank`] are all derived
/// from this type.
///
/// # Example
///
/// ```
/// use roboads_linalg::Matrix;
///
/// # fn main() -> Result<(), roboads_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let eig = a.symmetric_eigen()?;
/// let mut evals = eig.eigenvalues().as_slice().to_vec();
/// evals.sort_by(|a, b| a.partial_cmp(b).unwrap());
/// assert!((evals[0] - 1.0).abs() < 1e-12);
/// assert!((evals[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vector,
    /// Columns are the eigenvectors, in the same order as `eigenvalues`.
    eigenvectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 64;

/// Off-diagonal magnitude (relative to the Frobenius norm) considered zero.
const CONVERGENCE_TOL: f64 = 1e-14;

impl SymmetricEigen {
    /// Decomposes a symmetric matrix.
    ///
    /// The strictly-lower triangle is ignored; the matrix is treated as
    /// symmetric using its upper triangle, which makes the decomposition
    /// robust to the tiny asymmetries covariance propagation produces.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input,
    /// [`LinalgError::Empty`] for an empty matrix, and
    /// [`LinalgError::NoConvergence`] if the rotations fail to converge
    /// (practically unreachable for finite input).
    pub fn new(m: &Matrix) -> Result<Self> {
        if !m.is_square() {
            return Err(LinalgError::NotSquare { shape: m.shape() });
        }
        let n = m.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        // Work on the symmetrized copy.
        let mut a = Matrix::from_fn(n, n, |i, j| if i <= j { m[(i, j)] } else { m[(j, i)] });
        let mut v = Matrix::identity(n);
        let norm = a.frobenius_norm().max(f64::MIN_POSITIVE);

        for _sweep in 0..MAX_SWEEPS {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off.sqrt() <= CONVERGENCE_TOL * norm {
                return Ok(SymmetricEigen {
                    eigenvalues: a.diagonal(),
                    eigenvectors: v,
                });
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[(p, q)];
                    if apq.abs() <= f64::MIN_POSITIVE {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    // Stable tangent of the rotation angle.
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;

                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    // Clean the rotated-out entry exactly.
                    a[(p, q)] = 0.0;
                    a[(q, p)] = 0.0;
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        Err(LinalgError::NoConvergence { sweeps: MAX_SWEEPS })
    }

    /// The eigenvalues (unsorted, matching eigenvector columns).
    pub fn eigenvalues(&self) -> &Vector {
        &self.eigenvalues
    }

    /// The eigenvector matrix; column `i` pairs with `eigenvalues()[i]`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Reconstructs `V·f(Λ)·Vᵀ`, applying `f` to each eigenvalue.
    ///
    /// This is the spectral-function primitive behind the pseudo-inverse
    /// (`f = λ ↦ 1/λ` on the significant spectrum) and matrix square
    /// roots.
    pub fn spectral_map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let n = self.dim();
        let v = &self.eigenvectors;
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let fl = f(self.eigenvalues[k]);
            if fl == 0.0 {
                continue;
            }
            for i in 0..n {
                for j in 0..n {
                    out[(i, j)] += fl * v[(i, k)] * v[(j, k)];
                }
            }
        }
        out
    }

    /// Smallest eigenvalue.
    pub fn min_eigenvalue(&self) -> f64 {
        self.eigenvalues
            .as_slice()
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b))
    }

    /// Largest eigenvalue.
    pub fn max_eigenvalue(&self) -> f64 {
        self.eigenvalues
            .as_slice()
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymmetricEigen) -> Matrix {
        e.spectral_map(|l| l)
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diagonal(&[3.0, 1.0, 2.0]);
        let e = a.symmetric_eigen().unwrap();
        let mut evals = e.eigenvalues().as_slice().to_vec();
        evals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((evals[0] - 1.0).abs() < 1e-12);
        assert!((evals[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 5.0]]).unwrap();
        let e = a.symmetric_eigen().unwrap();
        assert!((&reconstruct(&e) - &a).max_abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a =
            Matrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]).unwrap();
        let e = a.symmetric_eigen().unwrap();
        let v = e.eigenvectors();
        let vvt = v * &v.transpose();
        assert!((&vvt - &Matrix::identity(3)).max_abs() < 1e-12);
    }

    #[test]
    fn eigen_equation_holds() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = a.symmetric_eigen().unwrap();
        for k in 0..2 {
            let v = e.eigenvectors().column(k);
            let av = &a * &v;
            let lv = &v * e.eigenvalues()[k];
            assert!((&av - &lv).norm() < 1e-12);
        }
    }

    #[test]
    fn handles_indefinite_matrices() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let e = a.symmetric_eigen().unwrap();
        assert!((e.min_eigenvalue() + 1.0).abs() < 1e-12);
        assert!((e.max_eigenvalue() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uses_upper_triangle_for_asymmetric_noise() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0 + 1e-12, 2.0]]).unwrap();
        let e = a.symmetric_eigen().unwrap();
        assert!((e.max_eigenvalue() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_rows(&[&[7.0]]).unwrap();
        let e = a.symmetric_eigen().unwrap();
        assert_eq!(e.eigenvalues().as_slice(), &[7.0]);
        assert_eq!(e.eigenvectors()[(0, 0)], 1.0);
    }

    #[test]
    fn spectral_map_square_root() {
        let a = Matrix::from_diagonal(&[4.0, 9.0]);
        let e = a.symmetric_eigen().unwrap();
        let sqrt = e.spectral_map(f64::sqrt);
        assert!((&(&sqrt * &sqrt) - &a).max_abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            Matrix::zeros(2, 3).symmetric_eigen(),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            Matrix::zeros(0, 0).symmetric_eigen(),
            Err(LinalgError::Empty)
        ));
    }
}
