//! Robot dynamics and sensor models for the RoboADS reproduction.
//!
//! The RoboADS paper (DSN 2018) models a mobile robot as the nonlinear
//! discrete-time system
//!
//! ```text
//! x_k = f(x_{k-1}, u_{k-1}) + ζ_{k-1}        (kinematic model)
//! z_k = h(x_k) + ξ_k                         (measurement model)
//! ```
//!
//! and evaluates on two robots with distinct dynamics: a **Khepera III
//! differential-drive robot** (wheel encoder + LiDAR + indoor positioning
//! system) and a **Tamiya TT-02 Ackermann RC car** (LiDAR + IMU + IPS).
//! This crate provides:
//!
//! * [`DynamicsModel`] implementations — [`dynamics::DifferentialDrive`],
//!   [`dynamics::Bicycle`], [`dynamics::Unicycle`] — with analytic
//!   Jacobians (`A = ∂f/∂x`, `G = ∂f/∂u`) verified against numeric
//!   differentiation,
//! * [`SensorModel`] implementations — [`sensors::Ips`],
//!   [`sensors::WheelEncoderOdometry`], [`sensors::WallLidar`],
//!   [`sensors::InertialNav`], [`sensors::Gps`],
//!   [`sensors::Magnetometer`] — with measurement Jacobians `C = ∂h/∂x`,
//! * the [`Arena`] environment (rectangular room with obstacles) and the
//!   LiDAR raycaster,
//! * [`RobotSystem`], the assembled `f`/`h`/`Q`/`R` bundle the NUISE
//!   estimator consumes, with per-mode sensor stacking,
//! * [`observability`] analysis used to validate mode sets (§VI "sensor
//!   capabilities": a magnetometer alone cannot reconstruct the state and
//!   must be grouped with a position sensor),
//! * the [`presets`] used throughout the evaluation (`khepera_system`,
//!   `tamiya_system`).
//!
//! # Example
//!
//! ```
//! use roboads_linalg::Vector;
//! use roboads_models::{presets, DynamicsModel};
//!
//! let system = presets::khepera_system();
//! let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
//! let u = Vector::from_slice(&[0.05, 0.05]); // both wheels 5 cm/s
//! let x1 = system.dynamics().step(&x0, &u);
//! assert!(x1[0] > x0[0]); // moved along +x
//! ```

pub mod dynamics;
pub mod observability;
pub mod presets;
pub mod sensors;

mod angle;
mod environment;
mod jacobian;
mod pose;
mod system;

pub use angle::{angle_difference, wrap_angle};
pub use dynamics::DynamicsModel;
pub use environment::{Aabb, Arena, RaycastHit};
pub use jacobian::{numeric_jacobian, numeric_jacobian_wrt};
pub use pose::Pose2;
pub use sensors::SensorModel;
pub use system::{ModelSignature, RobotSystem, SensorSlice};

use std::error::Error;
use std::fmt;

/// Errors produced by model construction and assembly.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A geometric or physical parameter was out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value, formatted by the caller.
        value: String,
    },
    /// A sensor index was out of range for the system's sensor suite.
    UnknownSensor {
        /// The offending index.
        index: usize,
        /// Number of sensors in the suite.
        count: usize,
    },
    /// A state/input/measurement dimension did not match the model.
    DimensionMismatch {
        /// What was being assembled.
        what: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter { name, value } => {
                write!(f, "invalid model parameter {name} = {value}")
            }
            ModelError::UnknownSensor { index, count } => {
                write!(f, "sensor index {index} out of range for suite of {count}")
            }
            ModelError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "{what} dimension mismatch: expected {expected}, got {actual}"
            ),
        }
    }
}

impl Error for ModelError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ModelError::UnknownSensor { index: 5, count: 3 };
        assert!(e.to_string().contains("5"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
