//! Fleet-scale batched detection: N independent [`RoboAds`] detectors
//! stepped per control tick with dispatch amortized at *robot* grain.
//!
//! PR 2 measured why intra-step (per-mode) parallelism loses on the
//! evaluation banks: a pool dispatch costs tens of microseconds while a
//! warm NUISE mode step costs ~2 µs, so fanning 3–7 modes out buys
//! nothing. A fleet monitor has a much better unit of work — one whole
//! robot's detector step (engine fan-out, decision maker, report
//! refill, ~30 µs warm) — and hundreds of them per tick. The
//! [`FleetEngine`] therefore:
//!
//! * keeps a slab of per-robot cells (detector, caller-readable report
//!   and result slot), pre-warmed so the steady state allocates nothing
//!   on the sequential path;
//! * forces every per-robot engine onto its sequential intra-step path
//!   (`threads = Some(1)`) — parallelism lives at one grain only;
//! * partitions the fleet into **model-signature groups**
//!   ([`roboads_models::ModelSignature`] plus the engine-level config
//!   discriminants) and runs one SIMD slab per group, so a
//!   heterogeneous fleet keeps the lane-batched win for every group
//!   that fills a tile while odd robots run scalar individually (see
//!   `DESIGN.md` §16);
//! * submits pool jobs per *group* over contiguous lane-aligned robot
//!   ranges ([`roboads_pool::Pool::chunk_size_aligned`] with a minimum
//!   chunk floor), so per-tick dispatch overhead is O(workers), not
//!   O(robots), and no tile ever straddles two groups or two jobs;
//! * keeps each robot's arithmetic bitwise identical to a standalone
//!   [`RoboAds`] fed the same inputs — robots never share mutable
//!   state, so thread count, batch size and grouping cannot perturb
//!   results (pinned by `tests/fleet_determinism.rs`).

use std::collections::HashMap;
use std::sync::Arc;

use roboads_linalg::Vector;
use roboads_models::ModelSignature;
use roboads_obs::{Counter, Gauge, Telemetry, Value};
use roboads_pool::Pool;

use crate::config::{ActivationPolicy, Linearization};
use crate::detector::RoboAds;
use crate::engine::SlabCommit;
use crate::mode::ModeSet;
use crate::nuise_slab::NuiseSlabWorkspace;
use crate::recorder::RecorderConfig;
use crate::report::DetectionReport;
use crate::{CoreError, Result};

/// Minimum robots per pool job. A warm robot step is ~30 µs and a
/// dispatch ~20 µs, so a job must carry at least a handful of robots
/// before the wake-up pays for itself.
const MIN_ROBOTS_PER_JOB: usize = 4;

/// One robot's inputs for a fleet tick: the planned command of the
/// previous iteration and the fresh readings of every sensing workflow,
/// in suite order (exactly [`RoboAds::step`]'s arguments).
#[derive(Debug, Clone, Copy)]
pub struct RobotInput<'a> {
    /// Planned actuator command `u_{k-1}`.
    pub u_prev: &'a Vector,
    /// Sensor readings in suite order.
    pub readings: &'a [Vector],
}

/// Internal view unifying the dense ([`FleetEngine::step_batch`]) and
/// masked ([`FleetEngine::step_batch_masked`]) input shapes, so both
/// share one scheduling/slab implementation without the dense path
/// allocating a `Vec<Option<_>>` per tick (which would break the
/// warm-path zero-allocation invariant pinned by `tests/alloc.rs`).
#[derive(Clone, Copy)]
enum Inputs<'i, 'a> {
    Dense(&'i [RobotInput<'a>]),
    Masked(&'i [Option<RobotInput<'a>>]),
}

impl<'i, 'a> Inputs<'i, 'a> {
    fn len(&self) -> usize {
        match self {
            Inputs::Dense(inputs) => inputs.len(),
            Inputs::Masked(inputs) => inputs.len(),
        }
    }

    /// Robot `i`'s input, or `None` when it missed the tick boundary.
    /// Indexed by **fleet index** (the caller's robot order), not by
    /// internal cell position.
    fn get(&self, i: usize) -> Option<&'i RobotInput<'a>> {
        match self {
            Inputs::Dense(inputs) => Some(&inputs[i]),
            Inputs::Masked(inputs) => inputs[i].as_ref(),
        }
    }
}

/// Per-robot cell of the fleet slab: everything one robot's step
/// touches lives here, so a pool job owns its robots' cells exclusively
/// and the scheduler never synchronizes on shared detector state.
#[derive(Debug)]
struct RobotCell {
    detector: RoboAds,
    report: DetectionReport,
    /// Outcome of the robot's last step (`Ok` until its first failure).
    result: Result<()>,
    /// The robot's caller-facing fleet index. Cells are stored
    /// group-major once the partition resolves, so every input lookup,
    /// telemetry span, recorder stamp and error report maps back
    /// through this id.
    fleet: usize,
}

/// One pool job's slab scratch for the lane-batched fleet path: one
/// [`NuiseSlabWorkspace`] per mode, reused tick after tick so the warm
/// path allocates nothing. Jobs never share scratch, so the pool path
/// stays synchronization-free.
#[derive(Debug)]
struct SlabJob<const K: usize> {
    bank: Vec<NuiseSlabWorkspace<K>>,
}

/// Hashable image of an engine's [`ActivationPolicy`] for the group
/// key (the policy itself carries an `f64` margin, so it cannot derive
/// `Eq`/`Hash`; the bit pattern can).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ActivationKey {
    AlwaysFull,
    TopK {
        k: usize,
        audit_period: usize,
        wake_margin_bits: u64,
    },
}

impl From<ActivationPolicy> for ActivationKey {
    fn from(p: ActivationPolicy) -> Self {
        match p {
            ActivationPolicy::AlwaysFull => ActivationKey::AlwaysFull,
            ActivationPolicy::TopK {
                k,
                audit_period,
                wake_margin,
            } => ActivationKey::TopK {
                k,
                audit_period,
                wake_margin_bits: wake_margin.to_bits(),
            },
        }
    }
}

/// The grouping key of the heterogeneous-fleet partition: robots whose
/// keys are equal run bitwise-identical per-mode arithmetic and may
/// share a slab. The model half is [`ModelSignature`]; the rest are the
/// engine-level config discriminants the slab kernels specialize on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey {
    signature: ModelSignature,
    modes: ModeSet,
    compensate: bool,
    lanes: usize,
    /// Whether the engine relinearizes per iteration — the only
    /// linearization policy the slab kernels implement. Non-eligible
    /// robots still group (scalar groups step contiguously) but never
    /// slab.
    per_iteration: bool,
    /// Activation policy and the *current* active-mode set. Robots in
    /// one slab group step the same active set, so a fully-dormant mode
    /// skips its tile outright; drift (a robot waking or sleeping) is
    /// detected per tick and forces a re-partition (see
    /// [`FleetEngine::activation_drifted`]). The per-tick audit mode is
    /// deliberately *not* part of the key — it varies round-robin and
    /// is handled by per-mode lane masks instead of partition churn.
    activation: ActivationKey,
    active: Vec<bool>,
}

/// How one signature group executes its robots each tick.
#[derive(Debug)]
enum GroupKind {
    /// Per-robot scalar stepping: the group is smaller than one tile,
    /// configured with `slab_lanes: Some(1)`, or not on per-iteration
    /// linearization.
    Scalar,
    /// 4-lane slab scratch, one bank per pool job.
    K4(Vec<SlabJob<4>>),
    /// 8-lane slab scratch, one bank per pool job.
    K8(Vec<SlabJob<8>>),
}

/// One signature group of the resolved partition: a contiguous run of
/// `len` cells (cells are reordered group-major at resolution) plus the
/// execution kind decided by the **per-group** small-fleet rule — a
/// group slabs iff its *own* robot count fills at least one `K`-lane
/// tile, independent of the fleet total or any other group's size.
#[derive(Debug)]
struct SlabGroup {
    /// Robots in this group (cells `[start, start + len)` of the
    /// group-major order; `start` is the running prefix sum).
    len: usize,
    kind: GroupKind,
    /// The group's active-mode set at partition time (equal across
    /// members — it is part of the [`GroupKey`]). Slab groups compare
    /// it against every member each tick: a wake or sleep invalidates
    /// the partition, since the tiles' mode-skip schedule no longer
    /// matches. Scalar groups step per robot and tolerate drift.
    active: Vec<bool>,
}

/// Resolved state of the fleet's SIMD-batched slab path. Resolution is
/// lazy (first [`FleetEngine::step_batch`] after construction or
/// [`FleetEngine::push`]): any membership change resets the state to
/// [`SlabState::Unknown`], and the next batch re-partitions the fleet
/// into model-signature groups, reorders the cells group-major and
/// rebuilds each slab group's per-job scratch.
#[derive(Debug)]
enum SlabState {
    /// Not yet partitioned against the current fleet composition.
    Unknown,
    /// Partitioned: one [`SlabGroup`] per distinct [`GroupKey`], in
    /// first-appearance (fleet) order, covering every robot exactly
    /// once.
    Grouped(Vec<SlabGroup>),
}

/// Pre-registered fleet-level metric handles, so refreshing them on
/// re-partition does not touch the registry's lock-protected name map.
#[derive(Debug)]
struct FleetInstruments {
    /// Signature groups currently on the lane-batched slab path.
    slab_groups: Gauge,
    /// Robots stepped through slab tiles.
    slab_robots: Gauge,
    /// Robots stepped per-robot (sub-tile groups, `lanes == 1`, or
    /// non-per-iteration linearization).
    scalar_robots: Gauge,
    /// Re-partitions forced by membership changes (the first, lazy
    /// partition is construction, not a regroup).
    regroups: Counter,
}

impl FleetInstruments {
    fn new(telemetry: &Telemetry) -> Self {
        let m = telemetry.metrics();
        FleetInstruments {
            slab_groups: m.gauge("fleet.slab_groups"),
            slab_robots: m.gauge("fleet.slab_robots"),
            scalar_robots: m.gauge("fleet.scalar_robots"),
            regroups: m.counter("fleet.regroups"),
        }
    }
}

/// Steps a fleet of independent detectors, batched per control tick.
///
/// Robots may be fully heterogeneous — each cell owns a complete
/// [`RoboAds`], so mixed platforms, mode banks and configs coexist in
/// one fleet. Parallelism is at robot grain: a `threads > 1` fleet
/// splits each group into contiguous chunks, one pool job per worker
/// per tick.
///
/// # SIMD-batched slab path (per-group)
///
/// At the first batch after construction or [`FleetEngine::push`], the
/// fleet is partitioned into **model-signature groups**: robots sharing
/// one [`roboads_models::ModelSignature`] (same dynamics/sensor `Arc`s
/// and bitwise-equal process noise), mode bank, compensation setting,
/// per-iteration linearization and configured lane width
/// ([`crate::RoboAdsConfig::slab_lanes`], default 8). Each group whose
/// robot count fills at least one `K`-lane tile is stepped through
/// structure-of-arrays NUISE kernels that vectorize *across robots*;
/// the rest run the per-robot path. The small-fleet rule is
/// **per group**: a 40-robot fleet of five signatures with one 8-robot
/// group slabs that group — a group below its own lane width would run
/// every batch on a single mostly-masked tile, so it (and only it)
/// stays scalar, regardless of the fleet total.
///
/// Results are bitwise identical to the per-robot path in every case:
/// the slab kernels replicate the scalar arithmetic per lane, and any
/// lane that hits a numeric failure falls back to the scalar estimator
/// from its untouched filter state, reproducing the exact scalar
/// outcome within its group while other groups' lanes are untouched
/// (see `DESIGN.md` §13, §16).
///
/// # Example
///
/// ```
/// use roboads_core::{FleetEngine, ModeSet, RoboAds, RoboAdsConfig, RobotInput};
/// use roboads_linalg::Vector;
/// use roboads_models::presets;
///
/// # fn main() -> Result<(), roboads_core::CoreError> {
/// let system = presets::khepera_system();
/// let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
/// let make = || RoboAds::with_defaults(system.clone(), x0.clone());
/// let mut fleet = FleetEngine::new((0..8).map(|_| make()).collect::<Result<_, _>>()?, 1);
///
/// let u = Vector::from_slice(&[0.05, 0.05]);
/// let x1 = system.dynamics().step(&x0, &u);
/// let readings: Vec<_> = (0..3)
///     .map(|i| system.sensor(i).unwrap().measure(&x1))
///     .collect();
/// let inputs = vec![RobotInput { u_prev: &u, readings: &readings }; 8];
/// fleet.step_batch(&inputs)?;
/// assert!(!fleet.report(0).sensor_misbehavior_detected());
/// // One homogeneous signature group, all 8 robots on the slab path.
/// assert_eq!(fleet.slab_groups(), 1);
/// assert_eq!(fleet.slab_robots(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FleetEngine {
    /// Robot cells in *cell* order: fleet order until the first
    /// partition, group-major afterwards. [`FleetEngine::slots`] maps a
    /// fleet index to its cell.
    cells: Vec<RobotCell>,
    /// `slots[fleet_index]` = position of that robot's cell in
    /// [`FleetEngine::cells`]. Identity until the first partition.
    slots: Vec<usize>,
    /// Robot-grain worker pool; `None` runs the slab sequentially.
    pool: Option<Arc<Pool>>,
    threads: usize,
    /// Lazily-resolved per-group slab partition (see [`SlabState`]).
    slab: SlabState,
    /// Tick counter used to stamp recorded batches when the caller does
    /// not provide one.
    tick: u64,
    /// One-shot stamp override for the next batch (set by the ingest
    /// boundary from its [`crate::SwapSummary`]).
    pending_stamp: Option<u64>,
    /// Completed partitions, so a membership-forced re-partition can be
    /// told apart from the first (construction) one.
    partitions: u64,
    telemetry: Telemetry,
    instruments: FleetInstruments,
}

impl FleetEngine {
    /// Builds a fleet from per-robot detectors and a worker count
    /// (clamped to at least 1; `1` means fully sequential ticks).
    ///
    /// Every detector is forced onto its sequential intra-step path:
    /// the fleet parallelizes across robots, and nested per-mode
    /// fan-out would multiply pool dispatches for work PR 2 measured as
    /// dispatch-bound. Detectors built with `RoboAdsConfig::threads:
    /// None` already resolve to sequential for the evaluation banks, so
    /// this is a no-op there; an explicitly parallel detector cannot be
    /// pushed into a fleet (see [`FleetEngine::push`]).
    pub fn new(detectors: Vec<RoboAds>, threads: usize) -> Self {
        let threads = threads.max(1);
        let pool = (threads > 1).then(|| {
            Arc::new(Pool::with_thread_setup(threads, |i| {
                roboads_obs::set_worker(i as u32 + 1)
            }))
        });
        let telemetry = Telemetry::disabled();
        let instruments = FleetInstruments::new(&telemetry);
        let mut fleet = FleetEngine {
            cells: Vec::with_capacity(detectors.len()),
            slots: Vec::with_capacity(detectors.len()),
            pool,
            threads,
            slab: SlabState::Unknown,
            tick: 0,
            pending_stamp: None,
            partitions: 0,
            telemetry,
            instruments,
        };
        for d in detectors {
            fleet.push_cell(d);
        }
        fleet
    }

    fn push_cell(&mut self, detector: RoboAds) {
        assert_eq!(
            detector.engine_threads(),
            1,
            "fleet robots must use the sequential intra-step path \
             (build them with threads: None or Some(1))"
        );
        let fleet = self.slots.len();
        self.slots.push(self.cells.len());
        self.cells.push(RobotCell {
            detector,
            report: DetectionReport::blank(),
            result: Ok(()),
            fleet,
        });
        // Fleet composition changed; re-partition the signature groups
        // (and job sizing) on the next batch.
        self.slab = SlabState::Unknown;
    }

    /// Robot `fleet_index`'s grouping key. Allocates (signature + mode
    /// bank clone); called only at partition time.
    fn group_key(cell: &RobotCell) -> GroupKey {
        let e = cell.detector.engine();
        GroupKey {
            signature: e.system().signature(),
            modes: e.modes().clone(),
            compensate: e.compensate(),
            lanes: e.slab_lanes(),
            per_iteration: matches!(e.linearization(), Linearization::PerIteration),
            activation: e.activation().into(),
            active: e.active_mask().to_vec(),
        }
    }

    /// Builds the per-job slab banks for the group at cells
    /// `[start, start + len)` and lane width `K`: one job on the
    /// sequential path, one per lane-aligned pool chunk otherwise.
    fn build_group_jobs<const K: usize>(&self, start: usize, len: usize) -> Vec<SlabJob<K>> {
        let rep = self.cells[start].detector.engine();
        let job_count = match &self.pool {
            None => 1,
            Some(pool) => {
                let chunk = pool.chunk_size_aligned(len, MIN_ROBOTS_PER_JOB, K);
                len.div_ceil(chunk).max(1)
            }
        };
        (0..job_count)
            .map(|_| SlabJob {
                bank: rep
                    .modes()
                    .modes()
                    .iter()
                    .map(|mode| NuiseSlabWorkspace::new(rep.system(), mode))
                    .collect(),
            })
            .collect()
    }

    /// Resolves [`SlabState::Unknown`] against the current fleet:
    /// partitions robots into signature groups (first-appearance order,
    /// fleet order within each group), physically reorders the cells
    /// group-major so every group is one contiguous lane-tileable
    /// slice, rebuilds each eligible group's slab scratch, and
    /// refreshes the grouping gauges. Emits a `fleet.regroup` event
    /// when a membership change forced this re-partition.
    fn resolve_slab(&mut self) {
        if !matches!(self.slab, SlabState::Unknown) {
            return;
        }
        // Partition fleet indices by key. A HashMap only deduplicates;
        // group order is first appearance in fleet order, so the
        // partition (and therefore job shapes and error ordering) is
        // deterministic.
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut by_key: HashMap<GroupKey, usize> = HashMap::new();
        for fleet in 0..self.slots.len() {
            let key = Self::group_key(&self.cells[self.slots[fleet]]);
            let g = *by_key.entry(key).or_insert_with(|| {
                members.push(Vec::new());
                members.len() - 1
            });
            members[g].push(fleet);
        }

        // Reorder cells group-major (stable: fleet order within each
        // group) and rebuild the fleet-index -> cell map.
        let mut old: Vec<Option<RobotCell>> = std::mem::take(&mut self.cells)
            .into_iter()
            .map(Some)
            .collect();
        let mut cells = Vec::with_capacity(old.len());
        let mut ranges = Vec::with_capacity(members.len());
        for group in &members {
            let start = cells.len();
            for &fleet in group {
                let cell = old[self.slots[fleet]]
                    .take()
                    .expect("every robot belongs to exactly one group");
                cells.push(cell);
            }
            ranges.push((start, group.len()));
        }
        self.cells = cells;
        for (slot, cell) in self.cells.iter().enumerate() {
            self.slots[cell.fleet] = slot;
        }

        // Decide each group's execution kind by the per-group
        // small-fleet rule and build slab scratch.
        let mut slab_groups = 0usize;
        let mut slab_robots = 0usize;
        let mut grouped = Vec::with_capacity(ranges.len());
        for &(start, len) in &ranges {
            let rep = self.cells[start].detector.engine();
            let lanes = rep.slab_lanes();
            let eligible = lanes > 1
                && matches!(rep.linearization(), Linearization::PerIteration)
                && len >= lanes;
            let kind = if !eligible {
                GroupKind::Scalar
            } else {
                slab_groups += 1;
                slab_robots += len;
                match lanes {
                    4 => GroupKind::K4(self.build_group_jobs(start, len)),
                    _ => GroupKind::K8(self.build_group_jobs(start, len)),
                }
            };
            let active = self.cells[start].detector.engine().active_mask().to_vec();
            grouped.push(SlabGroup { len, kind, active });
        }

        let scalar_robots = self.cells.len() - slab_robots;
        self.instruments.slab_groups.set(slab_groups as f64);
        self.instruments.slab_robots.set(slab_robots as f64);
        self.instruments.scalar_robots.set(scalar_robots as f64);
        if self.partitions > 0 {
            self.instruments.regroups.incr();
            let robots = self.cells.len() as u64;
            let groups = grouped.len() as u64;
            self.telemetry.event("fleet.regroup", || {
                vec![
                    ("robots", Value::U64(robots)),
                    ("groups", Value::U64(groups)),
                    ("slab_groups", Value::U64(slab_groups as u64)),
                    ("slab_robots", Value::U64(slab_robots as u64)),
                    ("scalar_robots", Value::U64(scalar_robots as u64)),
                ]
            });
        }
        self.partitions += 1;
        self.slab = SlabState::Grouped(grouped);
    }

    /// Whether any slab-group member's active-mode set changed since
    /// the partition resolved (a lazy bank went to sleep or woke up).
    /// Walked per tick; pure boolean compares, no allocation. Scalar
    /// groups are exempt — they step per robot, so drift there is a
    /// per-robot scheduling detail, not a tiling hazard.
    fn activation_drifted(&self) -> bool {
        let SlabState::Grouped(groups) = &self.slab else {
            return false;
        };
        let mut start = 0;
        for group in groups {
            let cells = &self.cells[start..start + group.len];
            start += group.len;
            if matches!(group.kind, GroupKind::Scalar) {
                continue;
            }
            for cell in cells {
                if cell.detector.engine().active_mask() != group.active.as_slice() {
                    return true;
                }
            }
        }
        false
    }

    /// `(slab groups, slab robots, scalar robots)` of the resolved
    /// partition; all zero while the partition is unresolved.
    fn group_stats(&self) -> (usize, usize, usize) {
        match &self.slab {
            SlabState::Unknown => (0, 0, 0),
            SlabState::Grouped(groups) => {
                let mut stats = (0, 0, 0);
                for group in groups {
                    match group.kind {
                        GroupKind::Scalar => stats.2 += group.len,
                        GroupKind::K4(_) | GroupKind::K8(_) => {
                            stats.0 += 1;
                            stats.1 += group.len;
                        }
                    }
                }
                stats
            }
        }
    }

    /// Signature groups currently on the lane-batched slab path.
    ///
    /// The partition resolves lazily: `0` until the first
    /// [`FleetEngine::step_batch`] after construction or
    /// [`FleetEngine::push`].
    pub fn slab_groups(&self) -> usize {
        self.group_stats().0
    }

    /// Robots currently stepped through slab tiles (see
    /// [`FleetEngine::slab_groups`] for the lazy-resolution caveat).
    pub fn slab_robots(&self) -> usize {
        self.group_stats().1
    }

    /// Robots currently stepped per-robot: members of sub-tile groups,
    /// `slab_lanes: Some(1)` configs, or non-per-iteration
    /// linearizations (see [`FleetEngine::slab_groups`] for the
    /// lazy-resolution caveat).
    pub fn scalar_robots(&self) -> usize {
        self.group_stats().2
    }

    /// Appends another robot to the fleet. The signature partition is
    /// re-resolved on the next batch (`fleet.regroup` event, refreshed
    /// grouping gauges).
    ///
    /// # Panics
    ///
    /// Panics if the detector was configured with an explicit intra-step
    /// width greater than 1 — fleet parallelism is robot-grain only.
    pub fn push(&mut self, detector: RoboAds) {
        self.push_cell(detector);
    }

    /// Number of robots in the fleet.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the fleet has no robots.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Robot-grain worker count (`1` = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Threads one telemetry context through every robot's pipeline and
    /// re-registers the fleet-level instruments (grouping gauges,
    /// regroup counter) on its registry. Spans recorded during
    /// [`FleetEngine::step_batch`] carry the robot's id
    /// (`robot_index + 1`) so one shared sink can attribute them; see
    /// [`roboads_obs::set_robot`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for cell in &mut self.cells {
            cell.detector.set_telemetry(telemetry.clone());
        }
        self.instruments = FleetInstruments::new(&telemetry);
        self.telemetry = telemetry;
        if !matches!(self.slab, SlabState::Unknown) {
            let (slab_groups, slab_robots, scalar_robots) = self.group_stats();
            self.instruments.slab_groups.set(slab_groups as f64);
            self.instruments.slab_robots.set(slab_robots as f64);
            self.instruments.scalar_robots.set(scalar_robots as f64);
        }
    }

    /// Attaches a [`crate::FlightRecorder`] to every robot, each stamped
    /// with its fleet index (see [`RoboAds::attach_recorder`]). Batches
    /// stepped afterwards are recorded on both the scalar and slab
    /// paths.
    pub fn attach_recorder(&mut self, config: RecorderConfig) {
        for cell in &mut self.cells {
            cell.detector.attach_recorder(config);
            let fleet = cell.fleet;
            if let Some(recorder) = cell.detector.recorder_mut() {
                recorder.set_robot(fleet as u32);
            }
        }
    }

    /// Robot `i`'s flight recorder, if attached.
    pub fn recorder(&self, i: usize) -> Option<&crate::FlightRecorder> {
        self.cells[self.slots[i]].detector.recorder()
    }

    /// Mutable access to robot `i`'s flight recorder, if attached.
    pub fn recorder_mut(&mut self, i: usize) -> Option<&mut crate::FlightRecorder> {
        self.cells[self.slots[i]].detector.recorder_mut()
    }

    /// Sets the tick stamp recorded for the *next* batch (one-shot).
    /// The ingest boundary calls this with the swap's published tick so
    /// records carry the stamped-bus timeline; without it, batches are
    /// stamped from an internal 0-based tick counter.
    pub fn set_tick_stamp(&mut self, stamp: u64) {
        self.pending_stamp = Some(stamp);
    }

    /// Seals any in-flight capsules (end of run); see
    /// [`crate::FlightRecorder::finish`].
    pub fn finish_recorders(&mut self) {
        for cell in &mut self.cells {
            if let Some(recorder) = cell.detector.recorder_mut() {
                recorder.finish();
            }
        }
    }

    /// Drains every robot's sealed capsules into one list (robots in
    /// fleet order; each capsule carries its robot index).
    pub fn take_capsules(&mut self) -> Vec<crate::IncidentCapsule> {
        let mut out = Vec::new();
        for i in 0..self.slots.len() {
            let slot = self.slots[i];
            if let Some(recorder) = self.cells[slot].detector.recorder_mut() {
                out.append(&mut recorder.take_capsules());
            }
        }
        out
    }

    /// Steps every robot once with its own inputs.
    ///
    /// All robots run every tick — a failing robot never stalls its
    /// neighbours — and the error reported is the *first failing
    /// robot's*, in fleet (robot-index) order, regardless of thread
    /// interleaving or grouping. Detection state is strictly per robot:
    /// a failing robot's report holds a partial verdict and its filter
    /// state is unchanged (exactly as a standalone
    /// [`RoboAds::step_into`] failure), while every robot whose
    /// [`FleetEngine::result`] is `Ok` has a fully valid, committed
    /// report — a neighbour's failure never taints it.
    ///
    /// A warmed-up sequential fleet (`threads == 1`) performs zero heap
    /// allocations per batch — grouped or not; a parallel fleet
    /// allocates only the pool's per-job boxes — O(workers), independent
    /// of fleet size.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadReadings`] when `inputs.len() != self.len()`,
    /// else the first robot failure in fleet order.
    pub fn step_batch(&mut self, inputs: &[RobotInput<'_>]) -> Result<()> {
        self.step_batch_inner(Inputs::Dense(inputs))
    }

    /// Like [`FleetEngine::step_batch`], but tolerates holes: a `None`
    /// input means the robot had no complete reading set at the tick
    /// boundary (the [`crate::FleetIngest`] front-end produces exactly
    /// this shape under its `MarkMissing` deadline policy). A missing
    /// robot's detector and report are left **untouched** — the
    /// iteration is skipped, exactly as if a standalone caller had
    /// elected not to call [`RoboAds::step`] — and its per-robot
    /// [`FleetEngine::result`] is [`CoreError::MissedDeadline`], so the
    /// absence itself is a queryable verdict. Present robots step
    /// normally and bitwise-identically to a fully dense batch.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadReadings`] when `inputs.len() != self.len()`,
    /// else the first robot failure in fleet order (a missed deadline
    /// counts as a failure).
    pub fn step_batch_masked(&mut self, inputs: &[Option<RobotInput<'_>>]) -> Result<()> {
        self.step_batch_inner(Inputs::Masked(inputs))
    }

    fn step_batch_inner(&mut self, inputs: Inputs<'_, '_>) -> Result<()> {
        if inputs.len() != self.cells.len() {
            return Err(CoreError::BadReadings {
                reason: format!(
                    "fleet of {} robots stepped with {} inputs",
                    self.cells.len(),
                    inputs.len()
                ),
            });
        }
        self.resolve_slab();
        if self.activation_drifted() {
            // A lazy bank slept or woke since the last partition: the
            // tiles' mode-skip schedule is stale, so re-group. One
            // re-partition per fleet-wide transition — audit rotation
            // never trips this (it leaves the active set unchanged).
            self.slab = SlabState::Unknown;
            self.resolve_slab();
        }
        // One stamp per batch: the ingest's published tick when set,
        // else the engine's own counter. Taken by value so a robot that
        // misses this tick can never be recorded under a stale stamp.
        let stamp = self.pending_stamp.take().unwrap_or(self.tick);
        self.tick = stamp + 1;
        let cells = &mut self.cells[..];
        let pool = &self.pool;
        let SlabState::Grouped(groups) = &mut self.slab else {
            unreachable!("resolve_slab always leaves the fleet partitioned");
        };
        match pool {
            // Sequential: walk the group-major slab group by group.
            None => {
                let mut rest = cells;
                for group in groups.iter_mut() {
                    let (slice, tail) = rest.split_at_mut(group.len);
                    rest = tail;
                    match &mut group.kind {
                        GroupKind::Scalar => {
                            for cell in slice {
                                step_robot(cell, inputs, stamp);
                            }
                        }
                        GroupKind::K4(jobs) => step_range_slab(&mut jobs[0], slice, inputs, stamp),
                        GroupKind::K8(jobs) => step_range_slab(&mut jobs[0], slice, inputs, stamp),
                    }
                }
            }
            // Parallel: one scope for the whole tick; every group
            // contributes its own jobs, sliced within the group so no
            // lane tile (and no slab scratch) ever straddles groups.
            Some(pool) => {
                pool.scoped(|scope| {
                    let mut rest = cells;
                    for group in groups.iter_mut() {
                        let (slice, tail) = rest.split_at_mut(group.len);
                        rest = tail;
                        match &mut group.kind {
                            GroupKind::Scalar => {
                                let chunk = pool.chunk_size(slice.len(), MIN_ROBOTS_PER_JOB);
                                for cell_chunk in slice.chunks_mut(chunk) {
                                    scope.execute(move || {
                                        for cell in cell_chunk {
                                            step_robot(cell, inputs, stamp);
                                        }
                                    });
                                }
                            }
                            GroupKind::K4(jobs) => {
                                let chunk =
                                    pool.chunk_size_aligned(slice.len(), MIN_ROBOTS_PER_JOB, 4);
                                for (cell_chunk, job) in
                                    slice.chunks_mut(chunk).zip(jobs.iter_mut())
                                {
                                    scope.execute(move || {
                                        step_range_slab(job, cell_chunk, inputs, stamp)
                                    });
                                }
                            }
                            GroupKind::K8(jobs) => {
                                let chunk =
                                    pool.chunk_size_aligned(slice.len(), MIN_ROBOTS_PER_JOB, 8);
                                for (cell_chunk, job) in
                                    slice.chunks_mut(chunk).zip(jobs.iter_mut())
                                {
                                    scope.execute(move || {
                                        step_range_slab(job, cell_chunk, inputs, stamp)
                                    });
                                }
                            }
                        }
                    }
                });
            }
        }
        // First failure in fleet (robot-index) order, independent of
        // the internal group-major cell order.
        for &slot in &self.slots {
            if let Err(e) = &self.cells[slot].result {
                return Err(e.clone());
            }
        }
        Ok(())
    }

    /// Serializes the fleet's mutable state (tick counters plus every
    /// robot's detector, in fleet order). Part of
    /// [`crate::snapshot_fleet`]'s body; the partition and reports are
    /// derived state and are not captured.
    pub(crate) fn snap_write(&self, out: &mut Vec<u8>) {
        use roboads_obs::wire;
        wire::put_u64(out, self.tick);
        wire::put_bool(out, self.pending_stamp.is_some());
        wire::put_u64(out, self.pending_stamp.unwrap_or(0));
        wire::put_u32(out, self.slots.len() as u32);
        for &slot in &self.slots {
            self.cells[slot].detector.snap_write(out);
        }
    }

    /// Restores [`FleetEngine::snap_write`] state onto this fleet,
    /// which must hold identically-constructed twins of the
    /// snapshotted robots (same count, systems, mode banks, configs).
    /// Invalidates the signature partition: the restored activation
    /// masks re-resolve it on the next batch.
    pub(crate) fn snap_read(&mut self, rd: &mut roboads_obs::wire::ByteReader<'_>) -> Result<()> {
        self.tick = rd.u64()?;
        let has_stamp = rd.bool()?;
        let stamp = rd.u64()?;
        self.pending_stamp = has_stamp.then_some(stamp);
        let count = rd.u32()? as usize;
        if count != self.slots.len() {
            return Err(crate::snapshot::snapshot_err(format!(
                "fleet size mismatch: snapshot {count} robots, twin {}",
                self.slots.len()
            )));
        }
        for i in 0..self.slots.len() {
            let slot = self.slots[i];
            self.cells[slot].detector.snap_read(rd)?;
        }
        self.slab = SlabState::Unknown;
        Ok(())
    }

    /// Fleet indices partitioned by signature [`GroupKey`]
    /// (first-appearance order, fleet order within each group) — the
    /// same partition [`FleetEngine::resolve_slab`] materializes, but
    /// computed on demand without touching the resolved state. The
    /// shard balancer steals at exactly this granularity so a migrated
    /// group's slab tiles never split across shards (`DESIGN.md` §16,
    /// §18).
    pub(crate) fn signature_groups(&self) -> Vec<Vec<usize>> {
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut by_key: HashMap<GroupKey, usize> = HashMap::new();
        for fleet in 0..self.slots.len() {
            let key = Self::group_key(&self.cells[self.slots[fleet]]);
            let g = *by_key.entry(key).or_insert_with(|| {
                members.push(Vec::new());
                members.len() - 1
            });
            members[g].push(fleet);
        }
        members
    }

    /// Removes the robots at the given **sorted ascending** fleet
    /// indices and returns their detectors in that order. Remaining
    /// robots are renumbered to close the gaps (fleet order preserved);
    /// attached recorders are re-stamped with the new indices, and the
    /// signature partition is invalidated. Used by the shard balancer
    /// to migrate whole signature groups.
    pub(crate) fn remove_robots(&mut self, indices: &[usize]) -> Vec<RoboAds> {
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "remove_robots requires sorted, deduplicated indices"
        );
        let n = self.cells.len();
        let mut by_fleet: Vec<Option<RobotCell>> = (0..n).map(|_| None).collect();
        for cell in std::mem::take(&mut self.cells) {
            let fleet = cell.fleet;
            by_fleet[fleet] = Some(cell);
        }
        let mut next = indices.iter().peekable();
        let mut taken = Vec::with_capacity(indices.len());
        let mut kept = Vec::with_capacity(n - indices.len());
        for (fleet, cell) in by_fleet.into_iter().enumerate() {
            let cell = cell.expect("every fleet index has exactly one cell");
            if next.peek() == Some(&&fleet) {
                next.next();
                taken.push(cell.detector);
            } else {
                kept.push(cell);
            }
        }
        assert!(next.peek().is_none(), "remove_robots index out of range");
        self.slots.clear();
        self.cells = Vec::with_capacity(kept.len());
        for (fleet, mut cell) in kept.into_iter().enumerate() {
            cell.fleet = fleet;
            if let Some(recorder) = cell.detector.recorder_mut() {
                recorder.set_robot(fleet as u32);
            }
            self.slots.push(self.cells.len());
            self.cells.push(cell);
        }
        self.slab = SlabState::Unknown;
        taken
    }

    /// Robot `i`'s detector (its filter state, iteration counter, …).
    pub fn detector(&self, i: usize) -> &RoboAds {
        &self.cells[self.slots[i]].detector
    }

    /// Robot `i`'s report from the last [`FleetEngine::step_batch`].
    ///
    /// Report validity is **per robot**, keyed by robot `i`'s own
    /// [`FleetEngine::result`]: when `result(i)` is `Ok`, the report is
    /// fully committed and valid *regardless of what happened to any
    /// other robot in the batch* — a failing neighbour never taints it.
    /// When `result(i)` is an `Err`, robot `i`'s report holds a partial
    /// verdict from the failed step and should be discarded (for
    /// [`CoreError::MissedDeadline`] it is the previous tick's report,
    /// untouched).
    pub fn report(&self, i: usize) -> &DetectionReport {
        &self.cells[self.slots[i]].report
    }

    /// Robot `i`'s outcome from the last batch.
    pub fn result(&self, i: usize) -> &Result<()> {
        &self.cells[self.slots[i]].result
    }

    /// Iterates over the fleet's `(detector, report)` pairs in fleet
    /// (robot-index) order.
    pub fn iter(&self) -> impl Iterator<Item = (&RoboAds, &DetectionReport)> {
        self.slots.iter().map(|&slot| {
            let cell = &self.cells[slot];
            (&cell.detector, &cell.report)
        })
    }
}

/// Steps one robot through the per-robot scalar path (scalar groups and
/// the masked-hole case), recording the tick on success.
fn step_robot(cell: &mut RobotCell, inputs: Inputs<'_, '_>, stamp: u64) {
    // RAII reset: `step_into` runs inside a pool job whose panics are
    // caught by the worker, so a manual `set_robot(0)` after it would be
    // skipped on unwind and leak this robot's id into every later span
    // the worker closes.
    let _robot = roboads_obs::robot_scope(cell.fleet as u32 + 1);
    cell.result = match inputs.get(cell.fleet) {
        Some(input) => cell
            .detector
            .step_into(input.u_prev, input.readings, &mut cell.report),
        // Missed the tick boundary: skip the iteration, leaving
        // detector state and report untouched.
        None => Err(CoreError::MissedDeadline { robot: cell.fleet }),
    };
    if cell.result.is_ok() {
        let input = inputs.get(cell.fleet).expect("ok result implies input");
        cell.detector
            .record_tick(stamp, input.u_prev, input.readings, &cell.report);
    }
}

/// Steps one job's contiguous robot range (all cells of one signature
/// group, or one lane-aligned chunk of it) tile by tile. The final tile
/// of the group's final job may be partial; it runs with the surplus
/// lanes masked off.
fn step_range_slab<const K: usize>(
    job: &mut SlabJob<K>,
    cells: &mut [RobotCell],
    inputs: Inputs<'_, '_>,
    stamp: u64,
) {
    for tile in cells.chunks_mut(K) {
        step_tile(&mut job.bank, tile, inputs, stamp);
    }
}

/// Steps one ≤K-robot tile: loads each robot's per-mode inputs into the
/// slab lanes, runs every mode's lane-batched NUISE pass, scatters the
/// per-mode outputs back into each robot's engine, and commits each
/// robot's selection/decision tail. Tiles never span signature groups,
/// so every lane of a tile shares the representative cell's models,
/// mode bank and thresholds; each lane's input lookup, span id, record
/// stamp and error index map back through its cell's fleet index. A
/// lane that fails anywhere (bad readings at load, numeric failure
/// inside a batched kernel) is masked out of the remaining slab work
/// and its robot re-runs the *scalar* detector step from its untouched
/// filter state — reproducing the exact per-robot result and error,
/// since engine state only mutates at commit time.
fn step_tile<const K: usize>(
    bank: &mut [NuiseSlabWorkspace<K>],
    cells: &mut [RobotCell],
    inputs: Inputs<'_, '_>,
    stamp: u64,
) {
    // A lane is `present` when its robot delivered a complete input set
    // this tick (always true on the dense path); a missing lane is
    // masked out of every batched kernel *and* skips the scalar
    // fallback — there is nothing to run, the robot's iteration simply
    // does not happen.
    let mut present = [false; K];
    let mut lane_ok = [false; K];
    for (l, cell) in cells.iter_mut().enumerate() {
        present[l] = inputs.get(cell.fleet).is_some();
        lane_ok[l] = present[l];
        // Fix each robot's activation schedule before lane loading, so
        // the per-mode lane masks below and any scalar fallback re-run
        // see the identical plan (the plan is latched until commit).
        cell.detector.engine_mut().plan_step();
    }
    for (m, ws) in bank.iter_mut().enumerate() {
        // Lanes advancing mode `m` this tick: the group shares one
        // active set (it is in the group key), but a sleeping robot's
        // round-robin audit adds one dormant mode per audit tick, and
        // cursors may disagree across lanes — mask per mode rather
        // than splinter the partition. A mode no lane runs skips its
        // whole tile; that skip is where the quiescent fleet win
        // comes from.
        let mut mode_lanes = [false; K];
        for (l, cell) in cells.iter().enumerate() {
            mode_lanes[l] = lane_ok[l] && cell.detector.engine().runs_mode(m);
        }
        if !mode_lanes.iter().any(|&r| r) {
            continue;
        }
        for (l, cell) in cells.iter().enumerate() {
            if !mode_lanes[l] {
                continue;
            }
            let input = inputs.get(cell.fleet).expect("ok lane is present");
            let eng = cell.detector.engine();
            let (x_m, p_m) = eng.mode_state(m);
            if ws
                .load_lane(l, eng.system(), x_m, p_m, input.u_prev, input.readings)
                .is_err()
            {
                lane_ok[l] = false;
                mode_lanes[l] = false;
            }
        }
        let ran = {
            let eng = cells[0].detector.engine();
            ws.run(
                eng.system(),
                eng.compensate(),
                eng.actuator_threshold(),
                eng.testing_thresholds(m),
                &mode_lanes,
            )
        };
        for (l, cell) in cells.iter_mut().enumerate() {
            if ran[l] {
                ws.scatter_lane(l, cell.detector.engine_mut().mode_output_mut(m));
            } else if mode_lanes[l] {
                // Numeric failure inside the batched kernel: mask the
                // robot out of the remaining slab work; it re-runs
                // scalar below.
                lane_ok[l] = false;
            }
        }
    }
    for (l, cell) in cells.iter_mut().enumerate() {
        // RAII reset (not a manual set/clear pair): the scalar fallback
        // below runs inside a pool job that catches panics, and a leaked
        // robot id would mislabel every later span on the worker.
        let _robot = roboads_obs::robot_scope(cell.fleet as u32 + 1);
        cell.result = if lane_ok[l] {
            // Stale counts of skipped modes are harmless: the engine
            // zero-weights every mode outside its run mask before they
            // are read.
            match cell
                .detector
                .commit_slab_step(bank.iter().map(|ws| ws.count(l)), &mut cell.report)
            {
                Ok(SlabCommit::Committed) => Ok(()),
                // The fresh active-mode results tripped a wake: the
                // dormant modes must run *this* iteration, and only the
                // scalar path still has the inputs. Nothing was
                // committed, so the re-run from the untouched filter
                // state reproduces the slab's arithmetic exactly and
                // then wakes the bank mid-step.
                Ok(SlabCommit::NeedsScalar) => {
                    let input = inputs.get(cell.fleet).expect("ok lane is present");
                    cell.detector
                        .step_into(input.u_prev, input.readings, &mut cell.report)
                }
                Err(e) => Err(e),
            }
        } else if present[l] {
            let input = inputs.get(cell.fleet).expect("failed lane is present");
            cell.detector
                .step_into(input.u_prev, input.readings, &mut cell.report)
        } else {
            Err(CoreError::MissedDeadline { robot: cell.fleet })
        };
        // Record on either completed path (slab commit or scalar
        // fallback) — the slab path bypasses `step_into`, so recording
        // must hang off the fleet, not the detector's step.
        if cell.result.is_ok() {
            let input = inputs.get(cell.fleet).expect("ok result implies input");
            cell.detector
                .record_tick(stamp, input.u_prev, input.readings, &cell.report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoboAdsConfig;
    use crate::mode::ModeSet;
    use roboads_models::{presets, RobotSystem};

    fn detector() -> RoboAds {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        RoboAds::with_defaults(system, x0).unwrap()
    }

    fn detector_for(system: &RobotSystem, lanes: usize) -> RoboAds {
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let modes = ModeSet::one_reference_per_sensor(system);
        RoboAds::new(
            system.clone(),
            RoboAdsConfig::paper_defaults().with_slab_lanes(lanes),
            x0,
            modes,
        )
        .unwrap()
    }

    fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
        (0..system.sensor_count())
            .map(|i| system.sensor(i).unwrap().measure(x))
            .collect()
    }

    #[test]
    fn batch_of_identical_robots_agrees_with_standalone() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut standalone = detector();
        let mut fleet = FleetEngine::new((0..4).map(|_| detector()).collect(), 1);
        assert_eq!(fleet.len(), 4);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for k in 0..10 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            if k >= 4 {
                readings[0][0] += 0.07;
            }
            let expected = standalone.step(&u, &readings).unwrap();
            let inputs = vec![
                RobotInput {
                    u_prev: &u,
                    readings: &readings,
                };
                4
            ];
            fleet.step_batch(&inputs).unwrap();
            for (_, report) in fleet.iter() {
                assert_eq!(report, &expected, "robot diverged at step {k}");
            }
        }
    }

    #[test]
    fn input_count_mismatch_is_rejected() {
        let mut fleet = FleetEngine::new(vec![detector()], 1);
        let u = Vector::from_slice(&[0.0, 0.0]);
        let readings: Vec<Vector> = Vec::new();
        let err = fleet
            .step_batch(
                &[RobotInput {
                    u_prev: &u,
                    readings: &readings,
                }; 2],
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::BadReadings { .. }));
    }

    #[test]
    fn failing_robot_reports_error_but_others_advance() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut fleet = FleetEngine::new((0..3).map(|_| detector()).collect(), 1);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let x1 = system.dynamics().step(&x0, &u);
        let good = clean_readings(&system, &x1);
        let bad: Vec<Vector> = Vec::new(); // malformed: robot 1 fails
        let inputs = [
            RobotInput {
                u_prev: &u,
                readings: &good,
            },
            RobotInput {
                u_prev: &u,
                readings: &bad,
            },
            RobotInput {
                u_prev: &u,
                readings: &good,
            },
        ];
        assert!(fleet.step_batch(&inputs).is_err());
        assert!(fleet.result(0).is_ok());
        assert!(fleet.result(1).is_err());
        assert!(fleet.result(2).is_ok());
        // The healthy robots completed their iteration.
        assert_eq!(fleet.detector(0).iteration(), 1);
        assert_eq!(fleet.detector(1).iteration(), 0);
        assert_eq!(fleet.detector(2).iteration(), 1);
    }

    #[test]
    fn masked_batch_skips_missing_robot_and_advances_the_rest() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut fleet = FleetEngine::new((0..3).map(|_| detector()).collect(), 1);
        let mut twin = FleetEngine::new((0..3).map(|_| detector()).collect(), 1);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for k in 0..6 {
            x_true = system.dynamics().step(&x_true, &u);
            let readings = clean_readings(&system, &x_true);
            let input = RobotInput {
                u_prev: &u,
                readings: &readings,
            };
            twin.step_batch(&[input; 3]).unwrap();
            // Robot 1 misses ticks 2 and 3 in the masked fleet.
            let hole = k == 2 || k == 3;
            let masked = [Some(input), (!hole).then_some(input), Some(input)];
            let batch = fleet.step_batch_masked(&masked);
            if hole {
                assert!(matches!(batch, Err(CoreError::MissedDeadline { robot: 1 })));
                assert!(matches!(
                    fleet.result(1),
                    Err(CoreError::MissedDeadline { robot: 1 })
                ));
            } else {
                batch.unwrap();
            }
            // Neighbours are bitwise identical to the dense twin run.
            assert_eq!(fleet.report(0), twin.report(0), "robot 0 diverged at {k}");
            assert_eq!(fleet.report(2), twin.report(2), "robot 2 diverged at {k}");
        }
        // The skipped robot lost exactly its two missed iterations.
        assert_eq!(fleet.detector(0).iteration(), 6);
        assert_eq!(fleet.detector(1).iteration(), 4);
        assert_eq!(fleet.detector(2).iteration(), 6);
    }

    #[test]
    fn neighbour_failure_leaves_a_succeeding_robots_report_fully_valid() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut fleet = FleetEngine::new((0..2).map(|_| detector()).collect(), 1);
        let mut twin = detector();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        let bad: Vec<Vector> = Vec::new(); // malformed: robot 1 fails mid-batch
        for k in 0..5 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            if k >= 2 {
                readings[0][0] += 0.07; // give robot 0 a real verdict to carry
            }
            let expected = twin.step(&u, &readings).unwrap();
            let inputs = [
                RobotInput {
                    u_prev: &u,
                    readings: &readings,
                },
                RobotInput {
                    u_prev: &u,
                    readings: &bad,
                },
            ];
            assert!(fleet.step_batch(&inputs).is_err());
            assert!(fleet.result(0).is_ok());
            assert!(fleet.result(1).is_err());
            // Robot 0's report is complete and committed — bitwise equal
            // to a standalone run — despite its neighbour failing every
            // tick of the batch sequence.
            assert_eq!(fleet.report(0), &expected, "report tainted at step {k}");
        }
    }

    #[test]
    #[should_panic(expected = "sequential intra-step path")]
    fn explicitly_parallel_detectors_are_rejected() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let modes = ModeSet::one_reference_per_sensor(&system);
        let d = RoboAds::new(
            system,
            RoboAdsConfig::paper_defaults().with_threads(3),
            x0,
            modes,
        )
        .unwrap();
        FleetEngine::new(vec![d], 1);
    }

    /// Steps `fleet` once with clean inputs so the partition resolves.
    fn step_once(fleet: &mut FleetEngine, system: &RobotSystem) {
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let x1 = system.dynamics().step(&x0, &u);
        let readings = clean_readings(system, &x1);
        let inputs = vec![
            RobotInput {
                u_prev: &u,
                readings: &readings,
            };
            fleet.len()
        ];
        fleet.step_batch(&inputs).unwrap();
    }

    #[test]
    fn one_odd_robot_no_longer_collapses_the_fleet_to_scalar() {
        // 8 robots share one system; the 9th is a separately
        // instantiated (pointer-distinct) Khepera. Pre-grouping, that
        // single odd robot dropped all 8 neighbours to the scalar path;
        // now the homogeneous group keeps its 8-lane slab and only the
        // odd robot runs scalar.
        let shared = presets::khepera_system();
        let odd = presets::khepera_system();
        let mut detectors: Vec<RoboAds> = (0..8).map(|_| detector_for(&shared, 8)).collect();
        detectors.push(detector_for(&odd, 8));
        let mut fleet = FleetEngine::new(detectors, 1);
        assert_eq!(fleet.slab_groups(), 0, "partition is lazy");
        step_once(&mut fleet, &shared);
        assert_eq!(fleet.slab_groups(), 1);
        assert_eq!(fleet.slab_robots(), 8);
        assert_eq!(fleet.scalar_robots(), 1);
    }

    #[test]
    fn small_fleet_rule_is_per_group() {
        // A 40-robot fleet of five signatures, interleaved so the
        // groups are scattered across fleet order. Group sizes {8, 7,
        // 7, 9, 9} at 8 lanes: the three groups that fill a tile slab;
        // the two 7-robot groups stay scalar — the threshold is each
        // group's own size, never the fleet total.
        let sizes = [8usize, 7, 7, 9, 9];
        let systems: Vec<RobotSystem> = sizes.iter().map(|_| presets::khepera_system()).collect();
        let mut remaining = sizes;
        let mut detectors = Vec::new();
        loop {
            let mut dealt = false;
            for (g, left) in remaining.iter_mut().enumerate() {
                if *left > 0 {
                    *left -= 1;
                    dealt = true;
                    detectors.push(detector_for(&systems[g], 8));
                }
            }
            if !dealt {
                break;
            }
        }
        assert_eq!(detectors.len(), 40);
        let mut fleet = FleetEngine::new(detectors, 1);
        step_once(&mut fleet, &systems[0]);
        assert_eq!(fleet.slab_groups(), 3);
        assert_eq!(fleet.slab_robots(), 8 + 9 + 9);
        assert_eq!(fleet.scalar_robots(), 7 + 7);
    }

    #[test]
    fn differing_config_discriminants_split_groups() {
        // Same system `Arc`s but different mode banks / compensation
        // must not share a slab: the kernels specialize on those.
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut detectors: Vec<RoboAds> = (0..8).map(|_| detector_for(&system, 8)).collect();
        for _ in 0..8 {
            detectors.push(
                RoboAds::new(
                    system.clone(),
                    RoboAdsConfig::paper_defaults().with_slab_lanes(8),
                    x0.clone(),
                    ModeSet::complete(&system),
                )
                .unwrap(),
            );
        }
        let mut fleet = FleetEngine::new(detectors, 1);
        step_once(&mut fleet, &system);
        assert_eq!(fleet.slab_groups(), 2);
        assert_eq!(fleet.slab_robots(), 16);
        assert_eq!(fleet.scalar_robots(), 0);
    }

    #[test]
    fn membership_change_emits_regroup_and_refreshes_gauges() {
        use roboads_obs::RingBufferSink;
        let ring = Arc::new(RingBufferSink::new(1024));
        let telemetry = Telemetry::new(ring.clone());
        let system = presets::khepera_system();
        let mut fleet = FleetEngine::new((0..8).map(|_| detector_for(&system, 8)).collect(), 1);
        fleet.set_telemetry(telemetry.clone());
        step_once(&mut fleet, &system);
        let m = telemetry.metrics();
        assert_eq!(m.counter_value("fleet.regroups"), Some(0));
        assert_eq!(m.gauge("fleet.slab_robots").get(), 8.0);

        // Pushing a robot invalidates the partition; the next batch
        // re-partitions, bumps the regroup counter, emits the event and
        // refreshes the gauges.
        fleet.push(detector_for(&system, 8));
        assert_eq!(fleet.slab_groups(), 0, "invalidated until the next batch");
        step_once(&mut fleet, &system);
        assert_eq!(m.counter_value("fleet.regroups"), Some(1));
        assert_eq!(m.gauge("fleet.slab_robots").get(), 9.0);
        assert_eq!(m.gauge("fleet.slab_groups").get(), 1.0);
        assert_eq!(m.gauge("fleet.scalar_robots").get(), 0.0);
        assert!(
            ring.events().iter().any(|e| e.name == "fleet.regroup"),
            "regroup event not emitted"
        );
    }

    #[test]
    fn grouped_fleet_accessors_stay_in_fleet_order() {
        // Interleave two signatures so the group-major reorder permutes
        // the cells, then check every fleet-index accessor still
        // addresses the robot the caller pushed at that index.
        let a = presets::khepera_system();
        let b = presets::khepera_system();
        let systems = [&a, &b, &a, &a, &b, &a, &a, &a, &a, &b, &a, &a];
        let mut fleet = FleetEngine::new(systems.iter().map(|s| detector_for(s, 4)).collect(), 1);
        fleet.attach_recorder(RecorderConfig::default());
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        let mut twins: Vec<RoboAds> = systems.iter().map(|s| detector_for(s, 1)).collect();
        for k in 0..6 {
            x_true = a.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&a, &x_true);
            if k >= 3 {
                readings[0][0] += 0.07;
            }
            // Give robot 5 its own distinct readings so a permuted
            // accessor (or input lookup) cannot go unnoticed.
            let mut special = readings.clone();
            special[1][0] += 0.002;
            let inputs: Vec<RobotInput> = (0..systems.len())
                .map(|i| RobotInput {
                    u_prev: &u,
                    readings: if i == 5 { &special } else { &readings },
                })
                .collect();
            fleet.step_batch(&inputs).unwrap();
            for (i, twin) in twins.iter_mut().enumerate() {
                let expected = twin
                    .step(&u, if i == 5 { &special } else { &readings })
                    .unwrap();
                assert_eq!(fleet.report(i), &expected, "robot {i} report at step {k}");
                assert_eq!(fleet.detector(i).iteration(), expected.iteration);
            }
        }
        // Group a (9 robots ≥ 4 lanes) slabs; group b (3 < 4) is scalar.
        assert_eq!(fleet.slab_groups(), 1);
        assert_eq!(fleet.slab_robots(), 9);
        assert_eq!(fleet.scalar_robots(), 3);
        // iter() yields fleet order.
        for (i, (d, _)) in fleet.iter().enumerate() {
            assert_eq!(d.iteration(), twins[i].iteration());
        }
        // Recorders carry the fleet index, not the cell position.
        for i in 0..systems.len() {
            assert_eq!(fleet.recorder(i).unwrap().robot(), i as u32);
        }
    }
}
