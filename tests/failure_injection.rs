//! Failure injection on the detector itself: malformed readings, NaN
//! payloads and degenerate configurations must produce typed errors and
//! leave the detector usable — a dependable-systems detector must not be
//! the least dependable component in the loop.

use roboads::core::{CoreError, ModeSet, RoboAds, RoboAdsConfig};
use roboads::linalg::Vector;
use roboads::models::presets;

fn detector() -> (roboads::models::RobotSystem, RoboAds, Vector, Vector) {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[1.0, 1.0, 0.2]);
    let ads = RoboAds::with_defaults(system.clone(), x0.clone()).unwrap();
    let u = Vector::from_slice(&[0.06, 0.05]);
    (system, ads, x0, u)
}

fn clean_readings(system: &roboads::models::RobotSystem, x: &Vector) -> Vec<Vector> {
    (0..system.sensor_count())
        .map(|i| system.sensor(i).unwrap().measure(x))
        .collect()
}

#[test]
fn nan_reading_is_rejected_and_detector_recovers() {
    let (system, mut ads, x0, u) = detector();
    let mut x_true = x0;

    // Warm up.
    for _ in 0..5 {
        x_true = system.dynamics().step(&x_true, &u);
        ads.step(&u, &clean_readings(&system, &x_true)).unwrap();
    }
    let iterations_before = ads.iteration();
    let estimate_before = ads.state_estimate().clone();

    // Inject a NaN payload: typed error, no state change, no iteration.
    let mut poisoned = clean_readings(&system, &x_true);
    poisoned[1][2] = f64::NAN;
    let err = ads.step(&u, &poisoned).unwrap_err();
    assert!(matches!(err, CoreError::BadReadings { .. }));
    assert_eq!(ads.iteration(), iterations_before);
    assert_eq!(ads.state_estimate(), &estimate_before);

    // The skipped iteration does not break subsequent operation.
    for _ in 0..5 {
        x_true = system.dynamics().step(&x_true, &u);
        let report = ads.step(&u, &clean_readings(&system, &x_true)).unwrap();
        assert!(!report.sensor_alarm);
    }
}

#[test]
fn wrong_reading_count_and_dimension_are_rejected() {
    let (system, mut ads, x0, u) = detector();
    let readings = clean_readings(&system, &x0);

    let mut short = readings.clone();
    short.pop();
    assert!(matches!(
        ads.step(&u, &short),
        Err(CoreError::BadReadings { .. })
    ));

    let mut misshapen = readings;
    misshapen[0] = Vector::zeros(5);
    assert!(matches!(
        ads.step(&u, &misshapen),
        Err(CoreError::BadReadings { .. })
    ));
}

#[test]
fn infinite_command_is_reported_not_propagated() {
    let (system, mut ads, x0, _) = detector();
    let readings = clean_readings(&system, &x0);
    let bad_u = Vector::from_slice(&[f64::INFINITY, 0.05]);
    // The estimator must not silently produce NaN estimates.
    match ads.step(&bad_u, &readings) {
        Err(_) => {}
        Ok(report) => {
            assert!(
                !report.state_estimate.is_finite() || report.actuator_anomaly.exceeds,
                "an infinite command must surface somewhere visible"
            );
        }
    }
}

#[test]
fn degenerate_configurations_fail_fast() {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[1.0, 1.0, 0.2]);

    // Invalid alpha.
    assert!(matches!(
        RoboAds::new(
            system.clone(),
            RoboAdsConfig::paper_defaults().with_sensor_alpha(0.0),
            x0.clone(),
            ModeSet::one_reference_per_sensor(&system),
        ),
        Err(CoreError::InvalidConfig { .. })
    ));

    // Wrong state dimension.
    assert!(RoboAds::with_defaults(system.clone(), Vector::zeros(2)).is_err());

    // Empty reference group.
    let broken = ModeSet::from_reference_groups(&system, &[vec![]]);
    assert!(matches!(
        RoboAds::new(system.clone(), RoboAdsConfig::paper_defaults(), x0, broken),
        Err(CoreError::DegenerateMode { .. })
    ));
}

#[test]
fn frozen_sensor_attack_is_detected_as_that_sensors_misbehavior() {
    // A frozen (jammed-output) IPS drifts away from the moving truth.
    use roboads::sim::{Corruption, Misbehavior, Scenario, SimulationBuilder, Target};
    let scenario = Scenario::new(
        0,
        "ips-freeze",
        "IPS output frozen at its last value",
        vec![Misbehavior::new(
            "freeze",
            Target::Sensor(0),
            Corruption::Freeze,
            40,
            None,
        )],
        200,
    );
    let outcome = SimulationBuilder::khepera()
        .scenario(scenario)
        .seed(11)
        .run()
        .unwrap();
    assert_eq!(outcome.report.misbehaving_sensors, vec![0]);
    assert!(outcome.eval.sensor_delay().unwrap() < 3.0);
}
