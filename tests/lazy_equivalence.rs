//! Detection equivalence of the lazy mode-bank schedule (DESIGN.md
//! §17): on every Table II scenario, a detector running
//! [`ActivationPolicy::TopK`] must raise the same alarms, identify the
//! same sensor sets, and do so on the same ticks as the always-full
//! bank. Dormancy is a cost optimization, never a detection-behavior
//! change.

use roboads::core::{ActivationPolicy, ModeSet, RoboAdsConfig};
use roboads::models::presets;
use roboads::sim::{Scenario, SimOutcome, SimulationBuilder};

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::clean(),
        Scenario::wheel_logic_bomb(),
        Scenario::wheel_jamming(),
        Scenario::ips_logic_bomb(),
        Scenario::ips_spoofing(),
        Scenario::encoder_logic_bomb(),
        Scenario::lidar_dos(),
        Scenario::lidar_blocking(),
        Scenario::wheel_and_ips_logic_bomb(),
        Scenario::lidar_dos_and_encoder_logic_bomb(),
        Scenario::ips_spoofing_and_lidar_dos(),
        Scenario::ips_and_encoder_logic_bomb(),
    ]
}

fn run(scenario: Scenario, config: RoboAdsConfig, complete_bank: bool) -> SimOutcome {
    let mut b = SimulationBuilder::khepera()
        .scenario(scenario)
        .seed(11)
        .config(config);
    if complete_bank {
        b = b.mode_set(ModeSet::complete(&presets::khepera_system()));
    }
    b.run().unwrap()
}

/// Asserts tick-for-tick decision equivalence between a full-bank and a
/// lazy-bank outcome of the same scenario.
fn assert_equivalent(name: &str, full: &SimOutcome, lazy: &SimOutcome) {
    let full_recs = full.trace.records();
    let lazy_recs = lazy.trace.records();
    assert_eq!(full_recs.len(), lazy_recs.len(), "{name}: run length");
    for (f, l) in full_recs.iter().zip(lazy_recs) {
        let k = f.k;
        assert_eq!(
            f.report.sensor_alarm, l.report.sensor_alarm,
            "{name}: sensor alarm diverged at tick {k}"
        );
        assert_eq!(
            f.report.actuator_alarm, l.report.actuator_alarm,
            "{name}: actuator alarm diverged at tick {k}"
        );
        assert_eq!(
            f.report.misbehaving_sensors, l.report.misbehaving_sensors,
            "{name}: identified sensors diverged at tick {k}"
        );
    }
    assert_eq!(
        full.report.misbehaving_sensors, lazy.report.misbehaving_sensors,
        "{name}: final identification"
    );
    assert_eq!(
        full.report.actuator_alarm, lazy.report.actuator_alarm,
        "{name}: final actuator state"
    );
}

#[test]
fn lazy_bank_matches_full_bank_on_every_table2_scenario() {
    for scenario in scenarios() {
        let name = scenario.name().to_string();
        let full = run(scenario.clone(), RoboAdsConfig::paper_defaults(), false);
        let lazy = run(
            scenario,
            RoboAdsConfig::paper_defaults().with_activation(ActivationPolicy::lazy_defaults()),
            false,
        );
        assert_equivalent(&name, &full, &lazy);
    }
}

#[test]
fn lazy_bank_matches_full_bank_on_the_complete_7_mode_bank() {
    // The adaptive schedule's target workload: 2^p − 1 = 7 modes with
    // only k = 2 live in steady state. Detection must not notice.
    for scenario in [
        Scenario::clean(),
        Scenario::ips_spoofing(),
        Scenario::wheel_jamming(),
        Scenario::lidar_dos_and_encoder_logic_bomb(),
    ] {
        let name = format!("{}[complete]", scenario.name());
        let full = run(scenario.clone(), RoboAdsConfig::paper_defaults(), true);
        let lazy = run(
            scenario,
            RoboAdsConfig::paper_defaults().with_activation(ActivationPolicy::lazy_defaults()),
            true,
        );
        assert_equivalent(&name, &full, &lazy);
    }
}

#[test]
fn explicit_always_full_is_bitwise_identical_to_the_default() {
    let base = run(
        Scenario::ips_spoofing(),
        RoboAdsConfig::paper_defaults(),
        false,
    );
    let explicit = run(
        Scenario::ips_spoofing(),
        RoboAdsConfig::paper_defaults().with_activation(ActivationPolicy::AlwaysFull),
        false,
    );
    for (a, b) in base.trace.records().iter().zip(explicit.trace.records()) {
        assert_eq!(a.report, b.report, "tick {}", a.k);
    }
}
