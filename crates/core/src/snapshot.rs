//! Versioned binary snapshot/restore of detector and fleet state
//! (`DESIGN.md` §18).
//!
//! A snapshot captures every piece of *mutable* detection state — mode
//! probabilities, per-mode filter states and covariances, the lazy
//! activation bank (§17) including an in-flight dormant audit, open
//! decision windows, and the ingest boundary's hold-last staging
//! buffers — so that restoring onto an identically-constructed twin and
//! continuing is bitwise indistinguishable from never having stopped.
//!
//! What is deliberately *not* in a snapshot:
//!
//! * **Construction config** (models, mode bank, thresholds, floors,
//!   activation policy, lane widths): the restore target is built by
//!   the same constructor call as the original — exactly the
//!   twin-reconstruction discipline of [`crate::replay_capsule`]. The
//!   header's shape checks (mode count, state dimensions) catch a
//!   mismatched twin early.
//! * **Scratch** ([`crate::nuise::NuiseWorkspace`] internals, χ² test
//!   caches, slab tiles): rebuilt deterministically and never carries
//!   state across iterations.
//! * **The flight recorder**: its ring contents never influence a
//!   future step's outputs, and a fresh recorder re-attaches cleanly.
//! * **Fleet partition state**: the signature grouping re-resolves
//!   lazily from the restored activation masks on the next batch.
//!
//! The encoding is hand-rolled little-endian bytes over
//! [`roboads_obs::wire`] — floats travel as `f64::to_bits`, so the
//! roundtrip is lossless for every value including NaN payloads, and
//! the `serde` dependency stays vendoring-gated.

use roboads_linalg::{Matrix, Vector};
use roboads_obs::wire::{self, ByteReader};

use crate::detector::RoboAds;
use crate::fleet::FleetEngine;
use crate::ingest::FleetIngest;
use crate::nuise::NuiseOutput;
use crate::{CoreError, Result};

/// Magic prefix of every snapshot ("RoboADS Snapshot").
const MAGIC: &[u8; 4] = b"RADS";

/// Format version; bumped on any layout change. Restore rejects
/// mismatches outright — snapshots are checkpoints, not archives, so
/// there is no cross-version migration path.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Body kind tags, so a fleet snapshot can never be restored onto a
/// standalone detector (or vice versa) by accident.
const KIND_DETECTOR: u8 = 1;
const KIND_FLEET: u8 = 2;

pub(crate) fn snapshot_err(reason: impl Into<String>) -> CoreError {
    CoreError::Snapshot {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------
// Shared encode/decode helpers for the per-component `snap_write` /
// `snap_read` implementations (engine, selector, decision, ingest).
// ---------------------------------------------------------------------

pub(crate) fn put_vector(out: &mut Vec<u8>, v: &Vector) {
    wire::put_f64_slice(out, v.as_slice());
}

pub(crate) fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    wire::put_u32(out, m.rows() as u32);
    wire::put_u32(out, m.cols() as u32);
    wire::put_f64_slice(out, m.as_slice());
}

/// Strict read into a pre-shaped vector: the twin's constructor already
/// sized it, so a length mismatch means the snapshot belongs to a
/// different configuration.
pub(crate) fn read_vector(rd: &mut ByteReader<'_>, v: &mut Vector) -> Result<()> {
    rd.f64_into(v.as_mut_slice())?;
    Ok(())
}

pub(crate) fn read_matrix(rd: &mut ByteReader<'_>, m: &mut Matrix) -> Result<()> {
    let rows = rd.u32()? as usize;
    let cols = rd.u32()? as usize;
    if rows != m.rows() || cols != m.cols() {
        return Err(snapshot_err(format!(
            "matrix shape mismatch: snapshot {rows}x{cols}, twin {}x{}",
            m.rows(),
            m.cols()
        )));
    }
    rd.f64_into(m.as_mut_slice())?;
    Ok(())
}

/// Size-tolerant vector read for buffers that start empty and are
/// shaped on first use (the ingest staging slots).
pub(crate) fn read_vector_flex(rd: &mut ByteReader<'_>, v: &mut Vector) -> Result<()> {
    let data = rd.f64_vec()?;
    if data.len() == v.len() {
        v.as_mut_slice().copy_from_slice(&data);
    } else {
        *v = Vector::from_slice(&data);
    }
    Ok(())
}

pub(crate) fn read_bools(
    rd: &mut ByteReader<'_>,
    out: &mut Vec<bool>,
    expected: usize,
) -> Result<()> {
    let data = rd.bool_vec()?;
    if data.len() != expected {
        return Err(snapshot_err(format!(
            "bool mask length mismatch: snapshot {}, twin {expected}",
            data.len()
        )));
    }
    out.clear();
    out.extend_from_slice(&data);
    Ok(())
}

pub(crate) fn put_nuise_output(out: &mut Vec<u8>, o: &NuiseOutput) {
    put_vector(out, &o.state_estimate);
    put_matrix(out, &o.state_covariance);
    put_vector(out, &o.actuator_anomaly);
    put_matrix(out, &o.actuator_covariance);
    put_vector(out, &o.sensor_anomaly);
    put_matrix(out, &o.sensor_covariance);
    wire::put_f64(out, o.likelihood);
    wire::put_f64(out, o.consistency);
    put_vector(out, &o.innovation);
}

pub(crate) fn read_nuise_output(rd: &mut ByteReader<'_>, o: &mut NuiseOutput) -> Result<()> {
    read_vector(rd, &mut o.state_estimate)?;
    read_matrix(rd, &mut o.state_covariance)?;
    read_vector(rd, &mut o.actuator_anomaly)?;
    read_matrix(rd, &mut o.actuator_covariance)?;
    read_vector(rd, &mut o.sensor_anomaly)?;
    read_matrix(rd, &mut o.sensor_covariance)?;
    o.likelihood = rd.f64()?;
    o.consistency = rd.f64()?;
    read_vector(rd, &mut o.innovation)?;
    Ok(())
}

/// Tag encoding of the engine's pending lazy-wake reason (§17). The
/// strings are the engine's own literals; the tag keeps them out of the
/// byte format.
pub(crate) fn wake_reason_tag(reason: Option<&'static str>) -> u8 {
    match reason {
        None => 0,
        Some("chi2_window") => 1,
        Some("consistency") => 2,
        Some("audit") => 3,
        Some(other) => unreachable!("unknown wake reason {other:?}"),
    }
}

pub(crate) fn wake_reason_from_tag(tag: u8) -> Result<Option<&'static str>> {
    match tag {
        0 => Ok(None),
        1 => Ok(Some("chi2_window")),
        2 => Ok(Some("consistency")),
        3 => Ok(Some("audit")),
        other => Err(snapshot_err(format!("unknown wake-reason tag {other}"))),
    }
}

// ---------------------------------------------------------------------
// Top-level envelope
// ---------------------------------------------------------------------

fn write_header(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(MAGIC);
    wire::put_u32(out, SNAPSHOT_VERSION);
    wire::put_u8(out, kind);
}

fn read_header(rd: &mut ByteReader<'_>, expect_kind: u8) -> Result<()> {
    let magic = rd.bytes(4)?;
    if magic != MAGIC {
        return Err(snapshot_err("bad magic (not a RoboADS snapshot)"));
    }
    let version = rd.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(snapshot_err(format!(
            "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
        )));
    }
    let kind = rd.u8()?;
    if kind != expect_kind {
        return Err(snapshot_err(format!(
            "snapshot kind mismatch: found {kind}, expected {expect_kind}"
        )));
    }
    Ok(())
}

fn finish(rd: &ByteReader<'_>) -> Result<()> {
    if !rd.is_empty() {
        return Err(snapshot_err(format!(
            "{} trailing bytes after snapshot body",
            rd.remaining()
        )));
    }
    Ok(())
}

/// Serializes a standalone detector's complete mutable state.
pub fn snapshot_detector(detector: &RoboAds) -> Vec<u8> {
    let mut out = Vec::new();
    write_header(&mut out, KIND_DETECTOR);
    detector.snap_write(&mut out);
    out
}

/// Restores a detector snapshot onto `detector`, which must be an
/// identically-constructed twin (same system, mode bank and config) of
/// the snapshotted instance. After a successful restore, continuing the
/// twin is bitwise identical to continuing the original.
///
/// # Errors
///
/// [`CoreError::Snapshot`] on a bad magic/version/kind, any shape
/// mismatch against the twin, or trailing bytes. On error the twin may
/// hold partially-restored state and must not be stepped.
pub fn restore_detector(detector: &mut RoboAds, bytes: &[u8]) -> Result<()> {
    let mut rd = ByteReader::new(bytes);
    read_header(&mut rd, KIND_DETECTOR)?;
    detector.snap_read(&mut rd)?;
    finish(&rd)
}

/// Serializes a fleet's complete mutable state: the engine (per-robot
/// detectors in fleet order, tick counters) and the ingest boundary's
/// staging slots.
pub fn snapshot_fleet(engine: &FleetEngine, ingest: &FleetIngest) -> Vec<u8> {
    let mut out = Vec::new();
    write_header(&mut out, KIND_FLEET);
    engine.snap_write(&mut out);
    ingest.snap_write(&mut out);
    out
}

/// Restores a fleet snapshot onto an identically-constructed twin
/// `(engine, ingest)` pair. The signature partition is invalidated and
/// re-resolves from the restored activation masks on the next batch —
/// the grouping is derived state, and re-deriving it is bitwise
/// neutral (pinned by `tests/fleet_determinism.rs`).
///
/// # Errors
///
/// [`CoreError::Snapshot`] on envelope or shape mismatches (including
/// a robot-count mismatch against the twin). On error the twin pair
/// may hold partially-restored state and must not be stepped.
pub fn restore_fleet(
    engine: &mut FleetEngine,
    ingest: &mut FleetIngest,
    bytes: &[u8],
) -> Result<()> {
    let mut rd = ByteReader::new(bytes);
    read_header(&mut rd, KIND_FLEET)?;
    engine.snap_read(&mut rd)?;
    ingest.snap_read(&mut rd)?;
    finish(&rd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_models::presets;

    fn detector() -> RoboAds {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        RoboAds::with_defaults(system, x0).unwrap()
    }

    #[test]
    fn header_rejects_bad_magic_version_and_kind() {
        let mut twin = detector();
        let snap = snapshot_detector(&twin);

        let mut bad = snap.clone();
        bad[0] = b'X';
        assert!(matches!(
            restore_detector(&mut twin, &bad),
            Err(CoreError::Snapshot { .. })
        ));

        let mut bad = snap.clone();
        bad[4] = 99; // version LE byte 0
        assert!(matches!(
            restore_detector(&mut twin, &bad),
            Err(CoreError::Snapshot { .. })
        ));

        let mut bad = snap.clone();
        bad[8] = KIND_FLEET;
        assert!(matches!(
            restore_detector(&mut twin, &bad),
            Err(CoreError::Snapshot { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut twin = detector();
        let mut snap = snapshot_detector(&twin);
        snap.push(0);
        assert!(matches!(
            restore_detector(&mut twin, &snap),
            Err(CoreError::Snapshot { .. })
        ));
    }

    #[test]
    fn truncation_is_rejected_not_panicked() {
        let mut twin = detector();
        let snap = snapshot_detector(&twin);
        for cut in [0, 3, 4, 8, 9, snap.len() / 2, snap.len() - 1] {
            assert!(
                restore_detector(&mut twin, &snap[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn wake_reason_tags_roundtrip() {
        for reason in [
            None,
            Some("chi2_window"),
            Some("consistency"),
            Some("audit"),
        ] {
            assert_eq!(
                wake_reason_from_tag(wake_reason_tag(reason)).unwrap(),
                reason
            );
        }
        assert!(wake_reason_from_tag(17).is_err());
    }
}
