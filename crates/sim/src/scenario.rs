//! The paper's attack and failure scenarios (Table II) as data.
//!
//! Timing follows Figure 6's timeline: the control rate is 10 Hz, runs
//! last 20 s (200 iterations), the first misbehavior triggers at
//! t = 4 s (k = 40) and, in combined scenarios, the second at t = 10 s
//! (k = 100). Magnitudes are the paper's own (±6000 speed units on the
//! wheels, +0.07 m / −0.1 m IPS shifts, 100 encoder ticks, all-zero
//! LiDAR ranges).

use roboads_linalg::Vector;
use roboads_models::dynamics::DifferentialDrive;

use crate::misbehavior::{Corruption, Misbehavior, Target};

/// Onset of the first misbehavior (t = 4 s).
pub const FIRST_TRIGGER: usize = 40;
/// Onset of the second misbehavior in combined scenarios (t = 10 s).
pub const SECOND_TRIGGER: usize = 100;
/// Default scenario duration in control iterations (20 s at 10 Hz).
pub const DEFAULT_DURATION: usize = 200;

/// Ground-truth misbehavior timeline derived from a scenario's
/// misbehavior windows, used by the evaluation harness.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GroundTruth {
    misbehaviors: Vec<Misbehavior>,
}

impl GroundTruth {
    /// Sensor suite indices under active misbehavior at iteration `k`,
    /// sorted and deduplicated.
    pub fn sensors_at(&self, k: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .misbehaviors
            .iter()
            .filter(|m| m.is_active(k) && !m.is_transient())
            .filter_map(|m| match m.target() {
                Target::Sensor(i) => Some(i),
                Target::Actuators => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether an actuator misbehavior is active at iteration `k`.
    pub fn actuator_at(&self, k: usize) -> bool {
        self.misbehaviors
            .iter()
            .any(|m| m.is_active(k) && !m.is_transient() && m.target() == Target::Actuators)
    }

    /// Whether anything is active at iteration `k`.
    pub fn any_at(&self, k: usize) -> bool {
        self.actuator_at(k) || !self.sensors_at(k).is_empty()
    }
}

/// One evaluation scenario: a named set of misbehaviors over a run.
///
/// # Example
///
/// ```
/// use roboads_sim::Scenario;
///
/// let s = Scenario::wheel_logic_bomb();
/// assert_eq!(s.number(), 1);
/// assert!(s.ground_truth().actuator_at(50));
/// assert!(!s.ground_truth().actuator_at(10));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Scenario {
    number: usize,
    name: String,
    description: String,
    misbehaviors: Vec<Misbehavior>,
    duration: usize,
}

impl Scenario {
    /// Creates a custom scenario.
    pub fn new(
        number: usize,
        name: impl Into<String>,
        description: impl Into<String>,
        misbehaviors: Vec<Misbehavior>,
        duration: usize,
    ) -> Self {
        Scenario {
            number,
            name: name.into(),
            description: description.into(),
            misbehaviors,
            duration,
        }
    }

    /// A clean, attack-free run (for FPR floors and Table IV).
    pub fn clean() -> Self {
        Scenario::new(0, "clean", "no misbehavior", vec![], DEFAULT_DURATION)
    }

    /// Table II row number (0 for clean/custom).
    pub fn number(&self) -> usize {
        self.number
    }

    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scenario description (Table II "Description"/"Detail").
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The misbehaviors.
    pub fn misbehaviors(&self) -> &[Misbehavior] {
        &self.misbehaviors
    }

    /// Run length in control iterations.
    pub fn duration(&self) -> usize {
        self.duration
    }

    /// The ground-truth timeline.
    pub fn ground_truth(&self) -> GroundTruth {
        GroundTruth {
            misbehaviors: self.misbehaviors.clone(),
        }
    }

    // --- Table II, Khepera (sensor indices: 0 = IPS, 1 = wheel
    //     encoder, 2 = LiDAR). ---

    /// #1 — wheel controller logic bomb: −6000 speed units on `v_L`,
    /// +6000 on `v_R` (actuator / cyber).
    pub fn wheel_logic_bomb() -> Self {
        let units = DifferentialDrive::speed_units_to_mps(6000.0);
        Scenario::new(
            1,
            "wheel-controller-logic-bomb",
            "logic bomb in actuator utility lib alters planned control commands \
             (-6000 speed units on vL, +6000 on vR)",
            vec![Misbehavior::new(
                "wheel-logic-bomb",
                Target::Actuators,
                Corruption::Bias(Vector::from_slice(&[-units, units])),
                FIRST_TRIGGER,
                None,
            )],
            DEFAULT_DURATION,
        )
    }

    /// #2 — wheel jamming: the left wheel is physically jammed
    /// (actuator / physical).
    pub fn wheel_jamming() -> Self {
        Scenario::new(
            2,
            "wheel-jamming",
            "left wheel physically jammed (0 speed units on vL)",
            vec![Misbehavior::new(
                "wheel-jamming",
                Target::Actuators,
                Corruption::Scale(vec![0.0, 1.0]),
                FIRST_TRIGGER,
                None,
            )],
            DEFAULT_DURATION,
        )
    }

    /// #3 — IPS logic bomb: +0.07 m shift on X (sensor / cyber).
    pub fn ips_logic_bomb() -> Self {
        Scenario::new(
            3,
            "ips-logic-bomb",
            "logic bomb in IPS data processing lib shifts X by +0.07 m",
            vec![Misbehavior::new(
                "ips-logic-bomb",
                Target::Sensor(0),
                Corruption::Bias(Vector::from_slice(&[0.07, 0.0, 0.0])),
                FIRST_TRIGGER,
                None,
            )],
            DEFAULT_DURATION,
        )
    }

    /// #4 — IPS spoofing: −0.1 m shift on X (sensor / physical).
    pub fn ips_spoofing() -> Self {
        Scenario::new(
            4,
            "ips-spoofing",
            "fake IPS signal overpowers authentic source (X shifted by -0.1 m)",
            vec![Misbehavior::new(
                "ips-spoofing",
                Target::Sensor(0),
                Corruption::Bias(Vector::from_slice(&[-0.1, 0.0, 0.0])),
                FIRST_TRIGGER,
                None,
            )],
            DEFAULT_DURATION,
        )
    }

    /// #5 — wheel-encoder logic bomb: +100 ticks on the left wheel
    /// counter (sensor / cyber).
    pub fn encoder_logic_bomb() -> Self {
        Scenario::new(
            5,
            "wheel-encoder-logic-bomb",
            "logic bomb in encoder data processing lib increments left counter by 100 steps",
            vec![Misbehavior::new(
                "encoder-ticks",
                Target::Sensor(1),
                Corruption::EncoderTickBias {
                    left: 100.0,
                    right: 0.0,
                },
                FIRST_TRIGGER,
                None,
            )],
            DEFAULT_DURATION,
        )
    }

    /// #6 — LiDAR DoS: wire cut, 0 m in every direction
    /// (sensor / physical).
    pub fn lidar_dos() -> Self {
        Scenario::new(
            6,
            "lidar-dos",
            "LiDAR wire cut: received distance is 0 m in each direction",
            vec![Misbehavior::new(
                "lidar-dos",
                Target::Sensor(2),
                Corruption::ReplaceWith(Vector::zeros(4)),
                FIRST_TRIGGER,
                None,
            )],
            DEFAULT_DURATION,
        )
    }

    /// #7 — LiDAR blocking: the extracted west-wall distance is wrong
    /// (sensor / physical).
    pub fn lidar_blocking() -> Self {
        Scenario::new(
            7,
            "lidar-blocking",
            "laser ejection/reception blocked: west-wall distance reading incorrect",
            vec![Misbehavior::new(
                "lidar-blocking",
                Target::Sensor(2),
                Corruption::Bias(Vector::from_slice(&[0.12, 0.0, 0.0, 0.0])),
                FIRST_TRIGGER,
                None,
            )],
            DEFAULT_DURATION,
        )
    }

    /// #8 — wheel controller & IPS logic bombs (sensor + actuator /
    /// cyber): IPS at t = 4 s, wheels at t = 10 s (Figure 6 timeline).
    pub fn wheel_and_ips_logic_bomb() -> Self {
        let units = DifferentialDrive::speed_units_to_mps(6000.0);
        Scenario::new(
            8,
            "wheel-and-ips-logic-bomb",
            "IPS X shifted +0.07 m from 4 s; wheel commands altered by ∓6000 units from 10 s",
            vec![
                Misbehavior::new(
                    "ips-logic-bomb",
                    Target::Sensor(0),
                    Corruption::Bias(Vector::from_slice(&[0.07, 0.0, 0.0])),
                    FIRST_TRIGGER,
                    None,
                ),
                Misbehavior::new(
                    "wheel-logic-bomb",
                    Target::Actuators,
                    Corruption::Bias(Vector::from_slice(&[-units, units])),
                    SECOND_TRIGGER,
                    None,
                ),
            ],
            DEFAULT_DURATION,
        )
    }

    /// #9 — LiDAR DoS & wheel-encoder logic bomb (S0→2→4): encoder at
    /// t = 4 s, LiDAR at t = 10 s.
    pub fn lidar_dos_and_encoder_logic_bomb() -> Self {
        Scenario::new(
            9,
            "lidar-dos-and-encoder-logic-bomb",
            "left encoder +100 steps from 4 s; LiDAR 0 m in each direction from 10 s",
            vec![
                Misbehavior::new(
                    "encoder-ticks",
                    Target::Sensor(1),
                    Corruption::EncoderTickBias {
                        left: 100.0,
                        right: 0.0,
                    },
                    FIRST_TRIGGER,
                    None,
                ),
                Misbehavior::new(
                    "lidar-dos",
                    Target::Sensor(2),
                    Corruption::ReplaceWith(Vector::zeros(4)),
                    SECOND_TRIGGER,
                    None,
                ),
            ],
            DEFAULT_DURATION,
        )
    }

    /// #10 — IPS spoofing & LiDAR DoS (S0→3→5→1): LiDAR DoS during
    /// 4–12 s, IPS shift from 8 s.
    pub fn ips_spoofing_and_lidar_dos() -> Self {
        Scenario::new(
            10,
            "ips-spoofing-and-lidar-dos",
            "LiDAR 0 m in each direction during 4–12 s; IPS X shifted +0.07 m from 8 s",
            vec![
                Misbehavior::new(
                    "lidar-dos",
                    Target::Sensor(2),
                    Corruption::ReplaceWith(Vector::zeros(4)),
                    FIRST_TRIGGER,
                    Some(120),
                ),
                Misbehavior::new(
                    "ips-spoofing",
                    Target::Sensor(0),
                    Corruption::Bias(Vector::from_slice(&[0.07, 0.0, 0.0])),
                    80,
                    None,
                ),
            ],
            DEFAULT_DURATION,
        )
    }

    /// #11 — IPS & wheel-encoder logic bombs (S0→2→6): encoder at
    /// t = 4 s, IPS at t = 10 s.
    pub fn ips_and_encoder_logic_bomb() -> Self {
        Scenario::new(
            11,
            "ips-and-encoder-logic-bomb",
            "left encoder +100 steps from 4 s; IPS X shifted +0.1 m from 10 s",
            vec![
                Misbehavior::new(
                    "encoder-ticks",
                    Target::Sensor(1),
                    Corruption::EncoderTickBias {
                        left: 100.0,
                        right: 0.0,
                    },
                    FIRST_TRIGGER,
                    None,
                ),
                Misbehavior::new(
                    "ips-logic-bomb",
                    Target::Sensor(0),
                    Corruption::Bias(Vector::from_slice(&[0.1, 0.0, 0.0])),
                    SECOND_TRIGGER,
                    None,
                ),
            ],
            DEFAULT_DURATION,
        )
    }

    /// Adds one-iteration transient pose glitches ("uneven ground or
    /// bumps", §IV-D) every `period` iterations, cycling through the
    /// sensing workflows. Transients corrupt data but are excluded from
    /// the ground truth — a detector that reports them is producing
    /// false positives, which is exactly the trade the Fig. 7 window
    /// sweep measures.
    pub fn with_transient_bumps(mut self, period: usize, magnitude: f64) -> Self {
        let mut sensor = 0usize;
        let mut k = period.max(1);
        while k < self.duration {
            // Skip bumps too close to a real misbehavior onset so delay
            // measurements stay attributable.
            let near_onset = self.misbehaviors.iter().any(|m| k.abs_diff(m.start()) < 3);
            if !near_onset {
                let dim = match sensor {
                    2 => 4, // LiDAR workflow has 4 components
                    _ => 3,
                };
                let mut bump = vec![0.0; dim];
                bump[k % dim] = magnitude;
                self.misbehaviors.push(Misbehavior::transient_glitch(
                    format!("bump-{k}"),
                    Target::Sensor(sensor),
                    Corruption::Bias(Vector::from_slice(&bump)),
                    k,
                ));
            }
            sensor = (sensor + 1) % 3;
            k += period.max(1);
        }
        self
    }

    /// All eleven Khepera Table-II scenarios in row order.
    pub fn all_khepera() -> Vec<Scenario> {
        vec![
            Scenario::wheel_logic_bomb(),
            Scenario::wheel_jamming(),
            Scenario::ips_logic_bomb(),
            Scenario::ips_spoofing(),
            Scenario::encoder_logic_bomb(),
            Scenario::lidar_dos(),
            Scenario::lidar_blocking(),
            Scenario::wheel_and_ips_logic_bomb(),
            Scenario::lidar_dos_and_encoder_logic_bomb(),
            Scenario::ips_spoofing_and_lidar_dos(),
            Scenario::ips_and_encoder_logic_bomb(),
        ]
    }

    // --- §V-D Tamiya analogues (sensor indices: 0 = IPS, 1 = IMU,
    //     2 = LiDAR; actuators = (speed, steering)). ---

    /// Tamiya: steering take-over (actuator / cyber).
    pub fn tamiya_steering_takeover() -> Self {
        Scenario::new(
            1,
            "tamiya-steering-takeover",
            "injected steering commands: +0.3 rad on the servo, -0.05 m/s on the throttle",
            vec![Misbehavior::new(
                "steering-takeover",
                Target::Actuators,
                Corruption::Bias(Vector::from_slice(&[-0.05, 0.3])),
                FIRST_TRIGGER,
                None,
            )],
            DEFAULT_DURATION,
        )
    }

    /// Tamiya: IPS spoofing (sensor / physical).
    pub fn tamiya_ips_spoofing() -> Self {
        Scenario::new(
            2,
            "tamiya-ips-spoofing",
            "fake IPS signal shifts X by -0.1 m",
            vec![Misbehavior::new(
                "ips-spoofing",
                Target::Sensor(0),
                Corruption::Bias(Vector::from_slice(&[-0.1, 0.0, 0.0])),
                FIRST_TRIGGER,
                None,
            )],
            DEFAULT_DURATION,
        )
    }

    /// Tamiya: IMU inertial-nav logic bomb (sensor / cyber).
    pub fn tamiya_imu_logic_bomb() -> Self {
        Scenario::new(
            3,
            "tamiya-imu-logic-bomb",
            "logic bomb in the inertial-nav lib shifts Y by +0.08 m",
            vec![Misbehavior::new(
                "imu-logic-bomb",
                Target::Sensor(1),
                Corruption::Bias(Vector::from_slice(&[0.0, 0.08, 0.0])),
                FIRST_TRIGGER,
                None,
            )],
            DEFAULT_DURATION,
        )
    }

    /// Tamiya: LiDAR DoS (sensor / physical).
    pub fn tamiya_lidar_dos() -> Self {
        Scenario::new(
            4,
            "tamiya-lidar-dos",
            "LiDAR 0 m in each direction",
            vec![Misbehavior::new(
                "lidar-dos",
                Target::Sensor(2),
                Corruption::ReplaceWith(Vector::zeros(4)),
                FIRST_TRIGGER,
                None,
            )],
            DEFAULT_DURATION,
        )
    }

    /// Tamiya: LiDAR blocking (sensor / physical).
    pub fn tamiya_lidar_blocking() -> Self {
        Scenario::new(
            5,
            "tamiya-lidar-blocking",
            "west-wall distance reading incorrect",
            vec![Misbehavior::new(
                "lidar-blocking",
                Target::Sensor(2),
                Corruption::Bias(Vector::from_slice(&[0.12, 0.0, 0.0, 0.0])),
                FIRST_TRIGGER,
                None,
            )],
            DEFAULT_DURATION,
        )
    }

    /// Tamiya: combined steering take-over and IMU logic bomb.
    pub fn tamiya_combined() -> Self {
        Scenario::new(
            6,
            "tamiya-combined",
            "IMU Y shifted +0.08 m from 4 s; steering altered from 10 s",
            vec![
                Misbehavior::new(
                    "imu-logic-bomb",
                    Target::Sensor(1),
                    Corruption::Bias(Vector::from_slice(&[0.0, 0.08, 0.0])),
                    FIRST_TRIGGER,
                    None,
                ),
                Misbehavior::new(
                    "steering-takeover",
                    Target::Actuators,
                    Corruption::Bias(Vector::from_slice(&[-0.05, 0.3])),
                    SECOND_TRIGGER,
                    None,
                ),
            ],
            DEFAULT_DURATION,
        )
    }

    /// §VI resilience probe: an attacker that switches targets every
    /// two seconds, cycling IPS shift → encoder ticks → LiDAR blocking,
    /// "making mode estimation challenging". Starts at the usual 4 s
    /// trigger.
    pub fn switching_attacker() -> Self {
        let mut misbehaviors = Vec::new();
        let dwell = 20; // 2 s per target
        let mut k = FIRST_TRIGGER;
        let mut phase = 0usize;
        while k < DEFAULT_DURATION {
            let end = Some((k + dwell).min(DEFAULT_DURATION));
            let m = match phase % 3 {
                0 => Misbehavior::new(
                    format!("switch-ips-{k}"),
                    Target::Sensor(0),
                    Corruption::Bias(Vector::from_slice(&[0.08, 0.0, 0.0])),
                    k,
                    end,
                ),
                1 => Misbehavior::new(
                    format!("switch-encoder-{k}"),
                    Target::Sensor(1),
                    Corruption::EncoderTickBias {
                        left: 100.0,
                        right: 0.0,
                    },
                    k,
                    end,
                ),
                _ => Misbehavior::new(
                    format!("switch-lidar-{k}"),
                    Target::Sensor(2),
                    Corruption::Bias(Vector::from_slice(&[0.12, 0.0, 0.0, 0.0])),
                    k,
                    end,
                ),
            };
            misbehaviors.push(m);
            phase += 1;
            k += dwell;
        }
        Scenario::new(
            12,
            "switching-attacker",
            "attacker rotates its target workflow every 2 s (IPS → encoder → LiDAR)",
            misbehaviors,
            DEFAULT_DURATION,
        )
    }

    /// All §V-D Tamiya scenarios.
    pub fn all_tamiya() -> Vec<Scenario> {
        vec![
            Scenario::tamiya_steering_takeover(),
            Scenario::tamiya_ips_spoofing(),
            Scenario::tamiya_imu_logic_bomb(),
            Scenario::tamiya_lidar_dos(),
            Scenario::tamiya_lidar_blocking(),
            Scenario::tamiya_combined(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_khepera_scenarios_are_numbered_in_order() {
        let all = Scenario::all_khepera();
        assert_eq!(all.len(), 11);
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.number(), i + 1, "{}", s.name());
            assert_eq!(s.duration(), DEFAULT_DURATION);
        }
    }

    #[test]
    fn clean_scenario_has_no_ground_truth_activity() {
        let gt = Scenario::clean().ground_truth();
        for k in 0..DEFAULT_DURATION {
            assert!(!gt.any_at(k));
        }
    }

    #[test]
    fn combined_scenario_timeline_matches_figure6() {
        let gt = Scenario::wheel_and_ips_logic_bomb().ground_truth();
        // Before 4 s: clean.
        assert!(gt.sensors_at(39).is_empty());
        assert!(!gt.actuator_at(39));
        // 4–10 s: IPS only.
        assert_eq!(gt.sensors_at(60), vec![0]);
        assert!(!gt.actuator_at(60));
        // After 10 s: IPS + actuator.
        assert_eq!(gt.sensors_at(150), vec![0]);
        assert!(gt.actuator_at(150));
    }

    #[test]
    fn scenario_10_transitions_s0_s3_s5_s1() {
        let gt = Scenario::ips_spoofing_and_lidar_dos().ground_truth();
        assert!(gt.sensors_at(20).is_empty()); // S0
        assert_eq!(gt.sensors_at(50), vec![2]); // S3 (LiDAR)
        assert_eq!(gt.sensors_at(100), vec![0, 2]); // S5 (IPS + LiDAR)
        assert_eq!(gt.sensors_at(150), vec![0]); // S1 (IPS only)
    }

    #[test]
    fn tamiya_set_is_complete() {
        let all = Scenario::all_tamiya();
        assert_eq!(all.len(), 6);
        assert!(all
            .iter()
            .any(|s| s.ground_truth().actuator_at(FIRST_TRIGGER)));
    }

    #[test]
    fn custom_scenario_construction() {
        let s = Scenario::new(99, "custom", "desc", vec![], 50);
        assert_eq!(s.number(), 99);
        assert_eq!(s.name(), "custom");
        assert_eq!(s.description(), "desc");
        assert_eq!(s.duration(), 50);
        assert!(s.misbehaviors().is_empty());
    }
}
