//! Angle normalization helpers.
//!
//! Robot headings live on the circle; every state update and every
//! residual involving an angular component must be wrapped to (−π, π] or
//! the estimator sees spurious 2π-sized "anomalies" when the robot crosses
//! the branch cut.

use std::f64::consts::PI;

/// Wraps an angle to the interval `(−π, π]`.
///
/// ```
/// use roboads_models::wrap_angle;
/// use std::f64::consts::PI;
///
/// assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
/// assert_eq!(wrap_angle(0.5), 0.5);
/// ```
pub fn wrap_angle(theta: f64) -> f64 {
    if !theta.is_finite() {
        return theta;
    }
    let two_pi = 2.0 * PI;
    let mut a = theta % two_pi;
    if a <= -PI {
        a += two_pi;
    } else if a > PI {
        a -= two_pi;
    }
    a
}

/// Smallest signed difference `a − b` on the circle, in `(−π, π]`.
///
/// ```
/// use roboads_models::angle_difference;
/// use std::f64::consts::PI;
///
/// // Crossing the branch cut: 179° − (−179°) is −2°, not 358°.
/// let d = angle_difference(179.0_f64.to_radians(), -179.0_f64.to_radians());
/// assert!((d + 2.0_f64.to_radians()).abs() < 1e-12);
/// # let _ = PI;
/// ```
pub fn angle_difference(a: f64, b: f64) -> f64 {
    wrap_angle(a - b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_is_idempotent() {
        for i in -20..20 {
            let theta = i as f64 * 0.7;
            let w = wrap_angle(theta);
            assert!((wrap_angle(w) - w).abs() < 1e-15);
            assert!(w > -PI - 1e-15 && w <= PI + 1e-15);
        }
    }

    #[test]
    fn wrap_preserves_in_range_values() {
        for &t in &[-3.0, -1.0, 0.0, 1.0, 3.0] {
            assert_eq!(wrap_angle(t), t);
        }
    }

    #[test]
    fn wrap_boundary_convention() {
        // Exactly π stays π; exactly −π maps to π.
        assert_eq!(wrap_angle(PI), PI);
        assert_eq!(wrap_angle(-PI), PI);
    }

    #[test]
    fn difference_is_antisymmetric_on_circle() {
        let a = 2.9;
        let b = -2.9;
        assert!((angle_difference(a, b) + angle_difference(b, a)).abs() < 1e-12);
    }

    #[test]
    fn non_finite_passes_through() {
        assert!(wrap_angle(f64::NAN).is_nan());
        assert!(wrap_angle(f64::INFINITY).is_infinite());
    }
}
