//! Post-run telemetry summary attached to every [`SimOutcome`].
//!
//! The runner threads one [`Telemetry`] context through the detector
//! pipeline; after the loop it condenses the shared metrics registry
//! into this plain-data summary so harnesses (and the `telemetry`
//! example) can print detector health without touching the registry
//! API.
//!
//! [`SimOutcome`]: crate::SimOutcome
//! [`Telemetry`]: roboads_obs::Telemetry

use roboads_obs::json::JsonObject;
use roboads_obs::{HistogramSummary, MetricsRegistry};

/// Distribution summaries for one estimator-bank hypothesis.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeTelemetry {
    /// Mode index within the run's mode set.
    pub mode: usize,
    /// Posterior probability distribution over the run.
    pub probability: HistogramSummary,
    /// Innovation-consistency p-value distribution over the run (the
    /// numerical-health signal: a clean run keeps the median well above
    /// the engine's re-anchor floor).
    pub consistency: HistogramSummary,
}

/// Detector-health summary of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// Successful engine iterations.
    pub steps: u64,
    /// Wall-clock latency of `detector.step` per iteration, seconds.
    pub step_latency: HistogramSummary,
    /// Collapsed hypotheses re-anchored to the winner.
    pub reanchors: u64,
    /// Iterations lost to `CoreError::Numeric`.
    pub numeric_failures: u64,
    /// Cholesky breakdowns observed in the linalg substrate during the
    /// run (process-wide attribution; see `roboads_linalg::health`).
    pub cholesky_failures: u64,
    /// Rising edges of the window-confirmed sensor alarm.
    pub sensor_alarms: u64,
    /// Rising edges of the window-confirmed actuator alarm.
    pub actuator_alarms: u64,
    /// Per-mode probability/consistency distributions, in mode order.
    pub modes: Vec<ModeTelemetry>,
}

impl TelemetrySummary {
    /// Condenses the registry the runner shared with the pipeline.
    ///
    /// Missing instruments read as zero/empty (e.g. a baseline-detector
    /// run registers no engine metrics).
    pub fn from_registry(metrics: &MetricsRegistry) -> Self {
        let counter = |name: &str| metrics.counter_value(name).unwrap_or(0);
        let histogram = |name: &str| {
            metrics
                .histogram_summary(name)
                .unwrap_or_else(HistogramSummary::empty)
        };
        let mut modes = Vec::new();
        for m in 0.. {
            let probability = metrics.histogram_summary(&format!("engine.mode{m}.probability"));
            let consistency = metrics.histogram_summary(&format!("engine.mode{m}.consistency"));
            match (probability, consistency) {
                (Some(probability), Some(consistency)) => modes.push(ModeTelemetry {
                    mode: m,
                    probability,
                    consistency,
                }),
                _ => break,
            }
        }
        TelemetrySummary {
            steps: counter("engine.steps"),
            step_latency: histogram("sim.step_latency_s"),
            reanchors: counter("engine.reanchor.count"),
            numeric_failures: counter("engine.numeric_failures"),
            cholesky_failures: counter("engine.cholesky_failures"),
            sensor_alarms: counter("decision.sensor_alarms"),
            actuator_alarms: counter("decision.actuator_alarms"),
            modes,
        }
    }

    /// One-line JSON encoding (harness output, `examples/telemetry.rs`).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("steps", self.steps);
        o.field_raw("step_latency_s", &self.step_latency.to_json());
        o.field_u64("reanchors", self.reanchors);
        o.field_u64("numeric_failures", self.numeric_failures);
        o.field_u64("cholesky_failures", self.cholesky_failures);
        o.field_u64("sensor_alarms", self.sensor_alarms);
        o.field_u64("actuator_alarms", self.actuator_alarms);
        let modes: Vec<String> = self
            .modes
            .iter()
            .map(|m| {
                let mut mo = JsonObject::new();
                mo.field_u64("mode", m.mode as u64);
                mo.field_raw("probability", &m.probability.to_json());
                mo.field_raw("consistency", &m.consistency.to_json());
                mo.finish()
            })
            .collect();
        o.field_raw("modes", &format!("[{}]", modes.join(",")));
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_summarizes_to_zeros() {
        let metrics = MetricsRegistry::new();
        let s = TelemetrySummary::from_registry(&metrics);
        assert_eq!(s.steps, 0);
        assert_eq!(s.step_latency.count, 0);
        assert!(s.modes.is_empty());
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"modes\":[]"));
    }

    #[test]
    fn populated_registry_is_condensed_per_mode() {
        let metrics = MetricsRegistry::new();
        metrics.counter("engine.steps").add(30);
        metrics.counter("engine.reanchor.count").add(2);
        for m in 0..3 {
            let p = metrics.histogram(&format!("engine.mode{m}.probability"));
            let c = metrics.histogram(&format!("engine.mode{m}.consistency"));
            for _ in 0..10 {
                p.record(1.0 / 3.0);
                c.record(0.5);
            }
        }
        metrics.histogram("sim.step_latency_s").record(0.0004);
        let s = TelemetrySummary::from_registry(&metrics);
        assert_eq!(s.steps, 30);
        assert_eq!(s.reanchors, 2);
        assert_eq!(s.modes.len(), 3);
        assert_eq!(s.modes[2].mode, 2);
        assert_eq!(s.modes[0].probability.count, 10);
        assert_eq!(s.step_latency.count, 1);
        assert!(s.to_json().contains("\"steps\":30"));
    }
}
