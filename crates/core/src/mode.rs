use roboads_linalg::Vector;
use roboads_models::{observability, RobotSystem};

use crate::{CoreError, Result};

/// One sensor-condition hypothesis: a partition of the sensor suite into
/// *reference* sensors (assumed clean, used for estimation) and *testing*
/// sensors (potentially corrupted, cross-validated).
///
/// # Example
///
/// ```
/// use roboads_core::Mode;
///
/// let mode = Mode::new(vec![1], vec![0, 2]);
/// assert_eq!(mode.reference(), &[1]);
/// assert!(mode.is_testing(0));
/// assert!(!mode.is_testing(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mode {
    reference: Vec<usize>,
    testing: Vec<usize>,
}

impl Mode {
    /// Creates a mode from reference and testing sensor index lists.
    /// Both lists are sorted; suite-order stacking depends on it.
    pub fn new(mut reference: Vec<usize>, mut testing: Vec<usize>) -> Self {
        reference.sort_unstable();
        testing.sort_unstable();
        Mode { reference, testing }
    }

    /// The reference (assumed-clean) sensor indices, sorted.
    pub fn reference(&self) -> &[usize] {
        &self.reference
    }

    /// The testing (potentially corrupted) sensor indices, sorted.
    pub fn testing(&self) -> &[usize] {
        &self.testing
    }

    /// Whether sensor `i` is in the testing set.
    pub fn is_testing(&self, i: usize) -> bool {
        self.testing.binary_search(&i).is_ok()
    }

    /// Whether sensor `i` is in the reference set.
    pub fn is_reference(&self, i: usize) -> bool {
        self.reference.binary_search(&i).is_ok()
    }

    /// Short human-readable description, e.g. `"ref{1} test{0,2}"`.
    pub fn describe(&self) -> String {
        let fmt = |v: &[usize]| {
            v.iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "ref{{{}}} test{{{}}}",
            fmt(&self.reference),
            fmt(&self.testing)
        )
    }
}

/// An ordered set of modes for the multi-mode engine.
///
/// The paper's default (§VI "Mode set selection") keeps one mode per
/// sensor, each with exactly one reference sensor, so the mode count
/// grows linearly in `p`; the complete set of `2^p − 1` hypotheses is
/// also available for designers who accept the exponential cost, as is
/// grouping for partial-state sensors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModeSet {
    modes: Vec<Mode>,
}

impl ModeSet {
    /// Builds the paper's default mode set: mode `m` trusts exactly
    /// sensor `m` and tests all others.
    ///
    /// ```
    /// use roboads_core::ModeSet;
    /// use roboads_models::presets;
    ///
    /// let set = ModeSet::one_reference_per_sensor(&presets::khepera_system());
    /// assert_eq!(set.len(), 3);
    /// assert_eq!(set.modes()[1].reference(), &[1]);
    /// ```
    pub fn one_reference_per_sensor(system: &RobotSystem) -> Self {
        let p = system.sensor_count();
        let modes = (0..p)
            .map(|m| {
                let testing = (0..p).filter(|&i| i != m).collect();
                Mode::new(vec![m], testing)
            })
            .collect();
        ModeSet { modes }
    }

    /// Builds the complete mode set: one mode per nonempty reference
    /// subset (`2^p − 1` modes, excluding the all-corrupted condition).
    pub fn complete(system: &RobotSystem) -> Self {
        let p = system.sensor_count();
        let mut modes = Vec::with_capacity((1usize << p) - 1);
        for mask in 1u32..(1 << p) {
            let reference: Vec<usize> = (0..p).filter(|i| mask & (1 << i) != 0).collect();
            let testing: Vec<usize> = (0..p).filter(|i| mask & (1 << i) == 0).collect();
            modes.push(Mode::new(reference, testing));
        }
        ModeSet { modes }
    }

    /// Builds a mode set from explicit reference *groups*: each group is
    /// the reference set of one mode, all other sensors are testing.
    ///
    /// This is §VI's grouping mechanism: a magnetometer that cannot
    /// reconstruct the state alone is grouped with a GPS so the pair can
    /// serve as a reference.
    pub fn from_reference_groups(system: &RobotSystem, groups: &[Vec<usize>]) -> Self {
        let p = system.sensor_count();
        let modes = groups
            .iter()
            .map(|group| {
                let testing = (0..p).filter(|i| !group.contains(i)).collect();
                Mode::new(group.clone(), testing)
            })
            .collect();
        ModeSet { modes }
    }

    /// The modes in order.
    pub fn modes(&self) -> &[Mode] {
        &self.modes
    }

    /// Number of modes `M`.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Validates the mode set against a system at an operating point:
    ///
    /// * every mode's reference set must make the state observable
    ///   (§VI "sensor capabilities"), and
    /// * must expose the actuator channel (`rank(C₂·G) = q`) so the
    ///   unknown-input estimate exists.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DegenerateMode`] naming the first failing
    /// mode, or [`CoreError::InvalidConfig`] for an empty set or indices
    /// out of range.
    pub fn validate(&self, system: &RobotSystem, x: &Vector, u: &Vector) -> Result<()> {
        if self.modes.is_empty() {
            return Err(CoreError::InvalidConfig {
                name: "mode_set",
                value: "empty".into(),
            });
        }
        let p = system.sensor_count();
        for (m, mode) in self.modes.iter().enumerate() {
            if mode.reference.is_empty() {
                return Err(CoreError::DegenerateMode {
                    mode: m,
                    reason: "empty reference set".into(),
                });
            }
            if mode
                .reference
                .iter()
                .chain(mode.testing.iter())
                .any(|&i| i >= p)
            {
                return Err(CoreError::InvalidConfig {
                    name: "mode_set",
                    value: format!("sensor index out of range in mode {m}"),
                });
            }
            let observable = observability::is_observable(system, &mode.reference, x, u)
                .map_err(|e| CoreError::Numeric(e.to_string()))?;
            if !observable {
                return Err(CoreError::DegenerateMode {
                    mode: m,
                    reason: format!(
                        "reference sensors {:?} cannot reconstruct the state; group them with \
                         a sensor that observes the missing components (see paper §VI)",
                        mode.reference
                    ),
                });
            }
            // Unknown-input estimability: C₂·G must have full column rank.
            let c2 = system.jacobian_subset(&mode.reference, x);
            let g = system.dynamics().input_jacobian(x, u);
            let f = &c2 * &g;
            let gram = &f.transpose() * &f;
            let rank = gram.rank().map_err(|e| CoreError::Numeric(e.to_string()))?;
            if rank < system.input_dim() {
                return Err(CoreError::DegenerateMode {
                    mode: m,
                    reason: format!(
                        "reference sensors {:?} do not expose all {} actuator channels \
                         (rank(C2*G) = {rank})",
                        mode.reference,
                        system.input_dim()
                    ),
                });
            }
            // Analytical redundancy: after the input estimate consumes q
            // innovation directions, at least one must remain or the
            // hypothesis explains *any* data (unfalsifiable) — the
            // paper's key insight (§IV-B) rests on this redundancy.
            let m2 = system.subset_dim(&mode.reference);
            if m2 <= system.input_dim() {
                return Err(CoreError::DegenerateMode {
                    mode: m,
                    reason: format!(
                        "reference sensors {:?} provide {m2} measurement dimensions for {} \
                         actuator channels: no analytical redundancy remains and the \
                         hypothesis cannot be falsified; group in another sensor (§IV-B/§VI)",
                        mode.reference,
                        system.input_dim()
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_models::presets;

    fn operating_point() -> (Vector, Vector) {
        (
            Vector::from_slice(&[0.5, 0.5, 0.2]),
            Vector::from_slice(&[0.05, 0.04]),
        )
    }

    #[test]
    fn default_set_matches_paper_structure() {
        let sys = presets::khepera_system();
        let set = ModeSet::one_reference_per_sensor(&sys);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        for (m, mode) in set.modes().iter().enumerate() {
            assert_eq!(mode.reference(), &[m]);
            assert_eq!(mode.testing().len(), 2);
            assert!(!mode.is_testing(m));
        }
    }

    #[test]
    fn complete_set_size_is_exponential() {
        let sys = presets::khepera_system();
        let set = ModeSet::complete(&sys);
        assert_eq!(set.len(), 7); // 2³ − 1
                                  // One of them is the all-reference (null) hypothesis.
        assert!(set
            .modes()
            .iter()
            .any(|m| m.reference().len() == 3 && m.testing().is_empty()));
    }

    #[test]
    fn default_and_complete_sets_validate() {
        let sys = presets::khepera_system();
        let (x, u) = operating_point();
        ModeSet::one_reference_per_sensor(&sys)
            .validate(&sys, &x, &u)
            .unwrap();
        ModeSet::complete(&sys).validate(&sys, &x, &u).unwrap();
    }

    #[test]
    fn empty_reference_is_degenerate() {
        let sys = presets::khepera_system();
        let (x, u) = operating_point();
        let set = ModeSet {
            modes: vec![Mode::new(vec![], vec![0, 1, 2])],
        };
        assert!(matches!(
            set.validate(&sys, &x, &u),
            Err(CoreError::DegenerateMode { mode: 0, .. })
        ));
    }

    #[test]
    fn out_of_range_sensor_rejected() {
        let sys = presets::khepera_system();
        let (x, u) = operating_point();
        let set = ModeSet {
            modes: vec![Mode::new(vec![5], vec![])],
        };
        assert!(set.validate(&sys, &x, &u).is_err());
    }

    #[test]
    fn grouping_builder() {
        let sys = presets::khepera_system();
        let set = ModeSet::from_reference_groups(&sys, &[vec![0, 1], vec![2]]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.modes()[0].reference(), &[0, 1]);
        assert_eq!(set.modes()[0].testing(), &[2]);
    }

    #[test]
    fn mode_description() {
        let m = Mode::new(vec![2, 0], vec![1]);
        assert_eq!(m.describe(), "ref{0,2} test{1}");
        assert!(m.is_reference(0));
        assert!(!m.is_reference(1));
    }
}
