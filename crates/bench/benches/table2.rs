//! Table II — attack and failure scenarios and detection results.
//!
//! Regenerates, for each of the paper's 11 Khepera scenarios: the
//! identified condition sequence (Table III labels), the detection
//! delay per transition, and the per-scenario FPR/FNR for actuator and
//! sensor conditions — plus the §V-C aggregate line (paper: average FPR
//! 0.86 %, FNR 0.97 %, delays 0.35 s sensor / 0.61 s actuator).
//!
//! Run with: `cargo bench -p roboads-bench --bench table2`

use roboads_bench::{
    aggregate, delay, parallel_map, pct, run_khepera, sweep_threads, DEFAULT_SEEDS,
};
use roboads_core::RoboAdsConfig;
use roboads_sim::Scenario;

fn main() {
    let config = RoboAdsConfig::paper_defaults();
    let scenarios = Scenario::all_khepera();

    println!("Table III sensor mode labels: S0 = clean, S1 = IPS, S2 = wheel encoder,");
    println!("S3 = LiDAR, S4 = WE+LiDAR, S5 = IPS+LiDAR, S6 = IPS+WE; A0/A1 = actuator.\n");

    println!(
        "{:<3} {:<34} {:<22} {:>9} {:>9} {:>18} {:>18}",
        "#", "Scenario", "Detection Result", "S-delay", "A-delay", "A: FPR/FNR", "S: FPR/FNR"
    );

    let jobs: Vec<Scenario> = scenarios;
    let rows = parallel_map(jobs, sweep_threads(), |scenario| {
        let evals: Vec<_> = DEFAULT_SEEDS
            .iter()
            .map(|&seed| run_khepera(&scenario, &config, seed).eval)
            .collect();
        aggregate(scenario.name(), scenario.number(), &evals)
    });

    let mut sensor_fpr_sum = 0.0;
    let mut sensor_fnr_sum = 0.0;
    let mut actuator_fpr_sum = 0.0;
    let mut actuator_fnr_sum = 0.0;
    let mut sensor_rows = 0usize;
    let mut actuator_rows = 0usize;
    let mut sensor_delays = Vec::new();
    let mut actuator_delays = Vec::new();

    for row in &rows {
        let sensor_truth = row.sensor.true_positives + row.sensor.false_negatives > 0;
        let actuator_truth = row.actuator.true_positives + row.actuator.false_negatives > 0;
        let result = match (sensor_truth, actuator_truth) {
            (true, true) => format!("{} / {}", row.sensor_sequence, row.actuator_sequence),
            (true, false) => row.sensor_sequence.clone(),
            (false, true) => row.actuator_sequence.clone(),
            (false, false) => "S0 / A0".to_string(),
        };
        println!(
            "{:<3} {:<34} {:<22} {:>9} {:>9} {:>18} {:>18}",
            row.number,
            row.name,
            result,
            delay(row.sensor_delay),
            delay(row.actuator_delay),
            format!(
                "{} / {}",
                pct(row.actuator.false_positive_rate(), true),
                pct(row.actuator.false_negative_rate(), actuator_truth)
            ),
            format!(
                "{} / {}",
                pct(row.sensor.false_positive_rate(), true),
                pct(row.sensor.false_negative_rate(), sensor_truth)
            ),
        );
        sensor_fpr_sum += row.sensor.false_positive_rate();
        actuator_fpr_sum += row.actuator.false_positive_rate();
        sensor_rows += 1;
        actuator_rows += 1;
        if sensor_truth {
            sensor_fnr_sum += row.sensor.false_negative_rate();
        }
        if actuator_truth {
            actuator_fnr_sum += row.actuator.false_negative_rate();
        }
        if let Some(d) = row.sensor_delay {
            sensor_delays.push(d);
        }
        if let Some(d) = row.actuator_delay {
            actuator_delays.push(d);
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let avg_fpr = (sensor_fpr_sum + actuator_fpr_sum) / (sensor_rows + actuator_rows).max(1) as f64;
    let avg_fnr = (sensor_fnr_sum + actuator_fnr_sum)
        / rows
            .iter()
            .map(|r| {
                usize::from(r.sensor.true_positives + r.sensor.false_negatives > 0)
                    + usize::from(r.actuator.true_positives + r.actuator.false_negatives > 0)
            })
            .sum::<usize>()
            .max(1) as f64;
    println!("\n— aggregates (§V-C; paper: FPR 0.86 %, FNR 0.97 %, delays 0.35 s / 0.61 s) —");
    println!(
        "average FPR {:.2}%  average FNR {:.2}%  mean sensor delay {:.2}s  mean actuator delay {:.2}s",
        avg_fpr * 100.0,
        avg_fnr * 100.0,
        mean(&sensor_delays),
        mean(&actuator_delays),
    );
}
