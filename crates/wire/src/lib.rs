//! Binary wire front-end for the sharded fleet service (`DESIGN.md`
//! §18).
//!
//! Moves load generation out of the detection process: a producer
//! (e.g. `roboads-sim`'s external runner) serializes each robot's
//! stamped sensor/command frames into a length-prefixed binary stream,
//! and the service side decodes them straight into
//! [`roboads_core::ShardedFleet::offer_frame`], crossing the tick
//! boundary on every `TickEnd` marker. Floats travel as
//! `f64::to_bits`, so a wire-fed run is bitwise identical to the
//! in-process sync path whenever every frame arrives on time.
//!
//! # Framing
//!
//! ```text
//! [u32 LE payload_len][u8 kind][body…]      payload_len = 1 + body len
//! ```
//!
//! The prefix counts the *payload* (kind byte included). Payloads are
//! capped at [`MAX_FRAME`]; the decoder never allocates from the
//! prefix — only bytes actually received are buffered — so a hostile
//! length cannot balloon memory, and every malformed input surfaces as
//! a typed [`WireError`], never a panic.
//!
//! The codec is hand-rolled over [`roboads_obs::wire`] (the same
//! lossless primitives the flight recorder and snapshots use); `serde`
//! stays vendoring-gated.

mod codec;
mod serve;

pub use codec::{
    decode_frame, encode_frame, FrameDecoder, WireError, WireFrame, MAX_FRAME, WIRE_VERSION,
};
pub use serve::{pump, serve_tcp, serve_uds, FrameWriter, ServeSummary};
