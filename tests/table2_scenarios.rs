//! End-to-end integration: every Table II scenario must be detected and
//! correctly identified by the full pipeline (RRT* mission → PID tracker
//! → workflows with injected misbehavior → RoboADS), with paper-scale
//! rates and sub-second delays.

use roboads::sim::{Scenario, SimulationBuilder};

/// Expected final identified sensor set and actuator state per scenario,
/// mirroring Table II's identification column.
fn expectations() -> Vec<(Scenario, Vec<usize>, bool)> {
    vec![
        (Scenario::wheel_logic_bomb(), vec![], true),
        (Scenario::wheel_jamming(), vec![], true),
        (Scenario::ips_logic_bomb(), vec![0], false),
        (Scenario::ips_spoofing(), vec![0], false),
        (Scenario::encoder_logic_bomb(), vec![1], false),
        (Scenario::lidar_dos(), vec![2], false),
        (Scenario::lidar_blocking(), vec![2], false),
        (Scenario::wheel_and_ips_logic_bomb(), vec![0], true),
        (
            Scenario::lidar_dos_and_encoder_logic_bomb(),
            vec![1, 2],
            false,
        ),
        (Scenario::ips_spoofing_and_lidar_dos(), vec![0], false),
        (Scenario::ips_and_encoder_logic_bomb(), vec![0, 1], false),
    ]
}

#[test]
fn all_khepera_scenarios_are_detected_and_identified() {
    for (scenario, expected_sensors, expect_actuator) in expectations() {
        let name = scenario.name().to_string();
        let outcome = SimulationBuilder::khepera()
            .scenario(scenario)
            .seed(11)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        assert_eq!(
            outcome.report.misbehaving_sensors, expected_sensors,
            "{name}: wrong final sensor identification"
        );
        assert_eq!(
            outcome.report.actuator_alarm, expect_actuator,
            "{name}: wrong final actuator state"
        );
        if !expected_sensors.is_empty() {
            let delay = outcome
                .eval
                .sensor_delay()
                .unwrap_or_else(|| panic!("{name}: sensor misbehavior never matched"));
            assert!(delay < 1.5, "{name}: sensor delay {delay} s");
            assert!(
                outcome.eval.sensor_fnr() < 0.05,
                "{name}: sensor FNR {}",
                outcome.eval.sensor_fnr()
            );
        }
        if expect_actuator {
            let delay = outcome
                .eval
                .actuator_delay()
                .unwrap_or_else(|| panic!("{name}: actuator misbehavior never matched"));
            assert!(delay < 1.5, "{name}: actuator delay {delay} s");
            assert!(
                outcome.eval.actuator_fnr() < 0.10,
                "{name}: actuator FNR {}",
                outcome.eval.actuator_fnr()
            );
        }
        assert!(
            outcome.eval.sensor_fpr() < 0.10,
            "{name}: sensor FPR {}",
            outcome.eval.sensor_fpr()
        );
    }
}

#[test]
fn multi_phase_scenarios_report_the_paper_transition_sequences() {
    let cases = [
        (
            Scenario::lidar_dos_and_encoder_logic_bomb(),
            vec!["S0", "S2", "S4"],
        ),
        (
            Scenario::ips_spoofing_and_lidar_dos(),
            vec!["S0", "S3", "S5", "S1"],
        ),
        (
            Scenario::ips_and_encoder_logic_bomb(),
            vec!["S0", "S2", "S6"],
        ),
    ];
    for (scenario, expected) in cases {
        let name = scenario.name().to_string();
        let outcome = SimulationBuilder::khepera()
            .scenario(scenario)
            .seed(11)
            .run()
            .unwrap();
        assert_eq!(
            outcome.eval.detected_sensor_sequence, expected,
            "{name}: wrong transition sequence"
        );
    }
}

#[test]
fn clean_mission_stays_quiet_on_both_robots() {
    for (name, outcome) in [
        (
            "khepera",
            SimulationBuilder::khepera()
                .scenario(Scenario::clean())
                .seed(11)
                .run()
                .unwrap(),
        ),
        (
            "tamiya",
            SimulationBuilder::tamiya()
                .scenario(Scenario::clean())
                .seed(11)
                .run()
                .unwrap(),
        ),
    ] {
        assert!(
            outcome.eval.sensor_fpr() < 0.03,
            "{name}: sensor FPR {}",
            outcome.eval.sensor_fpr()
        );
        assert!(
            outcome.eval.actuator_fpr() < 0.05,
            "{name}: actuator FPR {}",
            outcome.eval.actuator_fpr()
        );
    }
}

#[test]
fn tamiya_scenarios_detect_without_retuning() {
    // §V-D: the same configuration generalizes to distinct dynamics.
    for scenario in [
        Scenario::tamiya_ips_spoofing(),
        Scenario::tamiya_imu_logic_bomb(),
        Scenario::tamiya_lidar_dos(),
    ] {
        let name = scenario.name().to_string();
        let outcome = SimulationBuilder::tamiya()
            .scenario(scenario)
            .seed(11)
            .run()
            .unwrap();
        let delay = outcome
            .eval
            .sensor_delay()
            .unwrap_or_else(|| panic!("{name}: not detected"));
        assert!(delay < 1.0, "{name}: delay {delay}");
    }
    let takeover = SimulationBuilder::tamiya()
        .scenario(Scenario::tamiya_steering_takeover())
        .seed(11)
        .run()
        .unwrap();
    assert!(
        takeover.eval.actuator_delay().expect("detected") < 2.0,
        "steering takeover detection delay"
    );
    assert!(takeover.eval.actuator_fnr() < 0.2);
}

#[test]
fn runs_are_reproducible_per_seed() {
    let run = |seed| {
        SimulationBuilder::khepera()
            .scenario(Scenario::ips_spoofing())
            .seed(seed)
            .duration(100)
            .run()
            .unwrap()
    };
    let (a, b, c) = (run(3), run(3), run(4));
    assert_eq!(
        a.trace.records()[99].report.mode_probabilities,
        b.trace.records()[99].report.mode_probabilities
    );
    assert_eq!(a.report.misbehaving_sensors, b.report.misbehaving_sensors);
    assert_ne!(
        a.trace.records()[99].true_state,
        c.trace.records()[99].true_state
    );
}
