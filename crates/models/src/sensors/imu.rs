use roboads_linalg::{Matrix, Vector};

use crate::sensors::SensorModel;
use crate::{ModelError, Result};

/// IMU inertial-navigation workflow: pose `(x, y, θ)` from integrated
/// inertial data — the Tamiya RC car's third sensor (§V-D).
///
/// The paper states the Tamiya's IMU "provides inertial navigation data
/// of the car during movement". For the NUISE reference-sensor role the
/// workflow output must make the pose state observable, so we model the
/// planner-visible reading as the inertial-navigation pose solution with
/// noise substantially larger than the IPS (documented substitution in
/// `DESIGN.md`; drift is bounded per-iteration by the on-planner
/// re-anchoring, as with the wheel-encoder workflow).
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_models::sensors::InertialNav;
/// use roboads_models::SensorModel;
///
/// # fn main() -> Result<(), roboads_models::ModelError> {
/// let imu = InertialNav::new(0.008, 0.004)?;
/// let z = imu.measure(&Vector::from_slice(&[0.5, 0.5, 1.0]));
/// assert_eq!(z.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InertialNav {
    position_std: f64,
    heading_std: f64,
}

impl InertialNav {
    /// Creates an inertial-navigation workflow with the given position
    /// (m) and heading (rad) noise standard deviations.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive values.
    pub fn new(position_std: f64, heading_std: f64) -> Result<Self> {
        for (name, v) in [("position_std", position_std), ("heading_std", heading_std)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ModelError::InvalidParameter {
                    name,
                    value: format!("{v}"),
                });
            }
        }
        Ok(InertialNav {
            position_std,
            heading_std,
        })
    }

    /// Position noise standard deviation (m).
    pub fn position_std(&self) -> f64 {
        self.position_std
    }

    /// A copy with scaled noise (§V-E quality sweep).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive factors.
    pub fn with_quality_factor(&self, factor: f64) -> Result<Self> {
        InertialNav::new(self.position_std * factor, self.heading_std * factor)
    }
}

impl SensorModel for InertialNav {
    fn dim(&self) -> usize {
        3
    }

    fn name(&self) -> &str {
        "imu"
    }

    fn measure(&self, x: &Vector) -> Vector {
        assert!(x.len() >= 3, "imu expects a pose state");
        Vector::from_slice(&[x[0], x[1], x[2]])
    }

    fn jacobian(&self, _x: &Vector) -> Matrix {
        Matrix::identity(3)
    }

    fn noise_covariance(&self) -> Matrix {
        Matrix::from_diagonal(&[
            self.position_std * self.position_std,
            self.position_std * self.position_std,
            self.heading_std * self.heading_std,
        ])
    }

    fn angular_components(&self) -> &[usize] {
        &[2]
    }

    fn measure_into(&self, x: &Vector, out: &mut [f64]) {
        assert!(x.len() >= 3, "imu expects a pose state");
        out[0] = x[0];
        out[1] = x[1];
        out[2] = x[2];
    }

    fn jacobian_into(&self, _x: &Vector, out: &mut Matrix, row_offset: usize) {
        for i in 0..3 {
            for j in 0..3 {
                out[(row_offset + i, j)] = if i == j { 1.0 } else { 0.0 };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::test_support::{
        assert_noise_covariance_valid, assert_sensor_into_variants_match,
        assert_sensor_jacobian_matches,
    };

    #[test]
    fn into_variants_match() {
        let imu = InertialNav::new(0.008, 0.004).unwrap();
        assert_sensor_into_variants_match(&imu, &Vector::from_slice(&[1.0, -1.0, 0.2]));
    }

    #[test]
    fn model_is_consistent() {
        let imu = InertialNav::new(0.008, 0.004).unwrap();
        assert_eq!(imu.dim(), 3);
        assert_eq!(imu.name(), "imu");
        assert_sensor_jacobian_matches(&imu, &Vector::from_slice(&[1.0, -1.0, 0.2]), 1e-6);
        assert_noise_covariance_valid(&imu);
        assert_eq!(imu.angular_components(), &[2]);
    }

    #[test]
    fn quality_and_validation() {
        let imu = InertialNav::new(0.008, 0.004).unwrap();
        assert!(imu.with_quality_factor(2.0).unwrap().position_std() > imu.position_std());
        assert!(InertialNav::new(-0.01, 0.004).is_err());
    }
}
