use roboads_sim::{Scenario, SimulationBuilder};
fn main() {
    for baseline in [false, true] {
        let o = SimulationBuilder::khepera()
            .scenario(Scenario::clean())
            .seed(11)
            .linearized_baseline(baseline)
            .run()
            .unwrap();
        let mut errs = Vec::new();
        let mut sensor_pos = 0;
        let mut act_pos = 0;
        for r in o.trace.records() {
            let e = (&r.report.state_estimate - &r.true_state).norm();
            errs.push(e);
            if r.report.sensor_anomaly.exceeds {
                sensor_pos += 1;
            }
            if r.report.actuator_anomaly.exceeds {
                act_pos += 1;
            }
        }
        let maxe = errs.iter().cloned().fold(0.0f64, f64::max);
        let heading: Vec<f64> = o.trace.records().iter().map(|r| r.true_state[2]).collect();
        let hmin = heading.iter().cloned().fold(f64::INFINITY, f64::min);
        let hmax = heading.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!("baseline={baseline}: max state err {:.4} m, final err {:.4}, raw sensor positives {sensor_pos}/200, actuator positives {act_pos}/200, heading range [{:.2},{:.2}]",
            maxe, errs.last().unwrap(), hmin, hmax);
    }
}
