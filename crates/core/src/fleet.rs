//! Fleet-scale batched detection: N independent [`RoboAds`] detectors
//! stepped per control tick with dispatch amortized at *robot* grain.
//!
//! PR 2 measured why intra-step (per-mode) parallelism loses on the
//! evaluation banks: a pool dispatch costs tens of microseconds while a
//! warm NUISE mode step costs ~2 µs, so fanning 3–7 modes out buys
//! nothing. A fleet monitor has a much better unit of work — one whole
//! robot's detector step (engine fan-out, decision maker, report
//! refill, ~30 µs warm) — and hundreds of them per tick. The
//! [`FleetEngine`] therefore:
//!
//! * keeps a slab of per-robot cells (detector, caller-readable report
//!   and result slot), pre-warmed so the steady state allocates nothing
//!   on the sequential path;
//! * forces every per-robot engine onto its sequential intra-step path
//!   (`threads = Some(1)`) — parallelism lives at one grain only;
//! * submits one pool job per worker covering a *contiguous robot
//!   range* ([`roboads_pool::Pool::chunked_for_each`] with a minimum
//!   chunk floor), so per-tick dispatch overhead is O(workers), not
//!   O(robots);
//! * keeps each robot's arithmetic bitwise identical to a standalone
//!   [`RoboAds`] fed the same inputs — robots never share mutable
//!   state, so thread count and batch size cannot perturb results
//!   (pinned by `tests/fleet_determinism.rs`).

use std::sync::Arc;

use roboads_linalg::Vector;
use roboads_obs::Telemetry;
use roboads_pool::Pool;

use crate::detector::RoboAds;
use crate::report::DetectionReport;
use crate::{CoreError, Result};

/// Minimum robots per pool job. A warm robot step is ~30 µs and a
/// dispatch ~20 µs, so a job must carry at least a handful of robots
/// before the wake-up pays for itself.
const MIN_ROBOTS_PER_JOB: usize = 4;

/// One robot's inputs for a fleet tick: the planned command of the
/// previous iteration and the fresh readings of every sensing workflow,
/// in suite order (exactly [`RoboAds::step`]'s arguments).
#[derive(Debug, Clone, Copy)]
pub struct RobotInput<'a> {
    /// Planned actuator command `u_{k-1}`.
    pub u_prev: &'a Vector,
    /// Sensor readings in suite order.
    pub readings: &'a [Vector],
}

/// Per-robot cell of the fleet slab: everything one robot's step
/// touches lives here, so a pool job owns its robots' cells exclusively
/// and the scheduler never synchronizes on shared detector state.
#[derive(Debug)]
struct RobotCell {
    detector: RoboAds,
    report: DetectionReport,
    /// Outcome of the robot's last step (`Ok` until its first failure).
    result: Result<()>,
}

/// Steps a fleet of independent detectors, batched per control tick.
///
/// Robots are homogeneous in construction convenience only — each cell
/// owns a full [`RoboAds`], so heterogeneous fleets work by pushing
/// differently-configured detectors. Parallelism is at robot grain: a
/// `threads > 1` fleet splits the slab into contiguous chunks, one pool
/// job per worker per tick.
///
/// # Example
///
/// ```
/// use roboads_core::{FleetEngine, ModeSet, RoboAds, RoboAdsConfig, RobotInput};
/// use roboads_linalg::Vector;
/// use roboads_models::presets;
///
/// # fn main() -> Result<(), roboads_core::CoreError> {
/// let system = presets::khepera_system();
/// let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
/// let make = || RoboAds::with_defaults(system.clone(), x0.clone());
/// let mut fleet = FleetEngine::new((0..8).map(|_| make()).collect::<Result<_, _>>()?, 1);
///
/// let u = Vector::from_slice(&[0.05, 0.05]);
/// let x1 = system.dynamics().step(&x0, &u);
/// let readings: Vec<_> = (0..3)
///     .map(|i| system.sensor(i).unwrap().measure(&x1))
///     .collect();
/// let inputs = vec![RobotInput { u_prev: &u, readings: &readings }; 8];
/// fleet.step_batch(&inputs)?;
/// assert!(!fleet.report(0).sensor_misbehavior_detected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FleetEngine {
    cells: Vec<RobotCell>,
    /// Robot-grain worker pool; `None` runs the slab sequentially.
    pool: Option<Arc<Pool>>,
    threads: usize,
}

impl FleetEngine {
    /// Builds a fleet from per-robot detectors and a worker count
    /// (clamped to at least 1; `1` means fully sequential ticks).
    ///
    /// Every detector is forced onto its sequential intra-step path:
    /// the fleet parallelizes across robots, and nested per-mode
    /// fan-out would multiply pool dispatches for work PR 2 measured as
    /// dispatch-bound. Detectors built with `RoboAdsConfig::threads:
    /// None` already resolve to sequential for the evaluation banks, so
    /// this is a no-op there; an explicitly parallel detector cannot be
    /// pushed into a fleet (see [`FleetEngine::push`]).
    pub fn new(detectors: Vec<RoboAds>, threads: usize) -> Self {
        let threads = threads.max(1);
        let pool = (threads > 1).then(|| {
            Arc::new(Pool::with_thread_setup(threads, |i| {
                roboads_obs::set_worker(i as u32 + 1)
            }))
        });
        let mut fleet = FleetEngine {
            cells: Vec::with_capacity(detectors.len()),
            pool,
            threads,
        };
        for d in detectors {
            fleet.push_cell(d);
        }
        fleet
    }

    fn push_cell(&mut self, detector: RoboAds) {
        assert_eq!(
            detector.engine_threads(),
            1,
            "fleet robots must use the sequential intra-step path \
             (build them with threads: None or Some(1))"
        );
        self.cells.push(RobotCell {
            detector,
            report: DetectionReport::blank(),
            result: Ok(()),
        });
    }

    /// Appends another robot to the slab.
    ///
    /// # Panics
    ///
    /// Panics if the detector was configured with an explicit intra-step
    /// width greater than 1 — fleet parallelism is robot-grain only.
    pub fn push(&mut self, detector: RoboAds) {
        self.push_cell(detector);
    }

    /// Number of robots in the fleet.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the fleet has no robots.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Robot-grain worker count (`1` = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Threads one telemetry context through every robot's pipeline.
    /// Spans recorded during [`FleetEngine::step_batch`] carry the
    /// robot's id (`robot_index + 1`) so one shared sink can attribute
    /// them; see [`roboads_obs::set_robot`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for cell in &mut self.cells {
            cell.detector.set_telemetry(telemetry.clone());
        }
    }

    /// Steps every robot once with its own inputs.
    ///
    /// All robots run every tick — a failing robot never stalls its
    /// neighbours — and the error reported is the *first failing
    /// robot's*, in slab order, regardless of thread interleaving.
    /// After an error the failing robots' reports hold partial verdicts
    /// (query [`FleetEngine::result`] per robot to tell them apart);
    /// their filter state is unchanged, exactly as a standalone
    /// [`RoboAds::step_into`] failure.
    ///
    /// A warmed-up sequential fleet (`threads == 1`) performs zero heap
    /// allocations per batch; a parallel fleet allocates only the pool's
    /// per-job boxes — O(workers), independent of fleet size.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadReadings`] when `inputs.len() != self.len()`,
    /// else the first robot failure in slab order.
    pub fn step_batch(&mut self, inputs: &[RobotInput<'_>]) -> Result<()> {
        if inputs.len() != self.cells.len() {
            return Err(CoreError::BadReadings {
                reason: format!(
                    "fleet of {} robots stepped with {} inputs",
                    self.cells.len(),
                    inputs.len()
                ),
            });
        }
        let step_robot = |i: usize, cell: &mut RobotCell| {
            roboads_obs::set_robot(i as u32 + 1);
            let input = &inputs[i];
            cell.result = cell
                .detector
                .step_into(input.u_prev, input.readings, &mut cell.report);
            roboads_obs::set_robot(0);
        };
        match &self.pool {
            None => {
                for (i, cell) in self.cells.iter_mut().enumerate() {
                    step_robot(i, cell);
                }
            }
            Some(pool) => {
                let pool = Arc::clone(pool);
                pool.chunked_for_each(&mut self.cells, MIN_ROBOTS_PER_JOB, step_robot);
            }
        }
        for cell in &self.cells {
            if let Err(e) = &cell.result {
                return Err(e.clone());
            }
        }
        Ok(())
    }

    /// Robot `i`'s detector (its filter state, iteration counter, …).
    pub fn detector(&self, i: usize) -> &RoboAds {
        &self.cells[i].detector
    }

    /// Robot `i`'s report from the last [`FleetEngine::step_batch`].
    /// Meaningful only when [`FleetEngine::result`] is `Ok`.
    pub fn report(&self, i: usize) -> &DetectionReport {
        &self.cells[i].report
    }

    /// Robot `i`'s outcome from the last batch.
    pub fn result(&self, i: usize) -> &Result<()> {
        &self.cells[i].result
    }

    /// Iterates over the fleet's `(detector, report)` pairs in slab
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&RoboAds, &DetectionReport)> {
        self.cells.iter().map(|c| (&c.detector, &c.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoboAdsConfig;
    use crate::mode::ModeSet;
    use roboads_models::{presets, RobotSystem};

    fn detector() -> RoboAds {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        RoboAds::with_defaults(system, x0).unwrap()
    }

    fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
        (0..system.sensor_count())
            .map(|i| system.sensor(i).unwrap().measure(x))
            .collect()
    }

    #[test]
    fn batch_of_identical_robots_agrees_with_standalone() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut standalone = detector();
        let mut fleet = FleetEngine::new((0..4).map(|_| detector()).collect(), 1);
        assert_eq!(fleet.len(), 4);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for k in 0..10 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            if k >= 4 {
                readings[0][0] += 0.07;
            }
            let expected = standalone.step(&u, &readings).unwrap();
            let inputs = vec![
                RobotInput {
                    u_prev: &u,
                    readings: &readings,
                };
                4
            ];
            fleet.step_batch(&inputs).unwrap();
            for (_, report) in fleet.iter() {
                assert_eq!(report, &expected, "robot diverged at step {k}");
            }
        }
    }

    #[test]
    fn input_count_mismatch_is_rejected() {
        let mut fleet = FleetEngine::new(vec![detector()], 1);
        let u = Vector::from_slice(&[0.0, 0.0]);
        let readings: Vec<Vector> = Vec::new();
        let err = fleet
            .step_batch(
                &[RobotInput {
                    u_prev: &u,
                    readings: &readings,
                }; 2],
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::BadReadings { .. }));
    }

    #[test]
    fn failing_robot_reports_error_but_others_advance() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut fleet = FleetEngine::new((0..3).map(|_| detector()).collect(), 1);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let x1 = system.dynamics().step(&x0, &u);
        let good = clean_readings(&system, &x1);
        let bad: Vec<Vector> = Vec::new(); // malformed: robot 1 fails
        let inputs = [
            RobotInput {
                u_prev: &u,
                readings: &good,
            },
            RobotInput {
                u_prev: &u,
                readings: &bad,
            },
            RobotInput {
                u_prev: &u,
                readings: &good,
            },
        ];
        assert!(fleet.step_batch(&inputs).is_err());
        assert!(fleet.result(0).is_ok());
        assert!(fleet.result(1).is_err());
        assert!(fleet.result(2).is_ok());
        // The healthy robots completed their iteration.
        assert_eq!(fleet.detector(0).iteration(), 1);
        assert_eq!(fleet.detector(1).iteration(), 0);
        assert_eq!(fleet.detector(2).iteration(), 1);
    }

    #[test]
    #[should_panic(expected = "sequential intra-step path")]
    fn explicitly_parallel_detectors_are_rejected() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let modes = ModeSet::one_reference_per_sensor(&system);
        let d = RoboAds::new(
            system,
            RoboAdsConfig::paper_defaults().with_threads(3),
            x0,
            modes,
        )
        .unwrap();
        FleetEngine::new(vec![d], 1);
    }
}
