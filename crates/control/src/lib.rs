//! Planning and control substrate for the RoboADS reproduction.
//!
//! The paper's evaluation mission (§V-A) is: *"the robot steers from an
//! initial location to a target location without collisions … the planner
//! calculates a collision-free path using optimal rapidly-exploring
//! random trees (RRT*) … the robot executes PID closed-loop control to
//! track the planned path using real-time positioning data"*. This crate
//! provides exactly that stack:
//!
//! * [`Pid`] — a classical PID regulator with output clamping,
//! * [`Path`] — waypoint paths with lookahead queries,
//! * [`RrtStar`] — the sampling-based optimal planner over an [`Arena`],
//! * [`DifferentialDriveTracker`] / [`BicycleTracker`] — PID path
//!   trackers producing the wheel-speed / (speed, steering) commands the
//!   two evaluation robots consume,
//! * [`Mission`] — start/goal bundles with plan-and-track convenience.
//!
//! [`Arena`]: roboads_models::Arena
//!
//! # Example
//!
//! ```
//! use roboads_models::presets;
//! use roboads_control::{Mission, RrtStar};
//!
//! # fn main() -> Result<(), roboads_control::ControlError> {
//! let arena = presets::evaluation_arena();
//! let mission = Mission::evaluation_default();
//! let planner = RrtStar::new(&arena, 0.08)?;
//! let path = planner.plan(mission.start, mission.goal, 42)?;
//! assert!(path.len() >= 2);
//! # Ok(())
//! # }
//! ```

mod mission;
mod path;
mod pid;
mod rrt_star;
mod tracking;

pub use mission::Mission;
pub use path::Path;
pub use pid::Pid;
pub use rrt_star::RrtStar;
pub use tracking::{BicycleTracker, DifferentialDriveTracker, TrackingController};

use std::error::Error;
use std::fmt;

/// Errors produced by planning and control.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// A controller or planner parameter was out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value, formatted by the caller.
        value: String,
    },
    /// The planner could not find a collision-free path.
    NoPathFound {
        /// Number of samples expanded before giving up.
        iterations: usize,
    },
    /// A start or goal position was not in free space.
    PositionNotFree {
        /// The offending position.
        x: f64,
        /// The offending position.
        y: f64,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::InvalidParameter { name, value } => {
                write!(f, "invalid control parameter {name} = {value}")
            }
            ControlError::NoPathFound { iterations } => {
                write!(f, "no collision-free path found after {iterations} samples")
            }
            ControlError::PositionNotFree { x, y } => {
                write!(f, "position ({x}, {y}) is not in free space")
            }
        }
    }
}

impl Error for ControlError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ControlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(ControlError::NoPathFound { iterations: 10 }
            .to_string()
            .contains("10"));
    }
}
