//! Numeric differentiation used to validate analytic Jacobians and to
//! supply Jacobians for user-defined models that do not provide them.

use roboads_linalg::{Matrix, Vector};

/// Central-difference step size; `∛ε_machine`-scaled for second-order
/// accurate differences.
const STEP: f64 = 1e-6;

/// Numerically differentiates `f` at `x` with central differences,
/// producing the Jacobian `J[i][j] = ∂f_i/∂x_j`.
///
/// `out_dim` is the output dimension of `f` (checked against the actual
/// output — a mismatch panics, because it means the caller mis-declared
/// the model).
///
/// # Panics
///
/// Panics if `f` returns a vector of length other than `out_dim`.
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_models::numeric_jacobian;
///
/// // f(x) = (x0², x0·x1) → J = [[2x0, 0], [x1, x0]].
/// let f = |x: &Vector| Vector::from_slice(&[x[0] * x[0], x[0] * x[1]]);
/// let j = numeric_jacobian(&f, &Vector::from_slice(&[2.0, 3.0]), 2);
/// assert!((j[(0, 0)] - 4.0).abs() < 1e-6);
/// assert!((j[(1, 0)] - 3.0).abs() < 1e-6);
/// assert!((j[(1, 1)] - 2.0).abs() < 1e-6);
/// ```
pub fn numeric_jacobian(f: &dyn Fn(&Vector) -> Vector, x: &Vector, out_dim: usize) -> Matrix {
    let n = x.len();
    let mut jac = Matrix::zeros(out_dim, n);
    for j in 0..n {
        let mut xp = x.clone();
        let mut xm = x.clone();
        let h = STEP * (1.0 + x[j].abs());
        xp[j] += h;
        xm[j] -= h;
        let fp = f(&xp);
        let fm = f(&xm);
        assert_eq!(
            fp.len(),
            out_dim,
            "function output dimension {} does not match declared {out_dim}",
            fp.len()
        );
        for i in 0..out_dim {
            jac[(i, j)] = (fp[i] - fm[i]) / (2.0 * h);
        }
    }
    jac
}

/// Numerically differentiates a two-argument function `f(a, b)` with
/// respect to its *second* argument at `(a, b)`.
///
/// Used to obtain `G = ∂f/∂u` for the input-compensation step of NUISE
/// when no analytic form is provided.
///
/// # Panics
///
/// Panics if `f` returns a vector of length other than `out_dim`.
pub fn numeric_jacobian_wrt(
    f: &dyn Fn(&Vector, &Vector) -> Vector,
    a: &Vector,
    b: &Vector,
    out_dim: usize,
) -> Matrix {
    numeric_jacobian(&|bb: &Vector| f(a, bb), b, out_dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_function_has_constant_jacobian() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let mc = m.clone();
        let f = move |x: &Vector| &mc * x;
        let j = numeric_jacobian(&f, &Vector::from_slice(&[0.7, -0.3]), 2);
        assert!((&j - &m).max_abs() < 1e-8);
    }

    #[test]
    fn trigonometric_jacobian() {
        let f = |x: &Vector| Vector::from_slice(&[x[0].sin(), x[0].cos()]);
        let j = numeric_jacobian(&f, &Vector::from_slice(&[0.5]), 2);
        assert!((j[(0, 0)] - 0.5f64.cos()).abs() < 1e-8);
        assert!((j[(1, 0)] + 0.5f64.sin()).abs() < 1e-8);
    }

    #[test]
    fn second_argument_differentiation() {
        // f(a, b) = a * b (componentwise): ∂f/∂b = diag(a).
        let f = |a: &Vector, b: &Vector| Vector::from_fn(a.len(), |i| a[i] * b[i]);
        let a = Vector::from_slice(&[2.0, -3.0]);
        let b = Vector::from_slice(&[1.0, 1.0]);
        let g = numeric_jacobian_wrt(&f, &a, &b, 2);
        assert!((g[(0, 0)] - 2.0).abs() < 1e-8);
        assert!((g[(1, 1)] + 3.0).abs() < 1e-8);
        assert!(g[(0, 1)].abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "does not match declared")]
    fn dimension_mismatch_panics() {
        let f = |_: &Vector| Vector::zeros(3);
        numeric_jacobian(&f, &Vector::zeros(2), 2);
    }
}
