//! `eval_attack_prob`-style detection-probability campaigns.
//!
//! Table II evaluates RoboADS on a handful of hand-picked cases; this
//! module generates the matrix instead. A [`Campaign`] sweeps
//! **attack kind × base scenario × activation policy × magnitude ×
//! onset × duration**, runs N independently seeded trials per grid
//! cell through the standalone runner with the attack applied at the
//! bus seam ([`crate::attacks`]), and aggregates each cell into a
//! detection probability and mean time-to-detection
//! ([`roboads_stats::DetectionRate`]). Alongside the attacked cells it
//! runs **baseline** cells — the same scenario/policy with no attack —
//! whose false-positive rates bound what the attacked cells' detections
//! are worth.
//!
//! Determinism: a trial's seed is a pure hash of the cell's coordinates
//! and the trial index folded into the campaign's base seed, so results
//! are bit-for-bit reproducible and independent of execution order —
//! cells can be farmed out to a thread pool and reassembled in any
//! order.
//!
//! Detection semantics: the attack window is appended to the base
//! scenario's ground truth as a pseudo-misbehavior on the attack's
//! declared target ([`crate::attacks::AttackSpec::target`]); a trial
//! *detects* when, at some iteration inside the window, the detector's
//! report covers the attacked workflow — the attacked sensor appears in
//! `misbehaving_sensors`, or the actuator alarm is up for a
//! command-level attack. Time-to-detection is the lag from onset to
//! that first covering iteration. The window-level criterion (rather
//! than a single transition delay) stays well-defined when the base
//! scenario's own misbehavior is concurrently active.

use roboads_core::{ActivationPolicy, RoboAdsConfig};
use roboads_linalg::Vector;
use roboads_stats::DetectionRate;

use crate::attacks::{AttackKind, AttackSpec};
use crate::eval::evaluate;
use crate::misbehavior::{Corruption, Misbehavior, Target};
use crate::runner::{FramePolicy, RobotKind, SimulationBuilder};
use crate::scenario::{Scenario, DEFAULT_DURATION, FIRST_TRIGGER};
use crate::trace::Trace;
use crate::Result;

/// A named activation policy, one leg of the campaign's policy axis.
#[derive(Debug, Clone)]
pub struct PolicyChoice {
    /// Label used in reports, e.g. `"always-full"`.
    pub label: String,
    /// The mode-bank activation schedule under test.
    pub policy: ActivationPolicy,
}

impl PolicyChoice {
    /// The default policy axis: the exhaustive bank and the lazy top-k
    /// schedule of `DESIGN.md` §17 — the campaign doubles as the
    /// detection-equivalence audit of the lazy path under bus attacks.
    pub fn default_axis() -> Vec<PolicyChoice> {
        vec![
            PolicyChoice {
                label: "always-full".into(),
                policy: ActivationPolicy::AlwaysFull,
            },
            PolicyChoice {
                label: "lazy-topk".into(),
                policy: ActivationPolicy::lazy_defaults(),
            },
        ]
    }
}

/// One grid cell: everything needed to run its trials, self-contained
/// so cells can be dispatched to worker threads.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Robot platform under test.
    pub kind: RobotKind,
    /// Base scenario (its own misbehaviors still fire).
    pub scenario: Scenario,
    /// Attack to overlay; `None` marks a clean baseline cell.
    pub attack: Option<AttackKind>,
    /// Activation policy leg.
    pub policy: PolicyChoice,
    /// Target sensing workflow for sensor-level attacks.
    pub sensor: usize,
    /// Reading component the shift-style attacks perturb.
    pub component: usize,
    /// Attack magnitude (units of the target signal; replay reads it
    /// as lag ticks).
    pub magnitude: f64,
    /// First attacked iteration.
    pub onset: usize,
    /// Attacked iterations; `None` = until the end of the run.
    pub duration: Option<usize>,
    /// Seeded trials to run.
    pub trials: usize,
    /// Campaign base seed folded into every trial seed.
    pub base_seed: u64,
    /// Monitor missing-frame policy for the runs.
    pub frame_policy: FramePolicy,
}

/// The aggregated result of one grid cell.
#[derive(Debug, Clone)]
pub struct CampaignPoint {
    /// Attack-type label; `"baseline"` for the clean legs.
    pub attack: String,
    /// Base scenario name.
    pub scenario: String,
    /// Activation-policy label.
    pub policy: String,
    /// Attack magnitude (0 for baseline legs).
    pub magnitude: f64,
    /// Attack onset iteration (0 for baseline legs).
    pub onset: usize,
    /// Attack duration; `None` = open-ended (and for baseline legs).
    pub duration: Option<usize>,
    /// Detection probability and time-to-detection aggregation.
    pub detection: DetectionRate,
    /// Mean per-run sensor false-positive rate across trials, under the
    /// attack-augmented ground truth.
    pub sensor_fpr: f64,
    /// Mean per-run actuator false-positive rate across trials.
    pub actuator_fpr: f64,
}

/// The full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// One point per grid cell, in grid order (attacked cells first,
    /// then the baseline legs).
    pub points: Vec<CampaignPoint>,
}

impl CampaignOutcome {
    /// Attacked points only.
    pub fn attacked(&self) -> impl Iterator<Item = &CampaignPoint> {
        self.points.iter().filter(|p| p.attack != "baseline")
    }

    /// Baseline (no-attack) points only.
    pub fn baselines(&self) -> impl Iterator<Item = &CampaignPoint> {
        self.points.iter().filter(|p| p.attack == "baseline")
    }

    /// The lowest detection probability over attacked points with
    /// `magnitude ≥ min_magnitude` — the quantity a regression gate
    /// floors. `None` when no point qualifies.
    pub fn detection_floor(&self, min_magnitude: f64) -> Option<f64> {
        self.attacked()
            .filter(|p| p.magnitude >= min_magnitude)
            .map(|p| p.detection.probability())
            .min_by(|a, b| a.partial_cmp(b).expect("probabilities are finite"))
    }

    /// The highest per-run false-positive rate (sensor or actuator)
    /// over the baseline points — the quantity a regression gate caps.
    /// `None` when the campaign ran no baseline legs.
    pub fn false_positive_ceiling(&self) -> Option<f64> {
        self.baselines()
            .map(|p| p.sensor_fpr.max(p.actuator_fpr))
            .max_by(|a, b| a.partial_cmp(b).expect("rates are finite"))
    }

    /// [`Self::false_positive_ceiling`] restricted to baselines of one
    /// scenario. Gates use the `"clean"` scenario: burst scenarios pay
    /// an inherent recovery lag after their scripted misbehavior window
    /// closes, and those trailing iterations count as false positives
    /// against the ground truth even for a perfectly healthy detector.
    pub fn scenario_false_positive_ceiling(&self, scenario: &str) -> Option<f64> {
        self.baselines()
            .filter(|p| p.scenario == scenario)
            .map(|p| p.sensor_fpr.max(p.actuator_fpr))
            .max_by(|a, b| a.partial_cmp(b).expect("rates are finite"))
    }
}

/// The campaign grid builder. Defaults reproduce a Table-II-adjacent
/// matrix: all six attack kinds over three base scenarios (clean, a
/// bounded IPS-spoofing burst, a bounded wheel-logic-bomb burst), both
/// activation policies, Table II magnitudes, one onset after the base
/// scenario's own misbehavior has cleared.
#[derive(Debug, Clone)]
pub struct Campaign {
    kind: RobotKind,
    scenarios: Vec<Scenario>,
    attacks: Vec<AttackKind>,
    policies: Vec<PolicyChoice>,
    magnitudes: Vec<f64>,
    onsets: Vec<usize>,
    durations: Vec<Option<usize>>,
    sensor: usize,
    component: usize,
    trials: usize,
    base_seed: u64,
    frame_policy: FramePolicy,
}

/// Bounded variant of Table II #4 (IPS spoofing, −0.1 m on X) that
/// recovers before the campaign's default attack onset, so the attack
/// window's ground truth stays unambiguous.
fn ips_spoofing_burst() -> Scenario {
    Scenario::new(
        4,
        "ips-spoofing-burst",
        "IPS X shifted -0.1 m on iterations 40..80, then authentic again",
        vec![Misbehavior::new(
            "ips-spoofing",
            Target::Sensor(0),
            Corruption::Bias(Vector::from_slice(&[-0.1, 0.0, 0.0])),
            FIRST_TRIGGER,
            Some(FIRST_TRIGGER + 40),
        )],
        DEFAULT_DURATION,
    )
}

/// Bounded variant of Table II #1 (wheel-controller logic bomb).
fn wheel_logic_bomb_burst() -> Scenario {
    let units = roboads_models::dynamics::DifferentialDrive::speed_units_to_mps(6000.0);
    Scenario::new(
        1,
        "wheel-logic-bomb-burst",
        "wheel commands altered by -/+6000 speed units on iterations 40..80",
        vec![Misbehavior::new(
            "wheel-logic-bomb",
            Target::Actuators,
            Corruption::Bias(Vector::from_slice(&[-units, units])),
            FIRST_TRIGGER,
            Some(FIRST_TRIGGER + 40),
        )],
        DEFAULT_DURATION,
    )
}

impl Campaign {
    /// Default Khepera campaign grid (see type docs).
    pub fn khepera() -> Self {
        Campaign {
            kind: RobotKind::Khepera,
            scenarios: vec![
                Scenario::clean(),
                ips_spoofing_burst(),
                wheel_logic_bomb_burst(),
            ],
            attacks: AttackKind::ALL.to_vec(),
            policies: PolicyChoice::default_axis(),
            // Table II magnitudes: 6000 speed units = 0.04 m/s on the
            // command channels, 0.07 m / 0.1 m on the IPS — one axis
            // spans both signal spaces.
            magnitudes: vec![0.04, 0.1],
            onsets: vec![100],
            durations: vec![Some(60)],
            sensor: 0,
            component: 0,
            trials: 5,
            base_seed: 0x20_18_05_17,
            frame_policy: FramePolicy::HoldLast,
        }
    }

    /// Overrides the base scenarios.
    pub fn scenarios(mut self, scenarios: Vec<Scenario>) -> Self {
        self.scenarios = scenarios;
        self
    }

    /// Overrides the attack kinds.
    pub fn attacks(mut self, attacks: Vec<AttackKind>) -> Self {
        self.attacks = attacks;
        self
    }

    /// Overrides the activation-policy axis.
    pub fn policies(mut self, policies: Vec<PolicyChoice>) -> Self {
        self.policies = policies;
        self
    }

    /// Overrides the magnitude axis.
    pub fn magnitudes(mut self, magnitudes: Vec<f64>) -> Self {
        self.magnitudes = magnitudes;
        self
    }

    /// Overrides the onset axis.
    pub fn onsets(mut self, onsets: Vec<usize>) -> Self {
        self.onsets = onsets;
        self
    }

    /// Overrides the duration axis.
    pub fn durations(mut self, durations: Vec<Option<usize>>) -> Self {
        self.durations = durations;
        self
    }

    /// Overrides the trials per cell.
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Overrides the campaign base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Overrides the monitor missing-frame policy. The default
    /// [`FramePolicy::HoldLast`] is the interesting one: a frozen input
    /// is data the detector can indict, while `MarkMissing` freezes the
    /// report stream itself and trivially blinds detection.
    pub fn frame_policy(mut self, policy: FramePolicy) -> Self {
        self.frame_policy = policy;
        self
    }

    /// Materializes the grid: attacked cells in axis order, then one
    /// baseline cell per (scenario × policy).
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut cells = Vec::new();
        for attack in &self.attacks {
            for scenario in &self.scenarios {
                for policy in &self.policies {
                    for &magnitude in &self.magnitudes {
                        for &onset in &self.onsets {
                            for &duration in &self.durations {
                                cells.push(CampaignCell {
                                    kind: self.kind,
                                    scenario: scenario.clone(),
                                    attack: Some(*attack),
                                    policy: policy.clone(),
                                    sensor: self.sensor,
                                    component: self.component,
                                    magnitude,
                                    onset,
                                    duration,
                                    trials: self.trials,
                                    base_seed: self.base_seed,
                                    frame_policy: self.frame_policy,
                                });
                            }
                        }
                    }
                }
            }
        }
        for scenario in &self.scenarios {
            for policy in &self.policies {
                cells.push(CampaignCell {
                    kind: self.kind,
                    scenario: scenario.clone(),
                    attack: None,
                    policy: policy.clone(),
                    sensor: self.sensor,
                    component: self.component,
                    magnitude: 0.0,
                    onset: 0,
                    duration: None,
                    trials: self.trials,
                    base_seed: self.base_seed,
                    frame_policy: self.frame_policy,
                });
            }
        }
        cells
    }

    /// Runs every cell sequentially. Harnesses wanting parallelism can
    /// fan [`Campaign::cells`] out to a pool and call
    /// [`CampaignCell::run`] per cell — results are order-independent.
    ///
    /// # Errors
    ///
    /// Propagates the first failing trial.
    pub fn run(&self) -> Result<CampaignOutcome> {
        let points = self
            .cells()
            .iter()
            .map(CampaignCell::run)
            .collect::<Result<_>>()?;
        Ok(CampaignOutcome { points })
    }
}

/// FNV-1a over a byte stream; the campaign's order-independent seed
/// derivation.
fn fnv1a(bytes: impl IntoIterator<Item = u8>, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64 ^ seed;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl CampaignCell {
    /// The attack spec this cell instantiates per trial; `None` for
    /// baseline cells.
    pub fn spec(&self) -> Option<AttackSpec> {
        self.attack.map(|kind| AttackSpec {
            kind,
            sensor: self.sensor,
            component: self.component,
            magnitude: self.magnitude,
            onset: self.onset,
            duration: self.duration,
        })
    }

    /// Attack-type label for reports.
    pub fn label(&self) -> &'static str {
        self.attack.map_or("baseline", |k| k.label())
    }

    /// Deterministic, order-independent seed for trial `trial`: a hash
    /// of the cell's coordinates and the trial index folded into the
    /// campaign base seed.
    pub fn trial_seed(&self, trial: usize) -> u64 {
        let mut bytes: Vec<u8> = Vec::new();
        bytes.extend(self.label().bytes());
        bytes.extend(self.scenario.name().bytes());
        bytes.extend(self.policy.label.bytes());
        bytes.extend(self.magnitude.to_bits().to_le_bytes());
        bytes.extend((self.onset as u64).to_le_bytes());
        bytes.extend(self.duration.map_or(u64::MAX, |d| d as u64).to_le_bytes());
        bytes.extend((trial as u64).to_le_bytes());
        fnv1a(bytes, self.base_seed)
    }

    /// The attack window's ground truth overlay: the base scenario's
    /// misbehaviors plus a pseudo-misbehavior marking the attack's
    /// target and window (the corruption payload is never executed —
    /// the attack acts on the bus, not in a workflow).
    fn augmented_truth(&self) -> crate::scenario::GroundTruth {
        let mut misbehaviors = self.scenario.misbehaviors().to_vec();
        if let Some(spec) = self.spec() {
            misbehaviors.push(Misbehavior::new(
                format!("bus-{}", self.label()),
                spec.target(),
                Corruption::Freeze,
                spec.onset,
                spec.duration.map(|d| spec.onset + d),
            ));
        }
        Scenario::new(
            self.scenario.number(),
            self.scenario.name().to_string(),
            self.scenario.description().to_string(),
            misbehaviors,
            self.scenario.duration(),
        )
        .ground_truth()
    }

    /// Whether and when the detector's reports covered the attacked
    /// workflow inside the window: `Some(delay_seconds)` from onset to
    /// the first covering iteration, `None` for a miss.
    fn detection_delay(&self, trace: &Trace, target: Target) -> Option<f64> {
        let dt = trace.dt();
        let end = self
            .duration
            .map_or(trace.len(), |d| (self.onset + d).min(trace.len()));
        for record in &trace.records()[self.onset.min(trace.len())..end] {
            let covered = match target {
                Target::Sensor(s) => record.report.misbehaving_sensors.contains(&s),
                Target::Actuators => record.report.actuator_alarm,
            };
            if covered {
                return Some((record.k - self.onset) as f64 * dt);
            }
        }
        None
    }

    /// Runs the cell's trials and aggregates them.
    ///
    /// # Errors
    ///
    /// Propagates the first failing trial.
    pub fn run(&self) -> Result<CampaignPoint> {
        let mut detection = DetectionRate::default();
        let mut sensor_fpr = 0.0;
        let mut actuator_fpr = 0.0;
        let truth = self.augmented_truth();
        for trial in 0..self.trials {
            let mut builder = match self.kind {
                RobotKind::Khepera => SimulationBuilder::khepera(),
                RobotKind::Tamiya => SimulationBuilder::tamiya(),
            }
            .scenario(self.scenario.clone())
            .seed(self.trial_seed(trial))
            .config(RoboAdsConfig::paper_defaults().with_activation(self.policy.policy))
            .frame_policy(self.frame_policy);
            if let Some(spec) = self.spec() {
                builder = builder.bus_attack(spec);
            }
            let outcome = builder.run()?;
            // Re-evaluate under the attack-augmented truth: the run's
            // own eval knows nothing about the bus-level overlay.
            let eval = evaluate(&outcome.trace, &truth);
            sensor_fpr += eval.sensor_fpr();
            actuator_fpr += eval.actuator_fpr();
            if let Some(spec) = self.spec() {
                detection.record(self.detection_delay(&outcome.trace, spec.target()));
            }
        }
        let n = self.trials.max(1) as f64;
        Ok(CampaignPoint {
            attack: self.label().to_string(),
            scenario: self.scenario.name().to_string(),
            policy: self.policy.label.clone(),
            magnitude: self.magnitude,
            onset: self.onset,
            duration: self.duration,
            detection,
            sensor_fpr: sensor_fpr / n,
            actuator_fpr: actuator_fpr / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign(attacks: Vec<AttackKind>) -> Campaign {
        Campaign::khepera()
            .attacks(attacks)
            .scenarios(vec![Scenario::clean()])
            .policies(vec![PolicyChoice {
                label: "always-full".into(),
                policy: ActivationPolicy::AlwaysFull,
            }])
            .magnitudes(vec![0.1])
            .onsets(vec![60])
            .durations(vec![Some(50)])
            .trials(2)
    }

    #[test]
    fn grid_enumerates_every_axis_plus_baselines() {
        let c = Campaign::khepera().trials(1);
        let cells = c.cells();
        // 6 attacks × 3 scenarios × 2 policies × 2 magnitudes × 1 × 1
        // + 3 × 2 baselines.
        assert_eq!(cells.len(), 6 * 3 * 2 * 2 + 6);
        assert_eq!(cells.iter().filter(|c| c.attack.is_none()).count(), 6);
    }

    #[test]
    fn trial_seeds_are_deterministic_and_cell_distinct() {
        let cells = tiny_campaign(vec![AttackKind::MitmRewrite, AttackKind::FrameTrash]).cells();
        assert_eq!(cells[0].trial_seed(0), cells[0].trial_seed(0));
        assert_ne!(cells[0].trial_seed(0), cells[0].trial_seed(1));
        assert_ne!(cells[0].trial_seed(0), cells[1].trial_seed(0));
    }

    #[test]
    fn mitm_campaign_detects_and_baseline_stays_quiet() {
        let outcome = tiny_campaign(vec![AttackKind::MitmRewrite]).run().unwrap();
        assert_eq!(outcome.points.len(), 2);
        let attacked = &outcome.points[0];
        assert_eq!(attacked.attack, "mitm-rewrite");
        assert!(
            attacked.detection.probability() > 0.99,
            "0.1 m MITM rewrite must be caught: {attacked:?}"
        );
        assert!(attacked.detection.mean_delay().unwrap() < 1.0);
        let baseline = &outcome.points[1];
        assert_eq!(baseline.attack, "baseline");
        assert!(baseline.sensor_fpr < 0.05, "{baseline:?}");
        assert_eq!(outcome.false_positive_ceiling().unwrap(), {
            baseline.sensor_fpr.max(baseline.actuator_fpr)
        });
        assert_eq!(
            outcome.detection_floor(0.0).unwrap(),
            attacked.detection.probability()
        );
    }

    /// The full frame-trashing acceptance criterion: a trash campaign
    /// on the standalone runner completes without panics (the old
    /// `bus.latest(..).expect(..)` path aborted on the first trashed
    /// frame).
    #[test]
    fn frame_trash_campaign_completes_without_panics() {
        let outcome = tiny_campaign(vec![AttackKind::FrameTrash]).run().unwrap();
        let attacked = &outcome.points[0];
        assert_eq!(attacked.detection.trials, 2);
        assert!(
            attacked.detection.probability() > 0.99,
            "a frozen IPS while the robot moves must be indicted: {attacked:?}"
        );
    }
}
