//! Statistical and structural properties of the detector across crates:
//! estimator calibration, anomaly quantification accuracy, covariance
//! health over long closed-loop runs, and the §V-G nonlinearity claim in
//! miniature.

use roboads::core::{Mode, ModeSet, RoboAds, RoboAdsConfig};
use roboads::linalg::{Matrix, Vector};
use roboads::models::presets;
use roboads::sim::{Scenario, SimulationBuilder};
use roboads::stats::{mean, sample_std_dev};

#[test]
fn sensor_anomaly_quantification_matches_injection() {
    // Scenario #3 injects +0.07 m on the IPS X axis; the paper reports
    // the estimate +0.069 ± 0.002 with 1.91 % normalized error.
    let outcome = SimulationBuilder::khepera()
        .scenario(Scenario::ips_logic_bomb())
        .seed(11)
        .run()
        .unwrap();
    let estimates: Vec<f64> = outcome
        .trace
        .records()
        .iter()
        .filter(|r| r.k >= 45)
        .filter_map(|r| r.report.sensor_anomaly_for(0).map(|s| s.estimate[0]))
        .collect();
    let m = mean(&estimates);
    assert!(
        (m - 0.07).abs() / 0.07 < 0.10,
        "normalized quantification error too large: mean {m}"
    );
    assert!(sample_std_dev(&estimates) < 0.03);
}

#[test]
fn actuator_anomaly_quantification_matches_injection() {
    let outcome = SimulationBuilder::khepera()
        .scenario(Scenario::wheel_logic_bomb())
        .seed(11)
        .run()
        .unwrap();
    let (mut dl, mut dr) = (Vec::new(), Vec::new());
    for r in outcome.trace.records().iter().filter(|r| r.k >= 45) {
        dl.push(r.report.actuator_anomaly.estimate[0]);
        dr.push(r.report.actuator_anomaly.estimate[1]);
    }
    assert!((mean(&dl) + 0.04).abs() < 0.01, "vL mean {}", mean(&dl));
    assert!((mean(&dr) - 0.04).abs() < 0.01, "vR mean {}", mean(&dr));
}

#[test]
fn state_estimate_tracks_truth_through_noise_and_attack() {
    let outcome = SimulationBuilder::khepera()
        .scenario(Scenario::ips_spoofing())
        .seed(13)
        .run()
        .unwrap();
    for r in outcome.trace.records().iter().filter(|r| r.k > 10) {
        let err = (&r.report.state_estimate - &r.true_state).norm();
        assert!(
            err < 0.15,
            "state error {err} at k = {} (spoofing must not capture the estimate)",
            r.k
        );
    }
}

#[test]
fn mode_probabilities_stay_normalized_and_finite_for_the_whole_run() {
    let outcome = SimulationBuilder::khepera()
        .scenario(Scenario::lidar_dos_and_encoder_logic_bomb())
        .seed(17)
        .run()
        .unwrap();
    for r in outcome.trace.records() {
        let sum: f64 = r.report.mode_probabilities.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum} at k = {}", r.k);
        assert!(r
            .report
            .mode_probabilities
            .iter()
            .all(|p| p.is_finite() && *p >= 0.0));
    }
}

#[test]
fn detector_runs_standalone_without_the_simulator() {
    // The public API contract: a planner feeds (u, readings) per
    // iteration; no simulation types involved.
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[1.0, 1.0, 0.0]);
    let mut ads = RoboAds::with_defaults(system.clone(), x0.clone()).unwrap();
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut x_true = x0;
    for k in 0..50 {
        x_true = system.dynamics().step(&x_true, &u);
        let mut readings: Vec<Vector> = (0..3)
            .map(|i| system.sensor(i).unwrap().measure(&x_true))
            .collect();
        if k >= 25 {
            readings[2][1] += 0.2; // block the LiDAR south-wall channel
        }
        let report = ads.step(&u, &readings).unwrap();
        if k >= 28 {
            assert_eq!(report.misbehaving_sensors, vec![2], "at k = {k}");
        }
    }
}

#[test]
fn custom_single_mode_detector_supports_forensic_quantification() {
    // Table IV workflow: a single all-reference mode quantifies actuator
    // anomalies with fused-sensor precision.
    let system = presets::khepera_system();
    let modes = ModeSet::from_reference_groups(&system, &[vec![0, 1, 2]]);
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
    let mut ads = RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults(),
        x0.clone(),
        modes,
    )
    .unwrap();
    assert_eq!(ads.modes().modes()[0], Mode::new(vec![0, 1, 2], vec![]));

    let u = Vector::from_slice(&[0.06, 0.05]);
    let bias = Vector::from_slice(&[-0.02, 0.03]);
    let mut x_true = x0;
    let mut last = Vector::zeros(2);
    for _ in 0..30 {
        x_true = system.dynamics().step(&x_true, &(&u + &bias));
        let readings: Vec<Vector> = (0..3)
            .map(|i| system.sensor(i).unwrap().measure(&x_true))
            .collect();
        last = ads.step(&u, &readings).unwrap().actuator_anomaly.estimate;
    }
    assert!((&last - &bias).max_abs() < 5e-3, "quantified {last:?}");
}

#[test]
fn linearize_once_baseline_degrades_on_a_turning_mission() {
    // §V-G in miniature: drive three quarters of the perimeter loop
    // (heading sweeps past 180°); the frozen model must produce far
    // more false positives.
    let path =
        roboads::control::Path::new(vec![(0.5, 0.5), (3.5, 0.5), (3.5, 3.5), (0.5, 3.5)]).unwrap();
    let run = |baseline| {
        SimulationBuilder::khepera()
            .scenario(Scenario::clean())
            .path(path.clone())
            .duration(600)
            .seed(11)
            .linearized_baseline(baseline)
            .run()
            .unwrap()
    };
    let ours = run(false);
    let theirs = run(true);
    assert!(
        ours.eval.sensor_fpr() < 0.02,
        "RoboADS FPR {}",
        ours.eval.sensor_fpr()
    );
    assert!(
        theirs.eval.sensor_fpr() > 10.0 * ours.eval.sensor_fpr().max(1e-3),
        "baseline FPR {} vs ours {}",
        theirs.eval.sensor_fpr(),
        ours.eval.sensor_fpr()
    );
}

#[test]
fn transient_bumps_are_tolerated_by_the_paper_windows() {
    // §IV-D: the sliding windows exist to tolerate bumps. With the
    // paper's 2/2 window, one-iteration glitches must not be reported.
    let outcome = SimulationBuilder::khepera()
        .scenario(Scenario::clean().with_transient_bumps(23, 0.05))
        .seed(11)
        .run()
        .unwrap();
    assert!(
        outcome.eval.sensor_fpr() < 0.03,
        "bumps leaked through the window: FPR {}",
        outcome.eval.sensor_fpr()
    );
}

#[test]
fn complete_mode_set_also_works_end_to_end() {
    let system = presets::khepera_system();
    let outcome = SimulationBuilder::khepera()
        .scenario(Scenario::ips_logic_bomb())
        .mode_set(ModeSet::complete(&system))
        .seed(11)
        .run()
        .unwrap();
    assert_eq!(outcome.report.misbehaving_sensors, vec![0]);
    assert!(outcome.eval.sensor_delay().unwrap() < 1.5);
}

#[test]
fn covariances_exposed_by_reports_are_psd() {
    let outcome = SimulationBuilder::khepera()
        .scenario(Scenario::wheel_and_ips_logic_bomb())
        .seed(19)
        .duration(120)
        .run()
        .unwrap();
    for r in outcome.trace.records() {
        let a = &r.report.actuator_anomaly.covariance;
        assert!(
            a.is_positive_semi_definite(1e-9).unwrap(),
            "P^a at k = {}",
            r.k
        );
        let s = &r.report.sensor_anomaly.covariance;
        if s.rows() > 0 {
            assert!(
                s.is_positive_semi_definite(1e-9).unwrap(),
                "P^s at k = {}",
                r.k
            );
        }
    }
    let _ = Matrix::identity(2); // keep linalg import exercised
}
