use std::sync::Arc;

use roboads_linalg::{Matrix, Vector};

use crate::dynamics::DynamicsModel;
use crate::sensors::SensorModel;
use crate::{ModelError, Result};

/// A cheap, hashable identity of a system's model set: the pointer
/// identities of the shared dynamics and sensor `Arc`s plus the exact
/// bit pattern of the process-noise covariance `Q`.
///
/// Two systems with equal signatures evaluate every `f`/`h`/Jacobian
/// and every noise covariance **bitwise identically** — the
/// precondition for batching their detectors lane-wise. This is the
/// grouping key the fleet engine partitions heterogeneous fleets by
/// (combined with its own config discriminants: mode bank,
/// compensation, linearization policy, lane width); it subsumes
/// [`RobotSystem::shares_models`], which is exactly signature equality.
///
/// The signature is identity-based on purpose: two *separately
/// constructed* but numerically identical model sets get distinct
/// signatures. That costs a duplicated slab group (correct, merely less
/// batched), whereas value-based comparison of opaque `dyn` models is
/// impossible in general. Fleets built by cloning one
/// [`RobotSystem`] — the normal construction path — share `Arc`s and
/// therefore signatures.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelSignature {
    /// Address of the shared dynamics model.
    dynamics: usize,
    /// Bit patterns of `Q` in row-major order (bitwise equality, so two
    /// systems in one group run identical covariance propagation).
    process_noise: Vec<u64>,
    /// Addresses of the shared sensor models, in suite order.
    sensors: Vec<usize>,
}

/// Location of one sensor's components inside a stacked reading vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorSlice {
    /// Index of the sensor in the [`RobotSystem`] suite.
    pub sensor: usize,
    /// Offset of its first component in the stacked vector.
    pub offset: usize,
    /// Number of components.
    pub len: usize,
}

/// The assembled robot description the NUISE estimator consumes: a
/// kinematic model `f` with process noise `Q`, plus an ordered suite of
/// sensing workflows `h_i` with noise `R_i`.
///
/// Modes of the multi-mode engine partition the suite into *reference*
/// and *testing* sensors; `RobotSystem` provides the stacked measurement
/// function, Jacobian and noise covariance for any subset, in suite
/// order.
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_models::presets;
///
/// let sys = presets::khepera_system();
/// assert_eq!(sys.sensor_count(), 3);
/// let x = Vector::from_slice(&[1.0, 1.0, 0.0]);
/// // Stacked reading of IPS (index 0) and LiDAR (index 2).
/// let z = sys.measure_subset(&[0, 2], &x);
/// assert_eq!(z.len(), 3 + 4);
/// ```
#[derive(Clone)]
pub struct RobotSystem {
    dynamics: Arc<dyn DynamicsModel>,
    process_noise: Matrix,
    sensors: Vec<Arc<dyn SensorModel>>,
}

impl std::fmt::Debug for RobotSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RobotSystem")
            .field("dynamics", &self.dynamics.name())
            .field(
                "sensors",
                &self.sensors.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field("state_dim", &self.dynamics.state_dim())
            .finish()
    }
}

impl RobotSystem {
    /// Assembles a system description.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DimensionMismatch`] if `process_noise` is
    /// not `n × n` for the dynamics' state dimension, and
    /// [`ModelError::InvalidParameter`] if the sensor suite is empty or
    /// `process_noise` is not symmetric positive definite.
    pub fn new(
        dynamics: Arc<dyn DynamicsModel>,
        process_noise: Matrix,
        sensors: Vec<Arc<dyn SensorModel>>,
    ) -> Result<Self> {
        let n = dynamics.state_dim();
        if process_noise.shape() != (n, n) {
            return Err(ModelError::DimensionMismatch {
                what: "process noise",
                expected: n,
                actual: process_noise.rows(),
            });
        }
        if process_noise.cholesky().is_err() {
            return Err(ModelError::InvalidParameter {
                name: "process_noise",
                value: "not symmetric positive definite".into(),
            });
        }
        if sensors.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "sensors",
                value: "empty suite".into(),
            });
        }
        Ok(RobotSystem {
            dynamics,
            process_noise,
            sensors,
        })
    }

    /// The kinematic model.
    pub fn dynamics(&self) -> &dyn DynamicsModel {
        self.dynamics.as_ref()
    }

    /// State dimension `n`.
    pub fn state_dim(&self) -> usize {
        self.dynamics.state_dim()
    }

    /// Input dimension `q`.
    pub fn input_dim(&self) -> usize {
        self.dynamics.input_dim()
    }

    /// Whether `self` and `other` are built from the *same* model
    /// objects: pointer-identical dynamics and sensor suite (the shared
    /// `Arc`s of a fleet built by cloning one system) and a
    /// bitwise-equal process-noise matrix. Two systems sharing models
    /// evaluate every `f`/`h`/Jacobian bitwise identically, which is
    /// the precondition for batching their detectors lane-wise.
    ///
    /// Equivalent to `self.signature() == other.signature()` without
    /// materializing either signature.
    pub fn shares_models(&self, other: &RobotSystem) -> bool {
        Arc::ptr_eq(&self.dynamics, &other.dynamics)
            && self.process_noise.shape() == other.process_noise.shape()
            && self
                .process_noise
                .as_slice()
                .iter()
                .zip(other.process_noise.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.sensors.len() == other.sensors.len()
            && self
                .sensors
                .iter()
                .zip(&other.sensors)
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// This system's [`ModelSignature`]: the hashable grouping key for
    /// lane-batched fleets. Allocates two small `Vec`s, so callers that
    /// group many robots should compute each robot's signature once
    /// (the fleet engine does this only at partition time).
    pub fn signature(&self) -> ModelSignature {
        ModelSignature {
            dynamics: Arc::as_ptr(&self.dynamics) as *const () as usize,
            process_noise: self
                .process_noise
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect(),
            sensors: self
                .sensors
                .iter()
                .map(|s| Arc::as_ptr(s) as *const () as usize)
                .collect(),
        }
    }

    /// Process-noise covariance `Q`.
    pub fn process_noise(&self) -> &Matrix {
        &self.process_noise
    }

    /// Number of sensing workflows `p`.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// The full sensor suite in order.
    pub fn sensors(&self) -> &[Arc<dyn SensorModel>] {
        &self.sensors
    }

    /// One sensor by suite index.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownSensor`] for an out-of-range index.
    pub fn sensor(&self, index: usize) -> Result<&dyn SensorModel> {
        self.sensors
            .get(index)
            .map(|s| s.as_ref())
            .ok_or(ModelError::UnknownSensor {
                index,
                count: self.sensors.len(),
            })
    }

    /// Name of sensor `index`, or `"?"` if out of range (for reports).
    pub fn sensor_name(&self, index: usize) -> &str {
        self.sensors.get(index).map_or("?", |s| s.name())
    }

    /// Total measurement dimension of the full suite.
    pub fn total_measurement_dim(&self) -> usize {
        self.sensors.iter().map(|s| s.dim()).sum()
    }

    /// Validates a subset of sensor indices (in-range, strictly
    /// increasing — i.e. suite order without duplicates).
    fn validate_subset(&self, indices: &[usize]) -> Result<()> {
        let mut prev: Option<usize> = None;
        for &i in indices {
            if i >= self.sensors.len() {
                return Err(ModelError::UnknownSensor {
                    index: i,
                    count: self.sensors.len(),
                });
            }
            if let Some(p) = prev {
                if i <= p {
                    return Err(ModelError::InvalidParameter {
                        name: "sensor subset",
                        value: format!("{indices:?} not strictly increasing"),
                    });
                }
            }
            prev = Some(i);
        }
        Ok(())
    }

    /// Slice layout of a stacked vector over the given subset.
    ///
    /// # Panics
    ///
    /// Panics on an invalid subset (out-of-range or unsorted indices are
    /// a programming error in mode construction).
    pub fn subset_slices(&self, indices: &[usize]) -> Vec<SensorSlice> {
        self.validate_subset(indices).expect("valid sensor subset");
        let mut out = Vec::with_capacity(indices.len());
        let mut offset = 0;
        for &i in indices {
            let len = self.sensors[i].dim();
            out.push(SensorSlice {
                sensor: i,
                offset,
                len,
            });
            offset += len;
        }
        out
    }

    /// Writes the slice layout of a stacked vector over the given
    /// subset into `out` (cleared first). Identical to
    /// [`RobotSystem::subset_slices`] but reuses `out`'s capacity, so a
    /// warm caller performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics on an invalid subset (out-of-range or unsorted indices are
    /// a programming error in mode construction).
    pub fn subset_slices_into(&self, indices: &[usize], out: &mut Vec<SensorSlice>) {
        self.validate_subset(indices).expect("valid sensor subset");
        out.clear();
        let mut offset = 0;
        for &i in indices {
            let len = self.sensors[i].dim();
            out.push(SensorSlice {
                sensor: i,
                offset,
                len,
            });
            offset += len;
        }
    }

    /// Stacked measurement dimension of a subset.
    pub fn subset_dim(&self, indices: &[usize]) -> usize {
        indices.iter().map(|&i| self.sensors[i].dim()).sum()
    }

    /// Stacked noiseless measurement `h_S(x)` over the subset.
    ///
    /// # Panics
    ///
    /// Panics on an invalid subset.
    pub fn measure_subset(&self, indices: &[usize], x: &Vector) -> Vector {
        self.validate_subset(indices).expect("valid sensor subset");
        let parts: Vec<Vector> = indices
            .iter()
            .map(|&i| self.sensors[i].measure(x))
            .collect();
        Vector::concat_all(parts.iter())
    }

    /// Stacked measurement Jacobian `C_S(x)` over the subset.
    ///
    /// # Panics
    ///
    /// Panics on an invalid subset.
    pub fn jacobian_subset(&self, indices: &[usize], x: &Vector) -> Matrix {
        self.validate_subset(indices).expect("valid sensor subset");
        let blocks: Vec<Matrix> = indices
            .iter()
            .map(|&i| self.sensors[i].jacobian(x))
            .collect();
        Matrix::vstack_all(blocks.iter()).expect("sensor jacobians share the state dimension")
    }

    /// Allocation-free variant of [`RobotSystem::measure_subset`]: writes
    /// the stacked measurement into `out` using a precomputed slice
    /// layout from [`RobotSystem::subset_slices`].
    ///
    /// Produces bitwise-identical values to `measure_subset` for the
    /// same subset.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the stacked subset dimension.
    pub fn measure_subset_into(&self, slices: &[SensorSlice], x: &Vector, out: &mut Vector) {
        let out = out.as_mut_slice();
        for slice in slices {
            self.sensors[slice.sensor]
                .measure_into(x, &mut out[slice.offset..slice.offset + slice.len]);
        }
    }

    /// Allocation-free variant of [`RobotSystem::jacobian_subset`]: writes
    /// the stacked Jacobian rows into `out`, which must already have the
    /// stacked subset row count and `state_dim` columns.
    ///
    /// Produces bitwise-identical values to `jacobian_subset` for the
    /// same subset.
    ///
    /// # Panics
    ///
    /// Panics if `out` is too small for the stacked Jacobian.
    pub fn jacobian_subset_into(&self, slices: &[SensorSlice], x: &Vector, out: &mut Matrix) {
        for slice in slices {
            self.sensors[slice.sensor].jacobian_into(x, out, slice.offset);
        }
    }

    /// Block-diagonal noise covariance `R_S` over the subset.
    ///
    /// # Panics
    ///
    /// Panics on an invalid subset.
    pub fn noise_subset(&self, indices: &[usize]) -> Matrix {
        self.validate_subset(indices).expect("valid sensor subset");
        let blocks: Vec<Matrix> = indices
            .iter()
            .map(|&i| self.sensors[i].noise_covariance())
            .collect();
        Matrix::block_diagonal(blocks.iter()).expect("nonempty subset")
    }

    /// Indices (into the stacked subset vector) of angular components,
    /// whose residuals must be wrapped.
    ///
    /// # Panics
    ///
    /// Panics on an invalid subset.
    pub fn angular_components_subset(&self, indices: &[usize]) -> Vec<usize> {
        let mut out = Vec::new();
        for slice in self.subset_slices(indices) {
            for &c in self.sensors[slice.sensor].angular_components() {
                out.push(slice.offset + c);
            }
        }
        out
    }

    /// Extracts one sensor's components from a stacked subset vector.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is not part of `indices` or the vector length
    /// does not match the subset.
    pub fn extract_sensor(&self, indices: &[usize], stacked: &Vector, sensor: usize) -> Vector {
        let slices = self.subset_slices(indices);
        assert_eq!(
            stacked.len(),
            self.subset_dim(indices),
            "stacked vector length mismatch"
        );
        let slice = slices
            .iter()
            .find(|s| s.sensor == sensor)
            .unwrap_or_else(|| panic!("sensor {sensor} not in subset {indices:?}"));
        stacked.segment(slice.offset, slice.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn khepera_layout() {
        let sys = presets::khepera_system();
        assert_eq!(sys.sensor_count(), 3);
        assert_eq!(sys.total_measurement_dim(), 3 + 3 + 4);
        assert_eq!(sys.sensor_name(presets::KHEPERA_IPS), "ips");
        assert_eq!(
            sys.sensor_name(presets::KHEPERA_WHEEL_ENCODER),
            "wheel-encoder"
        );
        assert_eq!(sys.sensor_name(presets::KHEPERA_LIDAR), "lidar");
        assert_eq!(sys.sensor_name(99), "?");
    }

    #[test]
    fn subset_stacking_matches_individual_sensors() {
        let sys = presets::khepera_system();
        let x = Vector::from_slice(&[1.2, 0.8, 0.4]);
        let z = sys.measure_subset(&[0, 2], &x);
        let z_ips = sys.sensor(0).unwrap().measure(&x);
        let z_lidar = sys.sensor(2).unwrap().measure(&x);
        assert_eq!(z, z_ips.concat(&z_lidar));

        let c = sys.jacobian_subset(&[0, 2], &x);
        assert_eq!(c.shape(), (7, 3));
        let r = sys.noise_subset(&[0, 2]);
        assert_eq!(r.shape(), (7, 7));
        assert!(r.cholesky().is_ok());
    }

    #[test]
    fn subset_into_variants_are_bitwise_identical() {
        let sys = presets::khepera_system();
        let x = Vector::from_slice(&[1.2, 0.8, 0.4]);
        for subset in [&[0usize][..], &[0, 2], &[1, 2], &[0, 1, 2]] {
            let slices = sys.subset_slices(subset);
            let dim = sys.subset_dim(subset);

            let mut z = Vector::zeros(dim);
            sys.measure_subset_into(&slices, &x, &mut z);
            assert_eq!(z, sys.measure_subset(subset, &x));

            let mut c = Matrix::zeros(dim, sys.state_dim());
            sys.jacobian_subset_into(&slices, &x, &mut c);
            assert_eq!(c, sys.jacobian_subset(subset, &x));
        }
    }

    #[test]
    fn subset_slices_and_extraction() {
        let sys = presets::khepera_system();
        let slices = sys.subset_slices(&[1, 2]);
        assert_eq!(
            slices[0],
            SensorSlice {
                sensor: 1,
                offset: 0,
                len: 3
            }
        );
        assert_eq!(
            slices[1],
            SensorSlice {
                sensor: 2,
                offset: 3,
                len: 4
            }
        );

        let stacked = Vector::from_fn(7, |i| i as f64);
        let lidar_part = sys.extract_sensor(&[1, 2], &stacked, 2);
        assert_eq!(lidar_part.as_slice(), &[3.0, 4.0, 5.0, 6.0]);

        // The in-place variant produces the same layout and reuses the
        // destination across subsets.
        let mut reused = Vec::new();
        sys.subset_slices_into(&[1, 2], &mut reused);
        assert_eq!(reused, slices);
        sys.subset_slices_into(&[0], &mut reused);
        assert_eq!(reused, sys.subset_slices(&[0]));
    }

    #[test]
    fn angular_components_are_offset() {
        let sys = presets::khepera_system();
        // IPS θ at 2; wheel-encoder θ at 3+2=5; LiDAR θ at 6+3=9.
        assert_eq!(sys.angular_components_subset(&[0, 1, 2]), vec![2, 5, 9]);
        assert_eq!(sys.angular_components_subset(&[2]), vec![3]);
    }

    #[test]
    #[should_panic(expected = "valid sensor subset")]
    fn unsorted_subset_panics() {
        let sys = presets::khepera_system();
        sys.measure_subset(&[2, 0], &Vector::zeros(3));
    }

    #[test]
    fn out_of_range_sensor_errors() {
        let sys = presets::khepera_system();
        assert!(matches!(
            sys.sensor(7),
            Err(ModelError::UnknownSensor { index: 7, count: 3 })
        ));
    }

    #[test]
    fn signatures_group_by_model_identity() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        let sys = presets::khepera_system();
        // Clones share `Arc`s: one group.
        let clone = sys.clone();
        assert!(sys.shares_models(&clone));
        assert_eq!(sys.signature(), clone.signature());
        let hash = |sig: &ModelSignature| {
            let mut h = DefaultHasher::new();
            sig.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&sys.signature()), hash(&clone.signature()));

        // A separately instantiated (numerically identical) system is a
        // distinct identity: different signature, no shared models.
        let other = presets::khepera_system();
        assert!(!sys.shares_models(&other));
        assert_ne!(sys.signature(), other.signature());

        // Same model `Arc`s but a retuned Q: distinct signature.
        let retuned = RobotSystem::new(
            sys.dynamics.clone(),
            sys.process_noise().clone() * 2.0,
            sys.sensors.clone(),
        )
        .unwrap();
        assert!(!sys.shares_models(&retuned));
        assert_ne!(sys.signature(), retuned.signature());
    }

    #[test]
    fn construction_validation() {
        use crate::dynamics::Unicycle;
        use crate::sensors::Ips;
        let dynamics: Arc<dyn DynamicsModel> = Arc::new(Unicycle::new(0.1).unwrap());
        let ips: Arc<dyn SensorModel> = Arc::new(Ips::new(0.01, 0.01).unwrap());

        // Wrong Q shape.
        assert!(
            RobotSystem::new(dynamics.clone(), Matrix::identity(2), vec![ips.clone()]).is_err()
        );
        // Q not SPD.
        assert!(RobotSystem::new(
            dynamics.clone(),
            Matrix::from_diagonal(&[1.0, 1.0, -1.0]),
            vec![ips.clone()]
        )
        .is_err());
        // Empty suite.
        assert!(RobotSystem::new(dynamics.clone(), Matrix::identity(3) * 0.01, vec![]).is_err());
        // Valid.
        assert!(RobotSystem::new(dynamics, Matrix::identity(3) * 0.01, vec![ips]).is_ok());
    }
}
