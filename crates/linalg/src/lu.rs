use crate::{LinalgError, Matrix, Result, Vector};

/// LU decomposition with partial (row) pivoting: `P·A = L·U`.
///
/// Used for the general matrix inverses inside the NUISE gain computation
/// (`(R*)⁻¹`, `(FᵀR⁻¹F)⁻¹`, …), which are well-conditioned by construction
/// but not necessarily symmetric after floating-point propagation.
///
/// # Example
///
/// ```
/// use roboads_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), roboads_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?;
/// let lu = a.lu()?;
/// let x = lu.solve(&Vector::from_slice(&[2.0, 2.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strictly lower, unit diagonal implied) and U (upper).
    factors: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), for the determinant.
    perm_sign: f64,
    /// Whether a pivot fell below the singularity threshold.
    singular: bool,
}

/// Relative pivot threshold below which a matrix is declared singular.
const PIVOT_TOL: f64 = 1e-13;

impl Lu {
    /// Decomposes a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::Empty`] for an empty matrix. A singular matrix is
    /// *not* an error at decomposition time; [`Lu::solve`] and
    /// [`Lu::inverse`] report [`LinalgError::Singular`], while
    /// [`Lu::determinant`] returns 0.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let scale = a.max_abs().max(1.0);
        let mut f = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut singular = false;

        for k in 0..n {
            // Partial pivoting: bring the largest |entry| in column k to row k.
            let mut pivot_row = k;
            let mut pivot_val = f[(k, k)].abs();
            for i in (k + 1)..n {
                let v = f[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = f[(k, j)];
                    f[(k, j)] = f[(pivot_row, j)];
                    f[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            if pivot_val <= PIVOT_TOL * scale {
                singular = true;
                continue;
            }
            let pivot = f[(k, k)];
            for i in (k + 1)..n {
                let factor = f[(i, k)] / pivot;
                f[(i, k)] = factor;
                for j in (k + 1)..n {
                    f[(i, j)] -= factor * f[(k, j)];
                }
            }
        }

        Ok(Lu {
            factors: f,
            perm,
            perm_sign,
            singular,
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Whether the matrix was singular to working precision.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Determinant of the decomposed matrix (0 if singular).
    pub fn determinant(&self) -> f64 {
        if self.singular {
            return 0.0;
        }
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.factors[(i, i)];
        }
        det
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix was singular and
    /// [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        if self.singular {
            return Err(LinalgError::Singular);
        }
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward and backward substitution.
        let mut x = Vector::from_fn(n, |i| b[self.perm[i]]);
        for i in 1..n {
            for j in 0..i {
                let lij = self.factors[(i, j)];
                x[i] -= lij * x[j];
            }
        }
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let uij = self.factors[(i, j)];
                x[i] -= uij * x[j];
            }
            x[i] /= self.factors[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix was singular and
    /// [`LinalgError::DimensionMismatch`] if `B` has the wrong row count.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.column(j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Computes the matrix inverse.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix was singular.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        assert!(
            (a - b).max_abs() < tol,
            "matrices differ by {}\n{a:?}\n{b:?}",
            (a - b).max_abs()
        );
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = Vector::from_slice(&[3.0, 5.0]);
        let x = a.lu().unwrap().solve(&b).unwrap();
        // Solution: x = (4/5, 7/5)
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trip() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[3.0, 6.0, -4.0], &[2.0, 1.0, 8.0]]).unwrap();
        let inv = a.inverse().unwrap();
        assert_close(&(&a * &inv), &Matrix::identity(3), 1e-12);
        assert_close(&(&inv * &a), &Matrix::identity(3), 1e-12);
    }

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((a.determinant().unwrap() + 2.0).abs() < 1e-12);
        assert!((Matrix::identity(5).determinant().unwrap() - 1.0).abs() < 1e-12);
        // Permutation matrix has determinant -1.
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((p.determinant().unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a
            .lu()
            .unwrap()
            .solve(&Vector::from_slice(&[2.0, 3.0]))
            .unwrap();
        assert_eq!(x.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let lu = a.lu().unwrap();
        assert!(lu.is_singular());
        assert_eq!(lu.determinant(), 0.0);
        assert_eq!(
            lu.solve(&Vector::zeros(2)).unwrap_err(),
            LinalgError::Singular
        );
        assert_eq!(lu.inverse().unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_matrix_right_hand_sides() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[4.0, 8.0]]).unwrap();
        let x = a.lu().unwrap().solve_matrix(&b).unwrap();
        assert_close(
            &x,
            &Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn dimension_mismatch_on_rhs() {
        let a = Matrix::identity(2);
        let lu = a.lu().unwrap();
        assert!(matches!(
            lu.solve(&Vector::zeros(3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn ill_scaled_system_still_solves() {
        // Entries spanning 12 orders of magnitude; partial pivoting keeps
        // the solve stable.
        let a = Matrix::from_rows(&[&[1e-9, 1.0], &[1.0, 1.0]]).unwrap();
        let b = Vector::from_slice(&[1.0, 2.0]);
        let x = a.lu().unwrap().solve(&b).unwrap();
        let r = &(&a * &x) - &b;
        assert!(r.norm() < 1e-9);
    }
}
