//! Statistics substrate for the RoboADS reproduction.
//!
//! The decision maker of RoboADS (DSN 2018, Algorithm 1 lines 10–25)
//! confirms anomalies through **χ² hypothesis tests** on normalized anomaly
//! vector estimates, filtered through **sliding windows** (`c` positives in
//! the last `w` iterations) to tolerate transient faults, and its
//! evaluation section reports **ROC curves, F1 scores, false positive /
//! negative rates and detection delays** over parameter sweeps.
//!
//! This crate provides all of those pieces plus the seeded Gaussian
//! sampling the simulation substrate needs:
//!
//! * [`gamma`] — log-gamma and regularized incomplete gamma functions,
//! * [`ChiSquared`] — cdf / survival / inverse-cdf / critical values,
//! * [`ChiSquareTest`] — the `dᵀ P⁻¹ d`-style normalized test of the paper,
//! * [`GaussianSampler`] / [`MultivariateNormal`] — seeded noise generation,
//! * [`SlidingWindow`] — the `c`-of-`w` decision rule,
//! * [`metrics`] — confusion counts, precision/recall/F1, ROC curves.
//!
//! # Example
//!
//! ```
//! use roboads_stats::{ChiSquared, SlidingWindow};
//!
//! let chi = ChiSquared::new(3).unwrap();
//! // 95th percentile of chi-square with 3 dof is ~7.815.
//! let threshold = chi.critical_value(0.05).unwrap();
//! assert!((threshold - 7.815).abs() < 0.01);
//!
//! let mut window = SlidingWindow::new(2, 2).unwrap();
//! assert!(!window.push(true));
//! assert!(window.push(true)); // 2 positives within a window of 2 → alarm
//! ```

pub mod gamma;
pub mod metrics;

mod chi_square;
mod cusum;
mod descriptive;
mod hypothesis;
mod sampling;
mod window;

pub use chi_square::ChiSquared;
pub use cusum::Cusum;
pub use descriptive::{mean, sample_std_dev, sample_variance};
pub use hypothesis::{normalized_statistic, ChiSquareTest, StatWorkspace};
pub use metrics::{ConfusionCounts, DetectionRate, RocCurve, RocPoint};
pub use sampling::{GaussianSampler, MultivariateNormal, Rng, SeedableRng, StdRng};
pub use window::SlidingWindow;

use std::error::Error;
use std::fmt;

/// Errors produced by statistical operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was out of its valid domain.
    InvalidParameter {
        /// Parameter name, e.g. `"dof"`.
        name: &'static str,
        /// Offending value, formatted by the caller.
        value: String,
    },
    /// A numerical routine failed to converge.
    NoConvergence {
        /// The routine that failed, e.g. `"incomplete_gamma"`.
        routine: &'static str,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(roboads_linalg::LinalgError),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            StatsError::NoConvergence { routine } => {
                write!(f, "{routine} failed to converge")
            }
            StatsError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for StatsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StatsError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<roboads_linalg::LinalgError> for StatsError {
    fn from(e: roboads_linalg::LinalgError) -> Self {
        StatsError::Linalg(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = StatsError::InvalidParameter {
            name: "dof",
            value: "0".into(),
        };
        assert!(e.to_string().contains("dof"));
        let wrapped = StatsError::from(roboads_linalg::LinalgError::Singular);
        assert!(Error::source(&wrapped).is_some());
    }
}
