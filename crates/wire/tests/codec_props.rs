//! Property suite for the wire codec: randomized (deterministically
//! seeded) adversarial inputs — truncations, corruptions, oversized
//! length prefixes, interleaved partial reads — must all surface as
//! typed [`WireError`]s or pending states, never a panic and never an
//! allocation driven by an unreceived length prefix.

use roboads_wire::{
    decode_frame, encode_frame, FrameDecoder, WireError, WireFrame, MAX_FRAME, WIRE_VERSION,
};

/// xorshift64* — deterministic, dependency-free randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        // Raw bit patterns: exercises NaNs, infinities, subnormals.
        f64::from_bits(self.next())
    }
}

fn random_frame(rng: &mut Rng) -> WireFrame {
    let values: Vec<f64> = (0..rng.below(9)).map(|_| rng.f64()).collect();
    match rng.below(5) {
        0 => WireFrame::Hello {
            version: rng.next() as u32,
        },
        1 => WireFrame::Reading {
            robot: rng.next(),
            sensor: rng.next() as u32,
            tick: rng.next(),
            values,
        },
        2 => WireFrame::Input {
            robot: rng.next(),
            tick: rng.next(),
            values,
        },
        3 => WireFrame::TickEnd { tick: rng.next() },
        _ => WireFrame::Bye,
    }
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn frames_bitwise_eq(a: &WireFrame, b: &WireFrame) -> bool {
    match (a, b) {
        (
            WireFrame::Reading {
                robot: r1,
                sensor: s1,
                tick: t1,
                values: v1,
            },
            WireFrame::Reading {
                robot: r2,
                sensor: s2,
                tick: t2,
                values: v2,
            },
        ) => r1 == r2 && s1 == s2 && t1 == t2 && bits(v1) == bits(v2),
        (
            WireFrame::Input {
                robot: r1,
                tick: t1,
                values: v1,
            },
            WireFrame::Input {
                robot: r2,
                tick: t2,
                values: v2,
            },
        ) => r1 == r2 && t1 == t2 && bits(v1) == bits(v2),
        _ => a == b,
    }
}

#[test]
fn random_frames_survive_random_fragmentation() {
    let mut rng = Rng(0x1234_5678_9abc_def1);
    for _case in 0..200 {
        let frames: Vec<WireFrame> = (0..1 + rng.below(12))
            .map(|_| random_frame(&mut rng))
            .collect();
        let mut stream = Vec::new();
        for frame in &frames {
            encode_frame(frame, &mut stream);
        }
        // Interleaved partial reads: deliver the stream in random-sized
        // chunks (including empty ones), draining after every feed.
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut at = 0;
        while at < stream.len() {
            let n = rng.below(17).min(stream.len() - at);
            decoder.feed(&stream[at..at + n]).unwrap();
            at += n;
            while let Some(frame) = decoder.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded.len(), frames.len());
        for (a, b) in frames.iter().zip(&decoded) {
            assert!(frames_bitwise_eq(a, b), "{a:?} != {b:?}");
        }
        assert_eq!(decoder.pending(), 0);
    }
}

#[test]
fn every_truncation_is_pending_and_completable() {
    let mut rng = Rng(0xfeed_beef_0000_0001);
    let mut stream = Vec::new();
    let frame = random_frame(&mut rng);
    encode_frame(&frame, &mut stream);
    for cut in 0..stream.len() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&stream[..cut]).unwrap();
        assert!(
            decoder.next_frame().unwrap().is_none(),
            "truncation at {cut} yielded a frame"
        );
        // The missing tail completes the frame — no state was lost.
        decoder.feed(&stream[cut..]).unwrap();
        let completed = decoder.next_frame().unwrap().expect("completed frame");
        assert!(frames_bitwise_eq(&frame, &completed));
    }
}

#[test]
fn corrupt_bytes_are_typed_errors_or_valid_frames_never_panics() {
    let mut rng = Rng(0xc0ff_ee00_dead_0005);
    for _case in 0..500 {
        let mut stream = Vec::new();
        encode_frame(&random_frame(&mut rng), &mut stream);
        // Flip one random byte. Depending on where it lands this may
        // still be a valid frame (a value bit), a short/long prefix, a
        // bad kind, or a malformed body — all must decode or error
        // cleanly.
        let at = rng.below(stream.len());
        stream[at] ^= (1 << rng.below(8)) as u8;
        let mut decoder = FrameDecoder::new();
        let fed = decoder.feed(&stream);
        if fed.is_err() {
            continue; // oversized prefix caught at feed time
        }
        match decoder.next_frame() {
            Ok(_) => {}
            Err(
                WireError::Oversized { .. }
                | WireError::UnknownKind { .. }
                | WireError::Corrupt { .. },
            ) => {}
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
}

#[test]
fn garbage_streams_never_panic_or_overallocate() {
    let mut rng = Rng(0x0bad_cafe_1111_2222);
    for _case in 0..300 {
        let garbage: Vec<u8> = (0..rng.below(256)).map(|_| rng.next() as u8).collect();
        let mut decoder = FrameDecoder::new();
        if decoder.feed(&garbage).is_err() {
            continue;
        }
        loop {
            match decoder.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break,
            }
        }
        // The decoder holds at most what it was fed — a length prefix
        // never reserves memory.
        assert!(decoder.pending() <= garbage.len());
    }
}

#[test]
fn oversized_prefix_never_reserves_payload_memory() {
    for len in [MAX_FRAME + 1, u32::MAX as usize, (1 << 31) + 7] {
        let mut decoder = FrameDecoder::new();
        let err = decoder.feed(&(len as u32).to_le_bytes()).unwrap_err();
        assert!(matches!(err, WireError::Oversized { len: l } if l == len));
        assert_eq!(decoder.pending(), 4, "only received bytes are buffered");
    }
}

#[test]
fn decode_frame_handles_all_short_payloads() {
    // Every prefix of every valid frame's payload must be a typed
    // error (kinds with bodies) or a valid frame (Bye's empty body).
    let mut rng = Rng(42);
    for _case in 0..50 {
        let mut bytes = Vec::new();
        encode_frame(&random_frame(&mut rng), &mut bytes);
        let payload = &bytes[4..];
        for cut in 0..payload.len() {
            let _ = decode_frame(&payload[..cut]); // must not panic
        }
    }
    assert!(decode_frame(&[])
        .unwrap_err()
        .to_string()
        .contains("corrupt"));
}

#[test]
fn hello_version_constant_is_stable() {
    // The wire format is a cross-process contract: a version bump must
    // be deliberate, so pin it.
    assert_eq!(WIRE_VERSION, 1);
    let mut bytes = Vec::new();
    encode_frame(
        &WireFrame::Hello {
            version: WIRE_VERSION,
        },
        &mut bytes,
    );
    assert_eq!(bytes, vec![5, 0, 0, 0, 0, 1, 0, 0, 0]);
}
