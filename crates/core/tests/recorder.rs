//! Flight-recorder integration tests: ring semantics, edge-triggered
//! capsule freezing, JSONL round-trips, and the bitwise replay contract
//! (`DESIGN.md` §15).

use roboads_core::{
    replay_capsule, CoreError, DecisionDigest, FleetEngine, IncidentCapsule, IncidentKind, ModeSet,
    RecorderConfig, RoboAds, RoboAdsConfig, RobotInput, CAPSULE_VERSION,
};
use roboads_linalg::Vector;
use roboads_models::{presets, RobotSystem};
use roboads_obs::Telemetry;

fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
    (0..system.sensor_count())
        .map(|i| system.sensor(i).unwrap().measure(x))
        .collect()
}

fn fresh_detector(system: &RobotSystem, x0: &Vector) -> RoboAds {
    RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults(),
        x0.clone(),
        ModeSet::one_reference_per_sensor(system),
    )
    .unwrap()
}

/// Steps `detector` for `ticks` iterations, spoofing the IPS (sensor 0)
/// from `spoof_from` on, recording every tick with stamp = k.
fn drive(
    detector: &mut RoboAds,
    system: &RobotSystem,
    x0: &Vector,
    ticks: usize,
    spoof_from: usize,
) {
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut x = x0.clone();
    for k in 0..ticks {
        x = system.dynamics().step(&x, &u);
        let mut readings = clean_readings(system, &x);
        if k >= spoof_from {
            readings[0][0] += 0.07;
        }
        let report = detector.step(&u, &readings).unwrap();
        detector.record_tick(k as u64, &u, &readings, &report);
    }
}

#[test]
fn ring_holds_the_newest_window_across_wraparound() {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut ads = fresh_detector(&system, &x0).with_recorder(RecorderConfig {
        capacity: 4,
        ..RecorderConfig::default()
    });
    drive(&mut ads, &system, &x0, 7, usize::MAX);
    let rec = ads.recorder().unwrap();
    assert_eq!(rec.recorded(), 7);
    assert_eq!(rec.ring_len(), 4);
    // Oldest-first: iterations 4..=7 survive, stamped 3..=6.
    for (i, seq) in (4u64..=7).enumerate() {
        let r = rec.ring_record(i).unwrap();
        assert_eq!(r.seq, seq);
        assert_eq!(r.stamp, seq - 1);
        assert_eq!(r.digest.iteration, seq);
        assert_eq!(r.u_prev.len(), system.input_dim());
        assert_eq!(r.readings.len(), system.sensor_count());
    }
    assert!(rec.capsules().is_empty(), "clean run seals nothing");
}

#[test]
fn rising_alarm_edge_freezes_a_pre_post_capsule() {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut ads = fresh_detector(&system, &x0).with_recorder(RecorderConfig {
        capacity: 64,
        pre: 3,
        post: 2,
        dt: 0.1,
    });
    drive(&mut ads, &system, &x0, 20, 4);
    let rec = ads.recorder_mut().unwrap();
    rec.finish();
    let capsules = rec.take_capsules();
    assert_eq!(capsules.len(), 1, "one confirmed incident, one capsule");
    let c = &capsules[0];
    assert_eq!(c.version, CAPSULE_VERSION);
    assert_eq!(c.robot, 0);
    assert_eq!(c.kind, IncidentKind::Sensor);
    // pre+1 window ending at the trigger, then `post` more ticks.
    assert_eq!(c.records.len(), 3 + 1 + 2);
    let trigger_pos = c
        .records
        .iter()
        .position(|r| r.seq == c.trigger_seq)
        .expect("trigger tick is inside the window");
    assert_eq!(trigger_pos, 3, "exactly `pre` records precede the trigger");
    assert!(c.records[trigger_pos].digest.sensor_alarm);
    assert!(!c.records[trigger_pos - 1].digest.sensor_alarm);
    assert_eq!(
        c.trigger_stamp,
        c.trigger_seq - 1,
        "stamps ran one behind seqs"
    );
    // Consecutive seqs, oldest first.
    for w in c.records.windows(2) {
        assert_eq!(w[1].seq, w[0].seq + 1);
    }
}

#[test]
fn capsules_are_enriched_with_forensics_and_telemetry() {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let telemetry = Telemetry::default();
    telemetry.metrics().histogram("test.latency_s").record(0.25);
    let mut ads = fresh_detector(&system, &x0)
        .with_telemetry(telemetry)
        .with_recorder(RecorderConfig {
            capacity: 64,
            pre: 4,
            post: 2,
            dt: 0.1,
        });
    drive(&mut ads, &system, &x0, 20, 4);
    ads.recorder_mut().unwrap().finish();
    let capsules = ads.recorder_mut().unwrap().take_capsules();
    let c = &capsules[0];
    let incident = c.incident.as_ref().expect("forensics resolved an incident");
    assert_eq!(
        incident.label, "S1",
        "IPS spoofing is the paper's S1 condition"
    );
    assert_eq!(incident.sensors, vec![0]);
    assert!(!incident.actuator);
    assert!(incident.peak_magnitude > 0.0);
    assert!(
        c.histograms
            .iter()
            .any(|(name, s)| name == "test.latency_s" && s.count == 1),
        "telemetry histograms ride along"
    );
}

#[test]
fn capsule_jsonl_round_trips_exactly() {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let telemetry = Telemetry::default();
    telemetry.metrics().histogram("test.h").record(1.5);
    let mut ads = fresh_detector(&system, &x0)
        .with_telemetry(telemetry)
        .with_recorder(RecorderConfig {
            capacity: 64,
            pre: 5,
            post: 3,
            dt: 0.1,
        });
    drive(&mut ads, &system, &x0, 20, 4);
    ads.recorder_mut().unwrap().finish();
    let capsules = ads.recorder_mut().unwrap().take_capsules();
    let text = capsules[0].to_jsonl();
    let parsed = IncidentCapsule::from_jsonl(&text).unwrap();
    assert_eq!(
        parsed, capsules[0],
        "lossless floats make the round-trip exact"
    );
}

#[test]
fn unknown_capsule_version_is_rejected() {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut ads = fresh_detector(&system, &x0).with_recorder(RecorderConfig::default());
    drive(&mut ads, &system, &x0, 12, 4);
    ads.recorder_mut().unwrap().finish();
    let text = ads.recorder_mut().unwrap().take_capsules()[0].to_jsonl();
    let tampered = text.replacen("\"version\":1", "\"version\":9", 1);
    match IncidentCapsule::from_jsonl(&tampered) {
        Err(CoreError::Capsule { reason }) => assert!(reason.contains("version 9"), "{reason}"),
        other => panic!("expected a version error, got {other:?}"),
    }
    // A truncated body (count mismatch) is also rejected.
    let truncated: Vec<&str> = text.lines().collect();
    let truncated = truncated[..truncated.len() - 1].join("\n");
    assert!(matches!(
        IncidentCapsule::from_jsonl(&truncated),
        Err(CoreError::Capsule { .. })
    ));
}

#[test]
fn replay_reproduces_every_recorded_digest_bitwise() {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut ads = fresh_detector(&system, &x0).with_recorder(RecorderConfig {
        capacity: 128,
        pre: 128,
        post: 4,
        dt: 0.1,
    });
    drive(&mut ads, &system, &x0, 20, 4);
    ads.recorder_mut().unwrap().finish();
    let capsules = ads.recorder_mut().unwrap().take_capsules();
    let c = &capsules[0];
    assert!(c.anchored_at_birth(), "pre window covers the whole run");

    // Replay on a twin — and through the serialized form, proving the
    // JSONL representation itself carries bitwise fidelity.
    let reparsed = IncidentCapsule::from_jsonl(&c.to_jsonl()).unwrap();
    let mut twin = fresh_detector(&system, &x0);
    let outcome = replay_capsule(&reparsed, &mut twin).unwrap();
    assert_eq!(outcome.ticks, c.records.len());
    assert!(
        outcome.is_bitwise(),
        "diverged at seqs {:?}",
        outcome.mismatched_seqs
    );
}

#[test]
fn replay_flags_a_tampered_digest() {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut ads = fresh_detector(&system, &x0).with_recorder(RecorderConfig {
        capacity: 128,
        pre: 128,
        post: 2,
        dt: 0.1,
    });
    drive(&mut ads, &system, &x0, 16, 4);
    ads.recorder_mut().unwrap().finish();
    let mut capsule = ads.recorder_mut().unwrap().take_capsules().remove(0);
    let victim = capsule.records.len() / 2;
    let seq = capsule.records[victim].seq;
    capsule.records[victim].digest.state_estimate[0] += 1e-12;

    let mut twin = fresh_detector(&system, &x0);
    let outcome = replay_capsule(&capsule, &mut twin).unwrap();
    assert_eq!(
        outcome.mismatched_seqs,
        vec![seq],
        "1 ulp-scale edit is caught"
    );
}

#[test]
fn replay_requires_a_birth_anchored_pairing() {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut ads = fresh_detector(&system, &x0).with_recorder(RecorderConfig {
        capacity: 128,
        pre: 128,
        post: 2,
        dt: 0.1,
    });
    drive(&mut ads, &system, &x0, 16, 4);
    ads.recorder_mut().unwrap().finish();
    let capsule = ads.recorder_mut().unwrap().take_capsules().remove(0);

    // A detector that has already stepped is out of alignment.
    let mut stale = fresh_detector(&system, &x0);
    drive(&mut stale, &system, &x0, 2, usize::MAX);
    assert!(matches!(
        replay_capsule(&capsule, &mut stale),
        Err(CoreError::Capsule { .. })
    ));

    // A ring too small to reach back to birth fails the anchor check.
    let mut short = fresh_detector(&system, &x0).with_recorder(RecorderConfig {
        capacity: 4,
        pre: 4,
        post: 1,
        dt: 0.1,
    });
    drive(&mut short, &system, &x0, 16, 4);
    short.recorder_mut().unwrap().finish();
    let clipped = short.recorder_mut().unwrap().take_capsules().remove(0);
    assert!(!clipped.anchored_at_birth());
    let mut twin = fresh_detector(&system, &x0);
    assert!(matches!(
        replay_capsule(&clipped, &mut twin),
        Err(CoreError::Capsule { .. })
    ));
}

#[test]
fn fleet_recording_is_identical_across_scalar_and_slab_paths() {
    // The recorder hooks live on both the scalar per-robot path and the
    // SIMD slab commit path; a fleet recorded through either must seal
    // bitwise-identical capsules, each stamped with its robot index and
    // the engine's internal tick (no ingest in this test).
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    const ROBOTS: usize = 5;
    let run = |lanes: usize| {
        let config = RoboAdsConfig::paper_defaults().with_slab_lanes(lanes);
        let modes = ModeSet::one_reference_per_sensor(&system);
        let mut fleet = FleetEngine::new(
            (0..ROBOTS)
                .map(|_| {
                    RoboAds::new(system.clone(), config.clone(), x0.clone(), modes.clone()).unwrap()
                })
                .collect(),
            1,
        );
        fleet.attach_recorder(RecorderConfig {
            capacity: 64,
            pre: 64,
            post: 2,
            dt: 0.1,
        });
        let mut x = x0.clone();
        for k in 0..16 {
            x = system.dynamics().step(&x, &u);
            let mut readings = clean_readings(&system, &x);
            if k >= 4 {
                readings[0][0] += 0.07;
            }
            let inputs = vec![
                RobotInput {
                    u_prev: &u,
                    readings: &readings,
                };
                ROBOTS
            ];
            fleet.step_batch(&inputs).unwrap();
        }
        fleet.finish_recorders();
        fleet.take_capsules()
    };
    let scalar = run(1);
    let slab = run(4);
    assert_eq!(scalar.len(), ROBOTS, "every robot sealed its capsule");
    assert_eq!(
        scalar, slab,
        "slab-path recording is bitwise the scalar path's"
    );
    for (i, c) in scalar.iter().enumerate() {
        assert_eq!(c.robot, i as u32);
        // Engine-internal stamps are the 0-based batch ticks.
        let first = &c.records[0];
        assert_eq!(first.stamp, first.seq - 1);
        // Each robot's capsule replays bitwise on a twin.
        let mut twin = RoboAds::new(
            system.clone(),
            RoboAdsConfig::paper_defaults().with_slab_lanes(1),
            x0.clone(),
            ModeSet::one_reference_per_sensor(&system),
        )
        .unwrap();
        let outcome = replay_capsule(c, &mut twin).unwrap();
        assert!(
            outcome.is_bitwise(),
            "robot {i}: {:?}",
            outcome.mismatched_seqs
        );
    }
}

#[test]
fn digest_bitwise_eq_distinguishes_nan_from_value_changes() {
    let mut a = DecisionDigest {
        sensor_statistic: f64::NAN,
        ..DecisionDigest::default()
    };
    let b = a.clone();
    assert!(a.bitwise_eq(&b), "NaN matches NaN");
    a.sensor_statistic = 0.0;
    assert!(!a.bitwise_eq(&b));
    a = b.clone();
    a.actuator_estimate.push(-0.0);
    assert!(!a.bitwise_eq(&b), "length change detected");
}
