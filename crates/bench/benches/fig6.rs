//! Figure 6 — raw multi-mode engine outputs for scenario #8.
//!
//! Regenerates the eight time-series panels for the combined
//! wheel-controller & IPS logic-bomb scenario: per-sensor anomaly
//! estimates (IPS / wheel encoder / LiDAR), actuator anomaly estimates,
//! both χ² test statistics with their thresholds, and the sensor /
//! actuator mode selections. The full series is written to
//! `target/fig6.csv`; this harness prints the landmark events the paper
//! highlights (IPS anomaly surge at ~4 s, actuator anomaly at ~10 s,
//! IPS X-axis estimate ≈ +0.069 ± 0.002 m, silent encoder and LiDAR).
//!
//! Run with: `cargo bench -p roboads-bench --bench fig6`

use roboads_core::RoboAdsConfig;
use roboads_sim::{Scenario, SimulationBuilder};
use roboads_stats::{mean, sample_std_dev};

fn main() {
    let outcome = SimulationBuilder::khepera()
        .scenario(Scenario::wheel_and_ips_logic_bomb())
        .config(RoboAdsConfig::paper_defaults())
        .seed(11)
        .run()
        .expect("scenario #8 run");

    let csv = outcome.trace.to_figure6_csv();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/fig6.csv");
    std::fs::write(path, &csv).expect("write fig6.csv");
    println!(
        "full series written to target/fig6.csv ({} rows)\n",
        outcome.trace.len()
    );

    // Panel 1: IPS X anomaly estimate during the attack window.
    let ips_x: Vec<f64> = outcome
        .trace
        .records()
        .iter()
        .filter(|r| r.k >= 45) // past the onset transient
        .filter_map(|r| r.report.sensor_anomaly_for(0).map(|s| s.estimate[0]))
        .collect();
    println!(
        "panel 1  IPS X anomaly estimate after 4 s: {:+.3} m ± {:.3} (paper: +0.069 ± 0.002)",
        mean(&ips_x),
        sample_std_dev(&ips_x)
    );

    // Panels 2–3: wheel encoder and LiDAR estimates stay silent (95th
    // percentile of the per-iteration magnitude; brief spikes at the
    // attack transitions are the mode hand-over transients).
    for (panel, sensor, name) in [(2, 1usize, "wheel encoder"), (3, 2usize, "LiDAR")] {
        let mut mags: Vec<f64> = outcome
            .trace
            .records()
            .iter()
            .filter_map(|r| r.report.sensor_anomaly_for(sensor))
            .map(|s| s.estimate.max_abs())
            .collect();
        mags.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p95 = mags[(mags.len() as f64 * 0.95) as usize];
        println!("panel {panel}  {name} anomaly estimates remain within ±{p95:.3} (p95)");
    }

    // Panel 4: actuator anomaly estimates after the 10 s trigger.
    let (mut dl, mut dr) = (Vec::new(), Vec::new());
    for r in outcome.trace.records().iter().filter(|r| r.k >= 105) {
        dl.push(r.report.actuator_anomaly.estimate[0]);
        dr.push(r.report.actuator_anomaly.estimate[1]);
    }
    println!(
        "panel 4  actuator anomaly after 10 s: vL {:+.4} m/s, vR {:+.4} m/s (injected -0.04 / +0.04)",
        mean(&dl),
        mean(&dr)
    );

    // Panels 5 & 7: first *sustained* threshold crossings (isolated
    // pre-attack exceedances are expected at these α levels and are what
    // the sliding windows exist to suppress).
    let first_alarm = |f: &dyn Fn(&roboads_sim::TraceRecord) -> bool| {
        outcome
            .trace
            .records()
            .iter()
            .find(|r| f(r))
            .map(|r| r.time)
    };
    let sensor_alarm = first_alarm(&|r| r.report.sensor_alarm);
    let actuator_alarm = first_alarm(&|r| r.time >= 10.0 && r.report.actuator_alarm);
    println!(
        "panel 5  sensor χ² statistic surge confirmed (2/2 window) at t = {:.1} s (attack at 4.0)",
        sensor_alarm.unwrap_or(f64::NAN)
    );
    println!(
        "panel 7  actuator χ² statistic surge confirmed (3/6 window) at t = {:.1} s (attack at 10.0; \
         transient window positives earlier in the mission are visible in the CSV, matching the \
         paper's note that most false classifications stem from the sliding window)",
        actuator_alarm.unwrap_or(f64::NAN)
    );

    // Panels 6 & 8: mode selections.
    println!(
        "panel 6  sensor mode selection sequence: {}",
        outcome.eval.detected_sensor_sequence.join(" -> ")
    );
    println!(
        "panel 8  actuator mode selection sequence: {}",
        outcome.eval.detected_actuator_sequence.join(" -> ")
    );

    // Quantification accuracy (§V-C: normalized error 1.91 % sensors,
    // 0.41 % / 1.79 % actuators).
    let ips_err = (mean(&ips_x) - 0.07).abs() / 0.07;
    let act_err_l = (mean(&dl) + 0.04).abs() / 0.04;
    let act_err_r = (mean(&dr) - 0.04).abs() / 0.04;
    println!(
        "\nnormalized quantification error: IPS {:.2}%, vL {:.2}%, vR {:.2}% \
         (paper: 1.91%, 0.41%, 1.79%)",
        ips_err * 100.0,
        act_err_l * 100.0,
        act_err_r * 100.0
    );
}
