use std::error::Error;
use std::fmt;

/// Errors produced by linear-algebra operations.
///
/// Every fallible operation in this crate reports one of these variants;
/// none of them panic on bad numeric input (dimension errors on the
/// *indexing* API, which has a clear programming-error character, panic
/// instead and say so in their docs).
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Operation that was attempted, e.g. `"mul"`.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A square matrix was required.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The matrix was singular to working precision.
    Singular,
    /// Cholesky decomposition was attempted on a matrix that is not
    /// (numerically) symmetric positive definite.
    NotPositiveDefinite,
    /// The Jacobi eigendecomposition failed to converge.
    NoConvergence {
        /// Number of sweeps performed before giving up.
        sweeps: usize,
    },
    /// A matrix or vector had zero size where a nonempty one was required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix is {}x{}, expected square", shape.0, shape.1)
            }
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            LinalgError::NoConvergence { sweeps } => {
                write!(
                    f,
                    "eigendecomposition did not converge after {sweeps} sweeps"
                )
            }
            LinalgError::Empty => write!(f, "operand is empty"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            LinalgError::DimensionMismatch {
                op: "mul",
                lhs: (2, 3),
                rhs: (4, 5),
            },
            LinalgError::NotSquare { shape: (2, 3) },
            LinalgError::Singular,
            LinalgError::NotPositiveDefinite,
            LinalgError::NoConvergence { sweeps: 50 },
            LinalgError::Empty,
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
