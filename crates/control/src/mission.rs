use roboads_models::Arena;

use crate::{Path, Result, RrtStar};

/// A point-to-point motion-planning mission (§V-A of the paper):
/// start and goal positions in the arena plus the planning seed.
///
/// # Example
///
/// ```
/// use roboads_models::presets;
/// use roboads_control::Mission;
///
/// # fn main() -> Result<(), roboads_control::ControlError> {
/// let mission = Mission::evaluation_default();
/// let path = mission.plan(&presets::evaluation_arena(), 0.08)?;
/// assert_eq!(path.goal(), mission.goal);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mission {
    /// Start position (m).
    pub start: (f64, f64),
    /// Goal position (m).
    pub goal: (f64, f64),
    /// Seed for the RRT* sampling stream.
    pub planning_seed: u64,
}

impl Mission {
    /// Creates a mission.
    pub fn new(start: (f64, f64), goal: (f64, f64), planning_seed: u64) -> Self {
        Mission {
            start,
            goal,
            planning_seed,
        }
    }

    /// The evaluation mission used by every benchmark: diagonal crossing
    /// of the 4 m arena, weaving between the two obstacles.
    pub fn evaluation_default() -> Self {
        Mission::new((0.5, 0.5), (3.5, 3.5), 20180625)
    }

    /// Plans the mission path in the given arena.
    ///
    /// # Errors
    ///
    /// Propagates planner errors ([`crate::ControlError::NoPathFound`],
    /// [`crate::ControlError::PositionNotFree`]).
    pub fn plan(&self, arena: &Arena, robot_radius: f64) -> Result<Path> {
        RrtStar::new(arena, robot_radius)?.plan(self.start, self.goal, self.planning_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_models::presets;

    #[test]
    fn default_mission_plans() {
        let arena = presets::evaluation_arena();
        let mission = Mission::evaluation_default();
        let path = mission.plan(&arena, 0.08).unwrap();
        assert_eq!(path.waypoints()[0], mission.start);
        assert_eq!(path.goal(), mission.goal);
    }

    #[test]
    fn mission_is_plain_data() {
        let m = Mission::new((0.1, 0.2), (1.0, 2.0), 3);
        assert_eq!(m.start, (0.1, 0.2));
        assert_eq!(m.goal, (1.0, 2.0));
        assert_eq!(m.planning_seed, 3);
    }
}
