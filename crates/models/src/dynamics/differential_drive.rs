use roboads_linalg::{Matrix, Vector};

use crate::angle::wrap_angle;
use crate::dynamics::DynamicsModel;
use crate::{ModelError, Result};

/// Differential-drive kinematics — the Khepera III model of the paper.
///
/// State `x = (x, y, θ)`; input `u = (v_L, v_R)`, the left/right wheel
/// surface speeds in m/s. Over one control period `Δt`:
///
/// ```text
/// v = (v_L + v_R) / 2              (forward speed)
/// ω = (v_R − v_L) / b              (yaw rate, b = wheel base)
/// x_k = x + v·cos(θ)·Δt
/// y_k = y + v·sin(θ)·Δt
/// θ_k = wrap(θ + ω·Δt)
/// ```
///
/// The paper commands Khepera wheels in integer "speed units"; the
/// conversion constant implied by §V-H (900 units ≈ 0.006 m/s) is
/// exposed as [`DifferentialDrive::KHEPERA_SPEED_UNIT`] so attack
/// magnitudes can be specified exactly as the paper states them.
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_models::dynamics::DifferentialDrive;
/// use roboads_models::DynamicsModel;
///
/// # fn main() -> Result<(), roboads_models::ModelError> {
/// let dd = DifferentialDrive::new(0.0885, 0.1)?; // Khepera III, 10 Hz
/// // Equal wheel speeds drive straight.
/// let x1 = dd.step(
///     &Vector::from_slice(&[0.0, 0.0, 0.0]),
///     &Vector::from_slice(&[0.1, 0.1]),
/// );
/// assert!((x1[0] - 0.01).abs() < 1e-12);
/// assert_eq!(x1[2], 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DifferentialDrive {
    wheel_base: f64,
    dt: f64,
}

impl DifferentialDrive {
    /// Meters per second represented by one Khepera integer speed unit.
    ///
    /// §V-H of the paper reports that a stealthy wheel-speed alteration
    /// must stay under "900 units (0.006 m/s)".
    pub const KHEPERA_SPEED_UNIT: f64 = 0.006 / 900.0;

    /// Creates the model from the wheel base (track width, meters) and
    /// the control period `Δt` (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive or
    /// non-finite parameters.
    pub fn new(wheel_base: f64, dt: f64) -> Result<Self> {
        if !(wheel_base.is_finite() && wheel_base > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "wheel_base",
                value: format!("{wheel_base}"),
            });
        }
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "dt",
                value: format!("{dt}"),
            });
        }
        Ok(DifferentialDrive { wheel_base, dt })
    }

    /// Wheel base in meters.
    pub fn wheel_base(&self) -> f64 {
        self.wheel_base
    }

    /// Control period in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Converts a command in Khepera speed units to m/s.
    pub fn speed_units_to_mps(units: f64) -> f64 {
        units * Self::KHEPERA_SPEED_UNIT
    }
}

impl DynamicsModel for DifferentialDrive {
    fn state_dim(&self) -> usize {
        3
    }

    fn input_dim(&self) -> usize {
        2
    }

    fn angular_state_components(&self) -> &[usize] {
        &[2]
    }

    fn name(&self) -> &str {
        "differential-drive"
    }

    fn step(&self, x: &Vector, u: &Vector) -> Vector {
        assert_eq!(x.len(), 3, "differential drive expects a 3-state");
        assert_eq!(u.len(), 2, "differential drive expects 2 wheel speeds");
        let (vl, vr) = (u[0], u[1]);
        let v = 0.5 * (vl + vr);
        let omega = (vr - vl) / self.wheel_base;
        let theta = x[2];
        Vector::from_slice(&[
            x[0] + v * theta.cos() * self.dt,
            x[1] + v * theta.sin() * self.dt,
            wrap_angle(theta + omega * self.dt),
        ])
    }

    fn state_jacobian(&self, x: &Vector, u: &Vector) -> Matrix {
        let v = 0.5 * (u[0] + u[1]);
        let theta = x[2];
        Matrix::from_rows(&[
            &[1.0, 0.0, -v * theta.sin() * self.dt],
            &[0.0, 1.0, v * theta.cos() * self.dt],
            &[0.0, 0.0, 1.0],
        ])
        .expect("static shape")
    }

    fn input_jacobian(&self, x: &Vector, _u: &Vector) -> Matrix {
        let theta = x[2];
        let half_dt = 0.5 * self.dt;
        let b = self.wheel_base;
        Matrix::from_rows(&[
            &[half_dt * theta.cos(), half_dt * theta.cos()],
            &[half_dt * theta.sin(), half_dt * theta.sin()],
            &[-self.dt / b, self.dt / b],
        ])
        .expect("static shape")
    }

    fn step_into(&self, x: &Vector, u: &Vector, out: &mut Vector) {
        assert_eq!(x.len(), 3, "differential drive expects a 3-state");
        assert_eq!(u.len(), 2, "differential drive expects 2 wheel speeds");
        let (vl, vr) = (u[0], u[1]);
        let v = 0.5 * (vl + vr);
        let omega = (vr - vl) / self.wheel_base;
        let theta = x[2];
        out[0] = x[0] + v * theta.cos() * self.dt;
        out[1] = x[1] + v * theta.sin() * self.dt;
        out[2] = wrap_angle(theta + omega * self.dt);
    }

    fn state_jacobian_into(&self, x: &Vector, u: &Vector, out: &mut Matrix) {
        let v = 0.5 * (u[0] + u[1]);
        let theta = x[2];
        out.as_mut_slice().copy_from_slice(&[
            1.0,
            0.0,
            -v * theta.sin() * self.dt,
            0.0,
            1.0,
            v * theta.cos() * self.dt,
            0.0,
            0.0,
            1.0,
        ]);
    }

    fn input_jacobian_into(&self, x: &Vector, _u: &Vector, out: &mut Matrix) {
        let theta = x[2];
        let half_dt = 0.5 * self.dt;
        let b = self.wheel_base;
        out.as_mut_slice().copy_from_slice(&[
            half_dt * theta.cos(),
            half_dt * theta.cos(),
            half_dt * theta.sin(),
            half_dt * theta.sin(),
            -self.dt / b,
            self.dt / b,
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::test_support::{assert_into_variants_match, assert_jacobians_match};
    use std::f64::consts::{FRAC_PI_2, PI};

    fn model() -> DifferentialDrive {
        DifferentialDrive::new(0.0885, 0.1).unwrap()
    }

    #[test]
    fn straight_line_motion() {
        let dd = model();
        let mut x = Vector::from_slice(&[0.0, 0.0, FRAC_PI_2]);
        let u = Vector::from_slice(&[0.2, 0.2]);
        for _ in 0..10 {
            x = dd.step(&x, &u);
        }
        // 1 s at 0.2 m/s heading +y.
        assert!(x[0].abs() < 1e-12);
        assert!((x[1] - 0.2).abs() < 1e-12);
        assert!((x[2] - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn opposite_wheels_spin_in_place() {
        let dd = model();
        let x = Vector::from_slice(&[1.0, 1.0, 0.0]);
        let u = Vector::from_slice(&[-0.05, 0.05]);
        let x1 = dd.step(&x, &u);
        assert_eq!(x1[0], 1.0);
        assert_eq!(x1[1], 1.0);
        // Δθ = ω·Δt = ((v_R − v_L)/b)·Δt.
        assert!((x1[2] - 0.1 / 0.0885 * 0.1).abs() < 1e-12);
    }

    #[test]
    fn heading_wraps_at_pi() {
        let dd = model();
        let x = Vector::from_slice(&[0.0, 0.0, PI - 0.01]);
        let u = Vector::from_slice(&[-0.05, 0.05]); // turning CCW
        let x1 = dd.step(&x, &u);
        assert!(x1[2] < 0.0, "heading should wrap past +π, got {}", x1[2]);
    }

    #[test]
    fn jacobians_match_numeric() {
        let dd = model();
        for &theta in &[0.0, 0.7, -2.2, PI - 0.05] {
            let x = Vector::from_slice(&[0.3, -0.2, theta]);
            let u = Vector::from_slice(&[0.12, 0.08]);
            assert_jacobians_match(&dd, &x, &u, 1e-6);
            assert_into_variants_match(&dd, &x, &u);
        }
    }

    #[test]
    fn speed_unit_conversion_matches_paper() {
        // §V-H: 900 units = 0.006 m/s; so 6000 units = 0.04 m/s.
        assert!((DifferentialDrive::speed_units_to_mps(900.0) - 0.006).abs() < 1e-12);
        assert!((DifferentialDrive::speed_units_to_mps(6000.0) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(DifferentialDrive::new(0.0, 0.1).is_err());
        assert!(DifferentialDrive::new(0.1, -1.0).is_err());
        assert!(DifferentialDrive::new(f64::NAN, 0.1).is_err());
    }

    #[test]
    fn dims_and_metadata() {
        let dd = model();
        assert_eq!(dd.state_dim(), 3);
        assert_eq!(dd.input_dim(), 2);
        assert_eq!(dd.angular_state_components(), &[2]);
        assert_eq!(dd.name(), "differential-drive");
        assert_eq!(dd.wheel_base(), 0.0885);
        assert_eq!(dd.dt(), 0.1);
    }
}
